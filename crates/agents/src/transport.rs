//! Pluggable message-transport interception.
//!
//! Every message routed through [`crate::Directory::deliver`] first
//! passes through the directory's [`Transport`], if one is installed.
//! The transport decides what actually reaches the wire: it may pass the
//! message through unchanged, swallow it (a network drop), duplicate it,
//! hold it back and release it later bundled with a subsequent message
//! (delay/reorder), or rewrite it.
//!
//! The production stack installs no transport — routing is direct and
//! lossless.  The deterministic-simulation harness
//! (`gridflow-harness`) installs a seeded fault-injecting transport to
//! exercise the §1 failure scenarios ("the ability to recover from
//! errors caused by the failure of individual nodes is a critical
//! aspect") without touching service code.

use crate::message::AclMessage;
use std::sync::Arc;

/// A message interceptor sitting between senders and the directory's
/// mailbox routing.
///
/// `intercept` receives each outbound message and returns the messages
/// to actually deliver, in order:
///
/// * `vec![msg]` — pass through unchanged;
/// * `vec![]` — drop the message (the sender still sees `Ok`: a lost
///   datagram, not an addressing error);
/// * `vec![msg.clone(), msg]` — duplicate delivery;
/// * hold `msg` internally and return it from a *later* call — delayed
///   or reordered delivery.
///
/// Implementations must be `Send + Sync`; interception happens on the
/// sending agent's thread.  Determinism is the implementor's contract:
/// a transport that decides from an owned seeded RNG keyed by the
/// intercept sequence makes whole-stack runs replayable.
pub trait Transport: Send + Sync {
    /// Map one outbound message to the messages actually delivered.
    fn intercept(&self, msg: AclMessage) -> Vec<AclMessage>;

    /// Messages the transport is still holding (delayed, not yet
    /// released).  Drivers may call this at quiescence to flush or
    /// account for in-flight traffic.  Default: none.
    fn drain(&self) -> Vec<AclMessage> {
        Vec::new()
    }
}

/// The identity transport: every message is delivered exactly once, in
/// send order.  Installing it is equivalent to installing no transport.
#[derive(Debug, Clone, Copy, Default)]
pub struct Passthrough;

impl Transport for Passthrough {
    fn intercept(&self, msg: AclMessage) -> Vec<AclMessage> {
        vec![msg]
    }
}

/// The directory's transport slot: an optional shared [`Transport`]
/// behind a lock, cloneable alongside the directory itself.
///
/// A newtype so [`crate::Directory`] keeps its derived `Debug`
/// (trait objects have none) and so install/clear stay race-free
/// against concurrent `deliver` calls.
#[derive(Clone, Default)]
pub struct TransportSlot {
    inner: Arc<parking_lot::RwLock<Option<Arc<dyn Transport>>>>,
}

impl TransportSlot {
    /// Install a transport, replacing any previous one.
    pub fn set(&self, transport: Arc<dyn Transport>) {
        *self.inner.write() = Some(transport);
    }

    /// Remove the installed transport (routing becomes direct again).
    pub fn clear(&self) {
        *self.inner.write() = None;
    }

    /// The currently installed transport, if any.
    pub fn get(&self) -> Option<Arc<dyn Transport>> {
        self.inner.read().clone()
    }
}

impl std::fmt::Debug for TransportSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let installed = self.inner.read().is_some();
        f.debug_struct("TransportSlot")
            .field("installed", &installed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Performative;
    use serde_json::json;

    fn msg(n: i64) -> AclMessage {
        AclMessage::new(Performative::Inform, "a", "b", "t", json!(n))
    }

    #[test]
    fn passthrough_is_identity() {
        let out = Passthrough.intercept(msg(1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].content, json!(1));
    }

    #[test]
    fn slot_set_get_clear() {
        let slot = TransportSlot::default();
        assert!(slot.get().is_none());
        slot.set(Arc::new(Passthrough));
        assert!(slot.get().is_some());
        assert_eq!(format!("{slot:?}"), "TransportSlot { installed: true }");
        slot.clear();
        assert!(slot.get().is_none());
    }

    #[test]
    fn default_drain_is_empty() {
        assert!(Passthrough.drain().is_empty());
    }
}
