//! Error type for the agent substrate.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, AgentError>;

/// Errors raised by the agent runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgentError {
    /// No agent with the given name is registered.
    UnknownAgent(String),
    /// An agent with the given name is already registered.
    DuplicateAgent(String),
    /// The target agent's mailbox is closed (agent stopped).
    MailboxClosed(String),
    /// A synchronous request timed out.
    Timeout {
        /// The agent the request was addressed to.
        agent: String,
        /// The timeout that elapsed.
        after_ms: u64,
    },
    /// The peer answered with a `Refuse` or `Failure` performative.
    Refused {
        /// The answering agent.
        agent: String,
        /// The reason carried in the reply content.
        reason: String,
    },
    /// Payload (de)serialization failed.
    Payload(String),
    /// Remote delivery through a backend failed.
    Remote {
        /// The endpoint the delivery was addressed to.
        endpoint: String,
        /// The backend's failure description.
        reason: String,
    },
    /// The runtime is already shut down.
    ShutDown,
}

impl fmt::Display for AgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownAgent(a) => write!(f, "unknown agent `{a}`"),
            Self::DuplicateAgent(a) => write!(f, "agent `{a}` is already registered"),
            Self::MailboxClosed(a) => write!(f, "mailbox of agent `{a}` is closed"),
            Self::Timeout { agent, after_ms } => {
                write!(f, "request to `{agent}` timed out after {after_ms} ms")
            }
            Self::Refused { agent, reason } => {
                write!(f, "agent `{agent}` refused: {reason}")
            }
            Self::Payload(msg) => write!(f, "payload error: {msg}"),
            Self::Remote { endpoint, reason } => {
                write!(f, "remote delivery to `{endpoint}` failed: {reason}")
            }
            Self::ShutDown => write!(f, "agent runtime is shut down"),
        }
    }
}

impl std::error::Error for AgentError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(
            AgentError::UnknownAgent("ps".into()).to_string(),
            "unknown agent `ps`"
        );
        assert!(AgentError::Timeout {
            agent: "bs".into(),
            after_ms: 100
        }
        .to_string()
        .contains("100 ms"));
    }
}
