//! Real-socket node server and client channel (std::net, no async).
//!
//! [`NodeServer`] hosts a [`Directory`] behind a TCP listener speaking
//! the [`wire`](crate::wire) protocol; [`TcpChannel`] is the client
//! side: a small connection pool, a per-RPC deadline enforced through
//! socket timeouts, and seeded exponential-backoff retry so failure
//! handling is reproducible run-to-run.
//!
//! This layer deliberately uses *wall-clock* time: it is the real
//! substrate underneath the deterministic engine, exercised by loopback
//! tests and examples rather than by the virtual-clock suites.

use crate::directory::Directory;
use crate::wire::{read_frame, write_frame, Frame};
use parking_lot::Mutex;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How long a parked connection-handler thread waits on a read before
/// re-checking the server's stop flag.
const HANDLER_POLL: Duration = Duration::from_millis(50);

/// A TCP endpoint hosting a [`Directory`]: every [`Frame::Deliver`]
/// received is handed to `Directory::deliver` (so installed transports
/// and trace sinks apply) and answered with an ack or nack; pings are
/// answered with pongs.
pub struct NodeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    delivered: Arc<AtomicU64>,
}

impl std::fmt::Debug for NodeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeServer")
            .field("addr", &self.addr)
            .field("delivered", &self.delivered.load(Ordering::Relaxed))
            .finish()
    }
}

impl NodeServer {
    /// Bind `bind_addr` (use `127.0.0.1:0` for an ephemeral port) and
    /// start serving the directory on a background accept loop.
    pub fn serve(bind_addr: &str, directory: Directory) -> io::Result<NodeServer> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let delivered = Arc::new(AtomicU64::new(0));

        let accept_stop = Arc::clone(&stop);
        let accept_handlers = Arc::clone(&handlers);
        let accept_delivered = Arc::clone(&delivered);
        let accept_thread = thread::Builder::new()
            .name(format!("node-server-{addr}"))
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let dir = directory.clone();
                    let conn_stop = Arc::clone(&accept_stop);
                    let conn_delivered = Arc::clone(&accept_delivered);
                    let handle = thread::spawn(move || {
                        handle_connection(stream, dir, conn_stop, conn_delivered);
                    });
                    accept_handlers.lock().push(handle);
                }
            })
            .expect("spawn accept thread");

        Ok(NodeServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            handlers,
            delivered,
        })
    }

    /// The bound socket address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of messages this server has successfully delivered into
    /// local mailboxes.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Stop the accept loop and join all connection handlers.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let handles: Vec<_> = self.handlers.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for NodeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(
    stream: TcpStream,
    directory: Directory,
    stop: Arc<AtomicBool>,
    delivered: Arc<AtomicU64>,
) {
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    // Short read timeouts let the handler notice shutdown promptly.
    let _ = reader.set_read_timeout(Some(HANDLER_POLL));
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let frame = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return, // peer closed or protocol error
        };
        let reply = match frame {
            Frame::Deliver(msg) => {
                let id = msg.id;
                match directory.deliver(msg) {
                    Ok(()) => {
                        delivered.fetch_add(1, Ordering::Relaxed);
                        Frame::Ack { id }
                    }
                    Err(e) => Frame::Nack {
                        id,
                        reason: e.to_string(),
                    },
                }
            }
            Frame::Ping { nonce } => Frame::Pong { nonce },
            // Clients never send these; answer nothing.
            Frame::Ack { .. } | Frame::Nack { .. } | Frame::Pong { .. } => continue,
        };
        if write_frame(&mut writer, &reply).is_err() {
            return;
        }
    }
}

/// Retry schedule for [`TcpChannel`]: exponential backoff with seeded
/// jitter, so two runs with the same seed sleep the same intervals.
#[derive(Debug, Clone)]
pub struct RetryCfg {
    /// Total attempts per RPC (1 = no retry).
    pub attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_delay: Duration,
    /// Ceiling on a single backoff sleep.
    pub max_delay: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryCfg {
    fn default() -> Self {
        RetryCfg {
            attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            seed: 0,
        }
    }
}

/// Client channel to one remote node: pooled connections, per-RPC
/// deadline, seeded exponential-backoff retry.
pub struct TcpChannel {
    endpoint: String,
    deadline: Duration,
    retry: RetryCfg,
    pool: Mutex<Vec<TcpStream>>,
    rng: Mutex<ChaCha8Rng>,
    reconnects: AtomicU64,
    retries: AtomicU64,
}

impl std::fmt::Debug for TcpChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpChannel")
            .field("endpoint", &self.endpoint)
            .field("deadline", &self.deadline)
            .field("pooled", &self.pool.lock().len())
            .finish()
    }
}

/// Idle connections kept per channel; excess sockets are closed.
const POOL_CAP: usize = 4;

impl TcpChannel {
    /// Build a channel to `endpoint` (a `host:port` string) with the
    /// given per-RPC deadline and retry schedule.
    pub fn new(endpoint: impl Into<String>, deadline: Duration, retry: RetryCfg) -> Self {
        let seed = retry.seed;
        TcpChannel {
            endpoint: endpoint.into(),
            deadline,
            retry,
            pool: Mutex::new(Vec::new()),
            rng: Mutex::new(ChaCha8Rng::seed_from_u64(seed)),
            reconnects: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }

    /// The remote endpoint this channel talks to.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Fresh connections opened so far (first connect included).
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// RPC attempts that were retried after a failure.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    fn checkout(&self) -> io::Result<TcpStream> {
        if let Some(s) = self.pool.lock().pop() {
            return Ok(s);
        }
        let addr = self.endpoint.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "endpoint resolved to nothing")
        })?;
        let stream = TcpStream::connect_timeout(&addr, self.deadline)?;
        stream.set_nodelay(true)?;
        self.reconnects.fetch_add(1, Ordering::Relaxed);
        Ok(stream)
    }

    fn checkin(&self, stream: TcpStream) {
        let mut pool = self.pool.lock();
        if pool.len() < POOL_CAP {
            pool.push(stream);
        }
    }

    /// Drop all pooled connections (e.g. after the server restarted).
    pub fn reset_pool(&self) {
        self.pool.lock().clear();
    }

    fn attempt(&self, frame: &Frame) -> io::Result<Frame> {
        let start = Instant::now();
        let mut stream = self.checkout()?;
        let remaining = |start: Instant, deadline: Duration| -> io::Result<Duration> {
            deadline.checked_sub(start.elapsed()).ok_or_else(|| {
                io::Error::new(io::ErrorKind::TimedOut, "per-RPC deadline exhausted")
            })
        };
        stream.set_write_timeout(Some(remaining(start, self.deadline)?))?;
        write_frame(&mut stream, frame)?;
        stream.set_read_timeout(Some(remaining(start, self.deadline)?))?;
        let reply = read_frame(&mut stream)?;
        self.checkin(stream);
        Ok(reply)
    }

    /// Send a frame and wait for the reply frame, retrying per the
    /// configured schedule.  Each attempt runs under the per-RPC
    /// deadline; failed attempts discard their connection.
    pub fn call(&self, frame: &Frame) -> io::Result<Frame> {
        let mut last_err = None;
        for attempt in 0..self.retry.attempts.max(1) {
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
                thread::sleep(self.backoff(attempt));
            }
            match self.attempt(frame) {
                Ok(reply) => return Ok(reply),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("no attempts configured")))
    }

    /// The backoff before retry `attempt` (1-based): doubling from
    /// `base_delay`, capped at `max_delay`, jittered into [50%, 100%]
    /// by the seeded stream.
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .retry
            .base_delay
            .saturating_mul(1u32 << (attempt - 1).min(16));
        let capped = exp.min(self.retry.max_delay);
        let frac: f64 = self.rng.lock().gen_range(0.5..1.0);
        capped.mul_f64(frac)
    }

    /// Deliver an ACL message: a `Deliver` RPC that must come back as
    /// a matching `Ack`.
    pub fn send(&self, msg: crate::message::AclMessage) -> io::Result<()> {
        let id = msg.id;
        match self.call(&Frame::Deliver(msg))? {
            Frame::Ack { id: acked } if acked == id => Ok(()),
            Frame::Nack { reason, .. } => Err(io::Error::other(format!("remote nack: {reason}"))),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply {other:?}"),
            )),
        }
    }

    /// Liveness probe: a `Ping` RPC that must come back as the matching
    /// `Pong`.  Returns the round-trip time.
    pub fn ping(&self) -> io::Result<Duration> {
        let nonce = self.rng.lock().next_u64();
        let start = Instant::now();
        match self.call(&Frame::Ping { nonce })? {
            Frame::Pong { nonce: echoed } if echoed == nonce => Ok(start.elapsed()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected ping reply {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::{AgentInfo, Control};
    use crate::message::{AclMessage, Performative};
    use crossbeam_channel::unbounded;
    use serde_json::json;

    fn hosted_directory(name: &str) -> (Directory, crossbeam_channel::Receiver<Control>) {
        let dir = Directory::new();
        let (tx, rx) = unbounded();
        dir.register(AgentInfo {
            name: name.into(),
            service_type: "t".into(),
            mailbox: tx,
        })
        .unwrap();
        (dir, rx)
    }

    #[test]
    fn loopback_deliver_acks_and_routes() {
        let (dir, rx) = hosted_directory("target");
        let mut server = NodeServer::serve("127.0.0.1:0", dir).unwrap();
        let chan = TcpChannel::new(
            server.local_addr().to_string(),
            Duration::from_secs(2),
            RetryCfg::default(),
        );
        let msg = AclMessage::new(Performative::Inform, "src", "target", "t", json!(1));
        chan.send(msg.clone()).unwrap();
        match rx.recv_timeout(Duration::from_secs(2)).unwrap() {
            Control::Deliver(got) => assert_eq!(got, msg),
            other => panic!("expected Deliver, got {other:?}"),
        }
        assert_eq!(server.delivered(), 1);
        server.shutdown();
    }

    #[test]
    fn unknown_receiver_nacks() {
        let (dir, _rx) = hosted_directory("target");
        let mut server = NodeServer::serve("127.0.0.1:0", dir).unwrap();
        let chan = TcpChannel::new(
            server.local_addr().to_string(),
            Duration::from_secs(2),
            RetryCfg {
                attempts: 1,
                ..RetryCfg::default()
            },
        );
        let msg = AclMessage::new(Performative::Inform, "src", "ghost", "t", json!(1));
        let err = chan.send(msg).unwrap_err();
        assert!(err.to_string().contains("unknown agent"), "{err}");
        server.shutdown();
    }

    #[test]
    fn ping_pong_round_trip() {
        let (dir, _rx) = hosted_directory("target");
        let mut server = NodeServer::serve("127.0.0.1:0", dir).unwrap();
        let chan = TcpChannel::new(
            server.local_addr().to_string(),
            Duration::from_secs(2),
            RetryCfg::default(),
        );
        assert!(chan.ping().is_ok());
        server.shutdown();
    }

    #[test]
    fn connections_are_pooled() {
        let (dir, _rx) = hosted_directory("target");
        let mut server = NodeServer::serve("127.0.0.1:0", dir).unwrap();
        let chan = TcpChannel::new(
            server.local_addr().to_string(),
            Duration::from_secs(2),
            RetryCfg::default(),
        );
        for _ in 0..5 {
            chan.ping().unwrap();
        }
        assert_eq!(chan.reconnects(), 1, "sequential RPCs reuse one socket");
        server.shutdown();
    }

    #[test]
    fn retry_survives_server_restart() {
        let (dir, _rx) = hosted_directory("target");
        let mut server = NodeServer::serve("127.0.0.1:0", dir.clone()).unwrap();
        let addr = server.local_addr();
        let chan = TcpChannel::new(
            addr.to_string(),
            Duration::from_secs(2),
            RetryCfg {
                attempts: 20,
                base_delay: Duration::from_millis(5),
                max_delay: Duration::from_millis(50),
                seed: 7,
            },
        );
        chan.ping().unwrap();
        server.shutdown();
        // Restart on the same port while the client retries.
        let rebind = thread::spawn(move || {
            thread::sleep(Duration::from_millis(100));
            NodeServer::serve(&addr.to_string(), dir).unwrap()
        });
        let rtt = chan.ping();
        let mut server2 = rebind.join().unwrap();
        assert!(rtt.is_ok(), "ping should succeed after restart: {rtt:?}");
        assert!(chan.retries() > 0, "the restart must have forced retries");
        server2.shutdown();
    }

    #[test]
    fn backoff_is_seeded_and_bounded() {
        let mk = || {
            TcpChannel::new(
                "127.0.0.1:1",
                Duration::from_millis(10),
                RetryCfg {
                    attempts: 5,
                    base_delay: Duration::from_millis(8),
                    max_delay: Duration::from_millis(40),
                    seed: 99,
                },
            )
        };
        let a = mk();
        let b = mk();
        for attempt in 1..5 {
            let da = a.backoff(attempt);
            let db = b.backoff(attempt);
            assert_eq!(da, db, "same seed, same schedule");
            assert!(da <= Duration::from_millis(40));
            assert!(da >= Duration::from_millis(4), "at least half the base");
        }
    }

    #[test]
    fn deadline_bounds_a_dead_endpoint() {
        // A blackholed endpoint: nothing listens on this port.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let chan = TcpChannel::new(
            addr.to_string(),
            Duration::from_millis(200),
            RetryCfg {
                attempts: 2,
                base_delay: Duration::from_millis(10),
                max_delay: Duration::from_millis(20),
                seed: 1,
            },
        );
        let start = Instant::now();
        assert!(chan.ping().is_err());
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "failure must be bounded by deadline+backoff, took {:?}",
            start.elapsed()
        );
    }
}
