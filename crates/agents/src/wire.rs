//! Length-prefixed wire protocol for remote ACL delivery.
//!
//! Frames are JSON documents preceded by a big-endian `u32` length, the
//! same shape the durable store uses for its on-disk records: trivially
//! parseable, self-describing, and safe to truncate-detect.  The frame
//! vocabulary is deliberately tiny — deliver, ack/nack, and a ping/pong
//! pair for health probing — because everything interesting rides
//! inside the [`AclMessage`] payload.

use crate::message::AclMessage;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// Upper bound on an encoded frame body, to bound allocation on reads
/// from untrusted peers (16 MiB is far beyond any ACL payload here).
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// One frame on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Frame {
    /// Deliver an ACL message to an agent on the receiving node.
    Deliver(AclMessage),
    /// The message with this id reached a mailbox.
    Ack {
        /// Id of the acknowledged message.
        id: u64,
    },
    /// The message with this id could not be delivered.
    Nack {
        /// Id of the rejected message.
        id: u64,
        /// Why delivery failed (e.g. unknown agent).
        reason: String,
    },
    /// Liveness probe.
    Ping {
        /// Echoed back in the matching [`Frame::Pong`].
        nonce: u64,
    },
    /// Reply to a [`Frame::Ping`].
    Pong {
        /// The nonce of the ping being answered.
        nonce: u64,
    },
}

/// Encode a frame to its wire bytes (length prefix + JSON body).
pub fn encode_frame(frame: &Frame) -> io::Result<Vec<u8>> {
    let body = serde_json::to_string(frame)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let body = body.into_bytes();
    if body.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body of {} bytes exceeds MAX_FRAME_LEN", body.len()),
        ));
    }
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Write one frame to a stream.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let bytes = encode_frame(frame)?;
    w.write_all(&bytes)?;
    w.flush()
}

/// Read one frame from a stream.  Errors on EOF mid-frame, an
/// oversized length prefix, or a malformed body.
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_LEN"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let text = String::from_utf8(body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    serde_json::from_str(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Performative;
    use serde_json::json;

    #[test]
    fn frames_round_trip() {
        let frames = vec![
            Frame::Deliver(AclMessage::new(
                Performative::Request,
                "coordination",
                "planning",
                "planning",
                json!({"goal": "Resolution File"}),
            )),
            Frame::Ack { id: 7 },
            Frame::Nack {
                id: 9,
                reason: "unknown agent `x`".into(),
            },
            Frame::Ping { nonce: 42 },
            Frame::Pong { nonce: 42 },
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for f in &frames {
            assert_eq!(&read_frame(&mut cursor).unwrap(), f);
        }
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        let err = read_frame(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_body_errors() {
        let bytes = encode_frame(&Frame::Ping { nonce: 1 }).unwrap();
        let cut = &bytes[..bytes.len() - 2];
        assert!(read_frame(&mut std::io::Cursor::new(cut.to_vec())).is_err());
    }

    #[test]
    fn garbage_body_errors() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_be_bytes());
        buf.extend_from_slice(b"}{x");
        assert!(read_frame(&mut std::io::Cursor::new(buf)).is_err());
    }
}
