//! Pluggable remote-delivery backends.
//!
//! A [`Directory`] routes to local mailboxes; when a receiver is not
//! registered locally it can consult a [`RouteTable`] and hand the
//! message to a [`DeliveryBackend`].  Two backends ship here:
//!
//! * [`InProcBackend`] — a registry of other in-process directories
//!   keyed by endpoint.  Zero I/O, zero new behavior: a delivery is one
//!   direct `Directory::deliver` call on the target, so traces stay
//!   byte-identical to a single-directory deployment.
//! * [`TcpBackend`] — one pooled [`TcpChannel`] per endpoint, carrying
//!   [`Frame::Deliver`](crate::wire::Frame) RPCs with per-RPC deadline
//!   and seeded retry.

use crate::directory::Directory;
use crate::error::{AgentError, Result};
use crate::message::AclMessage;
use crate::net::{RetryCfg, TcpChannel};
use crate::routing::RemoteRoute;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// A way to hand a message to an agent that lives on another node.
pub trait DeliveryBackend: Send + Sync {
    /// Short backend name for diagnostics (`"in-proc"`, `"tcp"`).
    fn name(&self) -> &'static str;
    /// Deliver `msg` to the node behind `route`.
    fn deliver_remote(&self, route: &RemoteRoute, msg: AclMessage) -> Result<()>;
}

/// In-process backend: endpoint → [`Directory`] map.  The reference
/// backend — remote delivery degenerates to a local `deliver` call on
/// the target directory (its own transports and trace sinks apply).
#[derive(Debug, Default, Clone)]
pub struct InProcBackend {
    nodes: Arc<RwLock<BTreeMap<String, Directory>>>,
}

impl InProcBackend {
    /// An empty backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) the directory behind an endpoint key.
    pub fn register_node(&self, endpoint: impl Into<String>, directory: Directory) {
        self.nodes.write().insert(endpoint.into(), directory);
    }

    /// Remove an endpoint's directory.
    pub fn deregister_node(&self, endpoint: &str) {
        self.nodes.write().remove(endpoint);
    }
}

impl DeliveryBackend for InProcBackend {
    fn name(&self) -> &'static str {
        "in-proc"
    }

    fn deliver_remote(&self, route: &RemoteRoute, msg: AclMessage) -> Result<()> {
        let dir = self
            .nodes
            .read()
            .get(&route.endpoint)
            .cloned()
            .ok_or_else(|| AgentError::Remote {
                endpoint: route.endpoint.clone(),
                reason: "no in-proc node registered".into(),
            })?;
        dir.deliver(msg)
    }
}

/// TCP backend: lazily opens one pooled [`TcpChannel`] per endpoint.
pub struct TcpBackend {
    deadline: Duration,
    retry: RetryCfg,
    channels: Mutex<BTreeMap<String, Arc<TcpChannel>>>,
}

impl std::fmt::Debug for TcpBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpBackend")
            .field("deadline", &self.deadline)
            .field("endpoints", &self.channels.lock().len())
            .finish()
    }
}

impl TcpBackend {
    /// Build a backend with the given per-RPC deadline and retry
    /// schedule (applied to every endpoint's channel).
    pub fn new(deadline: Duration, retry: RetryCfg) -> Self {
        TcpBackend {
            deadline,
            retry,
            channels: Mutex::new(BTreeMap::new()),
        }
    }

    /// The channel for an endpoint, opening it on first use.
    pub fn channel(&self, endpoint: &str) -> Arc<TcpChannel> {
        let mut map = self.channels.lock();
        if let Some(c) = map.get(endpoint) {
            return Arc::clone(c);
        }
        let chan = Arc::new(TcpChannel::new(
            endpoint.to_string(),
            self.deadline,
            self.retry.clone(),
        ));
        map.insert(endpoint.to_string(), Arc::clone(&chan));
        chan
    }
}

impl DeliveryBackend for TcpBackend {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn deliver_remote(&self, route: &RemoteRoute, msg: AclMessage) -> Result<()> {
        self.channel(&route.endpoint)
            .send(msg)
            .map_err(|e| AgentError::Remote {
                endpoint: route.endpoint.clone(),
                reason: e.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::{AgentInfo, Control};
    use crate::message::Performative;
    use crate::net::NodeServer;
    use crate::routing::RouteTable;
    use crossbeam_channel::unbounded;
    use serde_json::json;

    fn hosted(name: &str) -> (Directory, crossbeam_channel::Receiver<Control>) {
        let dir = Directory::new();
        let (tx, rx) = unbounded();
        dir.register(AgentInfo {
            name: name.into(),
            service_type: "t".into(),
            mailbox: tx,
        })
        .unwrap();
        (dir, rx)
    }

    #[test]
    fn in_proc_backend_routes_across_directories() {
        let (node_a, _rx_a) = hosted("local");
        let (node_b, rx_b) = hosted("planning");
        let backend = InProcBackend::new();
        backend.register_node("node-b", node_b);
        let routes = RouteTable::new();
        routes.set("planning", RemoteRoute::new("node-b", "node-b"));
        node_a.set_remote(routes, Arc::new(backend));

        let msg = AclMessage::new(Performative::Request, "local", "planning", "t", json!(1));
        node_a.deliver(msg.clone()).unwrap();
        match rx_b.try_recv().unwrap() {
            Control::Deliver(got) => assert_eq!(got, msg),
            other => panic!("expected Deliver, got {other:?}"),
        }
    }

    #[test]
    fn unrouted_unknown_receiver_still_errors() {
        let (node_a, _rx) = hosted("local");
        node_a.set_remote(RouteTable::new(), Arc::new(InProcBackend::new()));
        let msg = AclMessage::new(Performative::Request, "local", "ghost", "t", json!(1));
        assert!(matches!(
            node_a.deliver(msg),
            Err(AgentError::UnknownAgent(_))
        ));
    }

    #[test]
    fn missing_in_proc_node_reports_remote_error() {
        let (node_a, _rx) = hosted("local");
        let routes = RouteTable::new();
        routes.set("planning", RemoteRoute::new("node-b", "node-b"));
        node_a.set_remote(routes, Arc::new(InProcBackend::new()));
        let msg = AclMessage::new(Performative::Request, "local", "planning", "t", json!(1));
        assert!(matches!(
            node_a.deliver(msg),
            Err(AgentError::Remote { .. })
        ));
    }

    #[test]
    fn tcp_backend_delivers_over_loopback() {
        let (node_a, _rx_a) = hosted("local");
        let (node_b, rx_b) = hosted("planning");
        let mut server = NodeServer::serve("127.0.0.1:0", node_b).unwrap();
        let endpoint = server.local_addr().to_string();

        let routes = RouteTable::new();
        routes.set("planning", RemoteRoute::new("node-b", endpoint));
        node_a.set_remote(
            routes,
            Arc::new(TcpBackend::new(Duration::from_secs(2), RetryCfg::default())),
        );

        let msg = AclMessage::new(
            Performative::Request,
            "local",
            "planning",
            "t",
            json!({"k": 3}),
        );
        node_a.deliver(msg.clone()).unwrap();
        match rx_b.recv_timeout(Duration::from_secs(2)).unwrap() {
            Control::Deliver(got) => assert_eq!(got, msg),
            other => panic!("expected Deliver, got {other:?}"),
        }
        server.shutdown();
    }
}
