//! # gridflow-agents
//!
//! A lightweight multi-agent substrate, substituting for the Jade
//! framework the paper builds on ("Various services are performed by
//! agents built upon the Jade multi-agent framework", §2).
//!
//! What the GridFlow core services actually need from their agent
//! platform is small and well defined:
//!
//! * **ACL messages** ([`AclMessage`]): typed performatives
//!   (request/inform/agree/refuse/failure/…), a sender, a receiver, a
//!   conversation id for reply correlation, and a JSON payload;
//! * **mailboxes**: each agent consumes messages one at a time from a
//!   private queue (crossbeam channel);
//! * **a platform registry** ([`Directory`]): name → mailbox routing plus
//!   service-type lookup (the equivalent of Jade's AMS/DF; note that the
//!   *paper's* information service is a core service implemented on top
//!   of this substrate, not the substrate registry itself);
//! * **a threaded runtime** ([`AgentRuntime`]): one OS thread per agent,
//!   graceful shutdown, and a synchronous [`RuntimeHandle::request`]
//!   helper for request/reply conversations with timeouts.

#![warn(missing_docs)]

pub mod delivery;
pub mod directory;
pub mod error;
pub mod message;
pub mod net;
pub mod routing;
pub mod runtime;
pub mod transport;
pub mod wire;

pub use delivery::{DeliveryBackend, InProcBackend, TcpBackend};
pub use directory::{AgentInfo, Directory};
pub use error::{AgentError, Result};
pub use message::{AclMessage, Performative};
pub use net::{NodeServer, RetryCfg, TcpChannel};
pub use routing::{RemoteRoute, RouteTable};
pub use runtime::{Agent, AgentContext, AgentRuntime, RuntimeHandle};
pub use transport::{Passthrough, Transport};
pub use wire::Frame;
