//! The platform registry: name → mailbox routing and service-type lookup.
//!
//! This is the substrate-level equivalent of Jade's AMS/DF.  The paper's
//! *information service* — where core and end-user services register
//! their offerings — is a core service implemented *on top of* this
//! registry in `gridflow-services`; the directory here only provides
//! transport-level routing.

use crate::delivery::DeliveryBackend;
use crate::error::{AgentError, Result};
use crate::message::AclMessage;
use crate::routing::RouteTable;
use crate::transport::{Transport, TransportSlot};
use crossbeam_channel::Sender;
use gridflow_telemetry::{TraceEvent, TraceSink, TraceSlot};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A route table paired with the backend that executes its routes.
#[derive(Clone)]
struct RemoteBinding {
    routes: RouteTable,
    backend: Arc<dyn DeliveryBackend>,
}

/// Shared, swappable remote binding (mirrors [`TransportSlot`]).
#[derive(Default, Clone)]
struct RemoteSlot(Arc<RwLock<Option<RemoteBinding>>>);

impl std::fmt::Debug for RemoteSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = self.0.read().as_ref().map(|b| b.backend.name());
        f.debug_tuple("RemoteSlot").field(&name).finish()
    }
}

/// Control messages delivered to an agent thread.
#[derive(Debug, Clone)]
pub enum Control {
    /// Deliver an ACL message.
    Deliver(AclMessage),
    /// Stop the agent thread.
    Stop,
}

/// Registration record of one agent.
#[derive(Clone)]
pub struct AgentInfo {
    /// Unique agent name.
    pub name: String,
    /// Service type exposed by the agent (e.g. `"planning"`).
    pub service_type: String,
    /// Mailbox sender.
    pub mailbox: Sender<Control>,
}

impl std::fmt::Debug for AgentInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AgentInfo")
            .field("name", &self.name)
            .field("service_type", &self.service_type)
            .finish()
    }
}

/// Thread-safe agent registry.
#[derive(Debug, Default, Clone)]
pub struct Directory {
    inner: Arc<RwLock<BTreeMap<String, AgentInfo>>>,
    transport: TransportSlot,
    trace: TraceSlot,
    remote: RemoteSlot,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an agent; names must be unique.
    pub fn register(&self, info: AgentInfo) -> Result<()> {
        let mut map = self.inner.write();
        if map.contains_key(&info.name) {
            return Err(AgentError::DuplicateAgent(info.name));
        }
        map.insert(info.name.clone(), info);
        Ok(())
    }

    /// Remove an agent's registration.
    pub fn deregister(&self, name: &str) -> Result<AgentInfo> {
        self.inner
            .write()
            .remove(name)
            .ok_or_else(|| AgentError::UnknownAgent(name.to_owned()))
    }

    /// Look up an agent by name.
    pub fn lookup(&self, name: &str) -> Result<AgentInfo> {
        self.inner
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| AgentError::UnknownAgent(name.to_owned()))
    }

    /// All agents exposing the given service type, in name order.
    pub fn find_by_type(&self, service_type: &str) -> Vec<AgentInfo> {
        self.inner
            .read()
            .values()
            .filter(|a| a.service_type == service_type)
            .cloned()
            .collect()
    }

    /// Names of all registered agents, in order.
    pub fn names(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }

    /// Number of registered agents.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Is the directory empty?
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Install a [`Transport`] that intercepts every delivered message.
    /// Replaces any previous transport.  Clones of this directory share
    /// the installation.
    pub fn set_transport(&self, transport: Arc<dyn Transport>) {
        self.transport.set(transport);
    }

    /// Remove the installed transport; routing becomes direct again.
    pub fn clear_transport(&self) {
        self.transport.clear();
    }

    /// Install a [`TraceSink`] that observes every delivery: a
    /// `MessageSent` event as a message enters [`Directory::deliver`]
    /// and a `MessageDelivered` event per message that reaches a
    /// mailbox.  Clones of this directory share the installation.
    pub fn set_trace_sink(&self, sink: Arc<dyn TraceSink>) {
        self.trace.set(sink);
    }

    /// Remove the installed trace sink.
    pub fn clear_trace_sink(&self) {
        self.trace.clear();
    }

    /// Install a remote binding: receivers that are not registered
    /// locally are resolved through `routes` and handed to `backend`.
    /// Clones of this directory share the installation.  Without a
    /// binding (the default) routing behaves exactly as before.
    pub fn set_remote(&self, routes: RouteTable, backend: Arc<dyn DeliveryBackend>) {
        *self.remote.0.write() = Some(RemoteBinding { routes, backend });
    }

    /// Remove the remote binding; unknown receivers error again.
    pub fn clear_remote(&self) {
        *self.remote.0.write() = None;
    }

    /// The installed remote route table, if a binding is present.
    pub fn remote_routes(&self) -> Option<RouteTable> {
        self.remote.0.read().as_ref().map(|b| b.routes.clone())
    }

    /// Route a message to its receiver's mailbox, passing it through the
    /// installed [`Transport`] first (if any).  A transport may expand
    /// one message into zero (drop — still `Ok`: a lost datagram, not an
    /// addressing error) or several (duplicates, or the release of
    /// previously delayed traffic); each surviving message is routed to
    /// its own receiver.
    pub fn deliver(&self, msg: AclMessage) -> Result<()> {
        self.trace.emit(
            "directory",
            TraceEvent::MessageSent {
                id: msg.id,
                performative: msg.performative.to_string(),
                sender: msg.sender.clone(),
                receiver: msg.receiver.clone(),
                in_reply_to: msg.in_reply_to,
            },
        );
        match self.transport.get() {
            None => self.route(msg),
            Some(t) => {
                for out in t.intercept(msg) {
                    self.route(out)?;
                }
                Ok(())
            }
        }
    }

    /// Direct mailbox routing, bypassing any installed transport.  A
    /// receiver with no local registration falls through to the remote
    /// binding (if one is installed and has a route for the name); the
    /// receiving node's directory emits its own delivery trace.
    pub fn route(&self, msg: AclMessage) -> Result<()> {
        let info = match self.lookup(&msg.receiver) {
            Ok(info) => info,
            Err(AgentError::UnknownAgent(name)) => {
                let binding = self.remote.0.read().clone();
                if let Some(binding) = binding {
                    if let Some(route) = binding.routes.resolve(&name) {
                        return binding.backend.deliver_remote(&route, msg);
                    }
                }
                return Err(AgentError::UnknownAgent(name));
            }
            Err(e) => return Err(e),
        };
        let (id, receiver) = (msg.id, msg.receiver.clone());
        info.mailbox
            .send(Control::Deliver(msg))
            .map_err(|_| AgentError::MailboxClosed(info.name.clone()))?;
        self.trace
            .emit("directory", TraceEvent::MessageDelivered { id, receiver });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Performative;
    use crossbeam_channel::unbounded;
    use serde_json::json;

    fn info(name: &str, service_type: &str) -> (AgentInfo, crossbeam_channel::Receiver<Control>) {
        let (tx, rx) = unbounded();
        (
            AgentInfo {
                name: name.into(),
                service_type: service_type.into(),
                mailbox: tx,
            },
            rx,
        )
    }

    #[test]
    fn register_lookup_deregister() {
        let dir = Directory::new();
        let (a, _rx) = info("planner-1", "planning");
        dir.register(a).unwrap();
        assert_eq!(dir.len(), 1);
        assert_eq!(dir.lookup("planner-1").unwrap().service_type, "planning");
        dir.deregister("planner-1").unwrap();
        assert!(dir.is_empty());
        assert!(matches!(
            dir.lookup("planner-1"),
            Err(AgentError::UnknownAgent(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let dir = Directory::new();
        let (a, _rxa) = info("x", "t");
        let (b, _rxb) = info("x", "t");
        dir.register(a).unwrap();
        assert!(matches!(
            dir.register(b),
            Err(AgentError::DuplicateAgent(_))
        ));
    }

    #[test]
    fn find_by_type_filters() {
        let dir = Directory::new();
        let (a, _r1) = info("broker-1", "brokerage");
        let (b, _r2) = info("broker-2", "brokerage");
        let (c, _r3) = info("planner-1", "planning");
        dir.register(a).unwrap();
        dir.register(b).unwrap();
        dir.register(c).unwrap();
        let brokers = dir.find_by_type("brokerage");
        assert_eq!(brokers.len(), 2);
        assert_eq!(brokers[0].name, "broker-1");
        assert!(dir.find_by_type("nothing").is_empty());
    }

    #[test]
    fn deliver_routes_to_mailbox() {
        let dir = Directory::new();
        let (a, rx) = info("target", "t");
        dir.register(a).unwrap();
        let msg = AclMessage::new(Performative::Inform, "src", "target", "t", json!(1));
        dir.deliver(msg.clone()).unwrap();
        match rx.try_recv().unwrap() {
            Control::Deliver(got) => assert_eq!(got, msg),
            other => panic!("expected Deliver, got {other:?}"),
        }
    }

    #[test]
    fn deliver_to_unknown_fails() {
        let dir = Directory::new();
        let msg = AclMessage::new(Performative::Inform, "src", "ghost", "t", json!(1));
        assert!(matches!(dir.deliver(msg), Err(AgentError::UnknownAgent(_))));
    }

    /// Drops every message whose content is the number 13, duplicates
    /// messages whose content is 2, passes everything else through.
    struct SuperstitiousTransport;

    impl crate::transport::Transport for SuperstitiousTransport {
        fn intercept(&self, msg: AclMessage) -> Vec<AclMessage> {
            if msg.content == json!(13) {
                vec![]
            } else if msg.content == json!(2) {
                vec![msg.clone(), msg]
            } else {
                vec![msg]
            }
        }
    }

    #[test]
    fn transport_can_drop_and_duplicate() {
        let dir = Directory::new();
        let (a, rx) = info("target", "t");
        dir.register(a).unwrap();
        dir.set_transport(Arc::new(SuperstitiousTransport));
        let send = |n: i64| {
            dir.deliver(AclMessage::new(
                Performative::Inform,
                "src",
                "target",
                "t",
                json!(n),
            ))
        };
        // Dropped message: delivery still reports Ok.
        send(13).unwrap();
        assert!(rx.try_recv().is_err(), "dropped message must not arrive");
        // Duplicated message arrives twice.
        send(2).unwrap();
        assert!(matches!(rx.try_recv().unwrap(), Control::Deliver(m) if m.content == json!(2)));
        assert!(matches!(rx.try_recv().unwrap(), Control::Deliver(m) if m.content == json!(2)));
        assert!(rx.try_recv().is_err());
        // Clearing the transport restores direct delivery.
        dir.clear_transport();
        send(13).unwrap();
        assert!(matches!(rx.try_recv().unwrap(), Control::Deliver(m) if m.content == json!(13)));
    }

    #[test]
    fn transport_is_shared_across_directory_clones() {
        let dir = Directory::new();
        let clone = dir.clone();
        let (a, rx) = info("target", "t");
        dir.register(a).unwrap();
        clone.set_transport(Arc::new(SuperstitiousTransport));
        // Installed via the clone, observed via the original.
        dir.deliver(AclMessage::new(
            Performative::Inform,
            "src",
            "target",
            "t",
            json!(13),
        ))
        .unwrap();
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn route_bypasses_the_transport() {
        let dir = Directory::new();
        let (a, rx) = info("target", "t");
        dir.register(a).unwrap();
        dir.set_transport(Arc::new(SuperstitiousTransport));
        dir.route(AclMessage::new(
            Performative::Inform,
            "src",
            "target",
            "t",
            json!(13),
        ))
        .unwrap();
        assert!(matches!(rx.try_recv().unwrap(), Control::Deliver(m) if m.content == json!(13)));
    }

    #[test]
    fn trace_sink_sees_sent_and_delivered_with_correlation() {
        use gridflow_telemetry::{TraceEvent, TraceLog};
        let dir = Directory::new();
        let (a, rx) = info("target", "t");
        let (b, _src_rx) = info("src", "t");
        dir.register(a).unwrap();
        dir.register(b).unwrap();
        let log = TraceLog::new();
        dir.set_trace_sink(Arc::new(log.clone()));

        let req = AclMessage::new(Performative::Request, "src", "target", "t", json!(1));
        let reply = req.reply(Performative::Inform, json!(2));
        dir.deliver(req.clone()).unwrap();
        dir.deliver(reply.clone()).unwrap();
        let _ = rx.try_recv();
        let _ = rx.try_recv();

        let recs = log.records();
        assert_eq!(recs.len(), 4, "sent+delivered per message");
        match &recs[0].event {
            TraceEvent::MessageSent {
                id, in_reply_to, ..
            } => {
                assert_eq!(*id, req.id);
                assert_eq!(*in_reply_to, None);
            }
            other => panic!("expected MessageSent, got {other:?}"),
        }
        match &recs[2].event {
            TraceEvent::MessageSent { in_reply_to, .. } => {
                assert_eq!(*in_reply_to, Some(req.id), "reply correlates to request");
            }
            other => panic!("expected MessageSent, got {other:?}"),
        }
        assert!(matches!(
            &recs[1].event,
            TraceEvent::MessageDelivered { id, .. } if *id == req.id
        ));

        // Clearing the sink stops recording; delivery is unaffected.
        dir.clear_trace_sink();
        dir.deliver(AclMessage::new(
            Performative::Inform,
            "a",
            "target",
            "t",
            json!(3),
        ))
        .unwrap();
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn dropped_messages_are_sent_but_not_delivered_in_the_trace() {
        use gridflow_telemetry::{TraceEvent, TraceLog};
        let dir = Directory::new();
        let (a, _rx) = info("target", "t");
        dir.register(a).unwrap();
        dir.set_transport(Arc::new(SuperstitiousTransport));
        let log = TraceLog::new();
        dir.set_trace_sink(Arc::new(log.clone()));

        dir.deliver(AclMessage::new(
            Performative::Inform,
            "src",
            "target",
            "t",
            json!(13), // dropped by the transport
        ))
        .unwrap();
        let recs = log.records();
        assert_eq!(recs.len(), 1);
        assert!(matches!(recs[0].event, TraceEvent::MessageSent { .. }));
    }

    #[test]
    fn deliver_to_closed_mailbox_fails() {
        let dir = Directory::new();
        let (a, rx) = info("gone", "t");
        dir.register(a).unwrap();
        drop(rx);
        let msg = AclMessage::new(Performative::Inform, "src", "gone", "t", json!(1));
        assert!(matches!(
            dir.deliver(msg),
            Err(AgentError::MailboxClosed(_))
        ));
    }
}
