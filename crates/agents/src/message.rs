//! ACL messages exchanged between agents (FIPA-ACL-style, as Jade uses).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The communicative act of a message (the useful subset of FIPA-ACL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Performative {
    /// Ask the receiver to perform an action.
    Request,
    /// Provide information (also used for replies carrying results).
    Inform,
    /// Ask for the value matching a query.
    QueryRef,
    /// Accept a request.
    Agree,
    /// Decline a request.
    Refuse,
    /// Report that an accepted action failed.
    Failure,
    /// Register interest in future events.
    Subscribe,
    /// Acknowledge without content.
    Confirm,
}

impl fmt::Display for Performative {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Performative::Request => "request",
            Performative::Inform => "inform",
            Performative::QueryRef => "query-ref",
            Performative::Agree => "agree",
            Performative::Refuse => "refuse",
            Performative::Failure => "failure",
            Performative::Subscribe => "subscribe",
            Performative::Confirm => "confirm",
        };
        f.write_str(s)
    }
}

static NEXT_MESSAGE_ID: AtomicU64 = AtomicU64::new(1);

/// One message.  `content` is a JSON document; the `ontology` field names
/// the vocabulary it uses (e.g. `"planning"`, `"brokerage"`), mirroring
/// the paper's emphasis that agents interoperate through shared
/// ontologies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AclMessage {
    /// Globally unique message id.
    pub id: u64,
    /// The communicative act.
    pub performative: Performative,
    /// Sending agent name.
    pub sender: String,
    /// Receiving agent name.
    pub receiver: String,
    /// For replies: the id of the message being answered.
    pub in_reply_to: Option<u64>,
    /// Vocabulary of the content.
    pub ontology: String,
    /// JSON payload.
    pub content: serde_json::Value,
}

impl AclMessage {
    /// Build a new message with a fresh id.
    pub fn new(
        performative: Performative,
        sender: impl Into<String>,
        receiver: impl Into<String>,
        ontology: impl Into<String>,
        content: serde_json::Value,
    ) -> Self {
        AclMessage {
            id: NEXT_MESSAGE_ID.fetch_add(1, Ordering::Relaxed),
            performative,
            sender: sender.into(),
            receiver: receiver.into(),
            in_reply_to: None,
            ontology: ontology.into(),
            content,
        }
    }

    /// Build a reply to this message (receiver ← sender swapped, reply
    /// correlation set, same ontology).
    pub fn reply(&self, performative: Performative, content: serde_json::Value) -> AclMessage {
        AclMessage {
            id: NEXT_MESSAGE_ID.fetch_add(1, Ordering::Relaxed),
            performative,
            sender: self.receiver.clone(),
            receiver: self.sender.clone(),
            in_reply_to: Some(self.id),
            ontology: self.ontology.clone(),
            content,
        }
    }

    /// Deserialize the content into a typed payload.
    pub fn parse_content<T: serde::de::DeserializeOwned>(&self) -> crate::error::Result<T> {
        serde_json::from_value(self.content.clone())
            .map_err(|e| crate::error::AgentError::Payload(e.to_string()))
    }

    /// Is this a terminal negative answer (refuse/failure)?
    pub fn is_negative(&self) -> bool {
        matches!(
            self.performative,
            Performative::Refuse | Performative::Failure
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn ids_are_unique_and_increasing() {
        let a = AclMessage::new(Performative::Request, "a", "b", "t", json!({}));
        let b = AclMessage::new(Performative::Request, "a", "b", "t", json!({}));
        assert!(b.id > a.id);
    }

    #[test]
    fn reply_swaps_endpoints_and_correlates() {
        let req = AclMessage::new(
            Performative::Request,
            "coordination",
            "planning",
            "planning",
            json!({"goal": "Resolution File"}),
        );
        let rep = req.reply(Performative::Inform, json!({"plan": "…"}));
        assert_eq!(rep.sender, "planning");
        assert_eq!(rep.receiver, "coordination");
        assert_eq!(rep.in_reply_to, Some(req.id));
        assert_eq!(rep.ontology, "planning");
    }

    #[test]
    fn typed_content_round_trip() {
        #[derive(serde::Serialize, serde::Deserialize, PartialEq, Debug)]
        struct Payload {
            goal: String,
            count: usize,
        }
        let msg = AclMessage::new(
            Performative::Inform,
            "a",
            "b",
            "t",
            serde_json::to_value(Payload {
                goal: "x".into(),
                count: 3,
            })
            .unwrap(),
        );
        let p: Payload = msg.parse_content().unwrap();
        assert_eq!(
            p,
            Payload {
                goal: "x".into(),
                count: 3
            }
        );
    }

    #[test]
    fn parse_content_reports_mismatch() {
        #[derive(serde::Deserialize, Debug)]
        #[allow(dead_code)]
        struct Payload {
            must_exist: String,
        }
        let msg = AclMessage::new(Performative::Inform, "a", "b", "t", json!({"other": 1}));
        assert!(msg.parse_content::<Payload>().is_err());
    }

    #[test]
    fn negative_performatives() {
        let m = AclMessage::new(Performative::Refuse, "a", "b", "t", json!({}));
        assert!(m.is_negative());
        let m = AclMessage::new(Performative::Inform, "a", "b", "t", json!({}));
        assert!(!m.is_negative());
    }

    #[test]
    fn display_performative() {
        assert_eq!(Performative::QueryRef.to_string(), "query-ref");
    }
}
