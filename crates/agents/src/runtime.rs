//! The threaded agent runtime: one OS thread per agent, a shared
//! directory for routing, and a synchronous request/reply helper for
//! external drivers.

use crate::directory::{AgentInfo, Control, Directory};
use crate::error::{AgentError, Result};
use crate::message::{AclMessage, Performative};
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Behaviour of one agent.  Implementations consume messages one at a
/// time; replies and outbound messages go through the [`AgentContext`].
pub trait Agent: Send + 'static {
    /// Unique agent name (e.g. `"coordination-1"`).
    fn name(&self) -> String;
    /// Service type for directory lookup (e.g. `"coordination"`).
    fn service_type(&self) -> String;
    /// Handle one incoming message.
    fn handle(&mut self, msg: AclMessage, ctx: &AgentContext);
    /// Called once after registration, before any message.
    fn on_start(&mut self, _ctx: &AgentContext) {}
}

/// The capabilities an agent sees while handling a message.
pub struct AgentContext {
    directory: Directory,
    agent_name: String,
    /// A clone of the agent's own mailbox receiver (crossbeam channels
    /// are MPMC), used by [`AgentContext::request_and_wait`].
    own_rx: Receiver<Control>,
    /// Messages consumed while waiting for a correlated reply; the agent
    /// loop drains these before blocking on the mailbox again.
    pending: std::cell::RefCell<std::collections::VecDeque<AclMessage>>,
    /// Set when a `Stop` control was consumed during a synchronous wait;
    /// the agent loop honours it on return.
    stopped: std::cell::Cell<bool>,
}

impl AgentContext {
    /// The running agent's own name.
    pub fn self_name(&self) -> &str {
        &self.agent_name
    }

    /// The shared directory (lookup by name or service type).
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Send a message (sender is forced to the running agent).
    pub fn send(&self, mut msg: AclMessage) -> Result<()> {
        msg.sender = self.agent_name.clone();
        self.directory.deliver(msg)
    }

    /// Reply to `original` with the given performative and content.
    pub fn reply(
        &self,
        original: &AclMessage,
        performative: Performative,
        content: serde_json::Value,
    ) -> Result<()> {
        let mut rep = original.reply(performative, content);
        rep.sender = self.agent_name.clone();
        self.directory.deliver(rep)
    }

    /// Build and send a fresh request to `receiver`.
    pub fn request(
        &self,
        receiver: impl Into<String>,
        ontology: impl Into<String>,
        content: serde_json::Value,
    ) -> Result<u64> {
        let msg = AclMessage::new(
            Performative::Request,
            self.agent_name.clone(),
            receiver,
            ontology,
            content,
        );
        let id = msg.id;
        self.directory.deliver(msg)?;
        Ok(id)
    }

    /// Send a `Request` and block *inside the handler* until the
    /// correlated reply arrives (or `timeout` elapses).  Unrelated
    /// messages received while waiting are buffered and handled by the
    /// agent loop afterwards, in arrival order.
    ///
    /// Deadlock note: two agents synchronously requesting each other wait
    /// out their timeouts; keep synchronous conversations acyclic (the
    /// Fig. 2/3 flows are).
    pub fn request_and_wait(
        &self,
        receiver: impl Into<String>,
        ontology: impl Into<String>,
        content: serde_json::Value,
        timeout: std::time::Duration,
    ) -> Result<AclMessage> {
        let receiver = receiver.into();
        let id = self.request(&receiver, ontology, content)?;
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(AgentError::Timeout {
                    agent: receiver,
                    after_ms: timeout.as_millis() as u64,
                });
            }
            match self.own_rx.recv_timeout(remaining) {
                Ok(Control::Deliver(msg)) => {
                    if msg.in_reply_to == Some(id) {
                        if msg.is_negative() {
                            let reason = msg
                                .content
                                .get("reason")
                                .and_then(|v| v.as_str())
                                .unwrap_or("unspecified")
                                .to_owned();
                            return Err(AgentError::Refused {
                                agent: receiver,
                                reason,
                            });
                        }
                        return Ok(msg);
                    }
                    self.pending.borrow_mut().push_back(msg);
                }
                Ok(Control::Stop) => {
                    self.stopped.set(true);
                    return Err(AgentError::ShutDown);
                }
                Err(_) => {
                    return Err(AgentError::Timeout {
                        agent: receiver,
                        after_ms: timeout.as_millis() as u64,
                    })
                }
            }
        }
    }

    /// Pop a message buffered during a synchronous wait (used by the
    /// agent loop).
    fn next_pending(&self) -> Option<AclMessage> {
        self.pending.borrow_mut().pop_front()
    }
}

/// The runtime: owns agent threads and the shared directory.
pub struct AgentRuntime {
    directory: Directory,
    threads: Vec<(String, JoinHandle<()>)>,
    client_counter: u64,
}

impl AgentRuntime {
    /// A fresh runtime with an empty directory.
    pub fn new() -> Self {
        AgentRuntime {
            directory: Directory::new(),
            threads: Vec::new(),
            client_counter: 0,
        }
    }

    /// The shared directory.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Install a [`crate::Transport`] on the shared directory: every
    /// message any agent sends through this runtime is intercepted.
    /// Used by fault-injection harnesses; production stacks install
    /// none.
    pub fn set_transport(&self, transport: Arc<dyn crate::Transport>) {
        self.directory.set_transport(transport);
    }

    /// Install a trace sink on the shared directory: every message any
    /// agent sends through this runtime is recorded (sent + delivered
    /// events with correlation ids).
    pub fn set_trace_sink(&self, sink: Arc<dyn gridflow_telemetry::TraceSink>) {
        self.directory.set_trace_sink(sink);
    }

    /// Spawn an agent on its own thread and register it.
    pub fn spawn<A: Agent>(&mut self, mut agent: A) -> Result<()> {
        let name = agent.name();
        let service_type = agent.service_type();
        let (tx, rx): (Sender<Control>, Receiver<Control>) = unbounded();
        self.directory.register(AgentInfo {
            name: name.clone(),
            service_type,
            mailbox: tx,
        })?;
        let ctx = AgentContext {
            directory: self.directory.clone(),
            agent_name: name.clone(),
            own_rx: rx.clone(),
            pending: std::cell::RefCell::new(std::collections::VecDeque::new()),
            stopped: std::cell::Cell::new(false),
        };
        let thread_name = name.clone();
        let handle = std::thread::Builder::new()
            .name(thread_name.clone())
            .spawn(move || {
                agent.on_start(&ctx);
                loop {
                    // Drain messages buffered by request_and_wait first.
                    while let Some(msg) = ctx.next_pending() {
                        agent.handle(msg, &ctx);
                    }
                    if ctx.stopped.get() {
                        break;
                    }
                    match rx.recv() {
                        Ok(Control::Deliver(msg)) => agent.handle(msg, &ctx),
                        Ok(Control::Stop) | Err(_) => break,
                    }
                }
            })
            .expect("failed to spawn agent thread");
        self.threads.push((name, handle));
        Ok(())
    }

    /// Create a synchronous client handle: a pseudo-agent that can send
    /// requests and block on the correlated replies.  Used by the user
    /// interface and by tests.
    pub fn client(&mut self, label: &str) -> Result<RuntimeHandle> {
        self.client_counter += 1;
        let name = format!("client-{label}-{}", self.client_counter);
        let (tx, rx) = unbounded();
        self.directory.register(AgentInfo {
            name: name.clone(),
            service_type: "client".into(),
            mailbox: tx,
        })?;
        Ok(RuntimeHandle {
            name,
            directory: self.directory.clone(),
            inbox: rx,
            pending: Arc::new(Mutex::new(BTreeMap::new())),
        })
    }

    /// Stop one agent by name: deliver `Stop`, join its thread, and
    /// remove it from the directory.  Used to exercise replica failover
    /// (core services "are replicated to ensure an adequate level of
    /// performance and reliability").
    pub fn stop_agent(&mut self, name: &str) -> Result<()> {
        let info = self.directory.lookup(name)?;
        let _ = info.mailbox.send(Control::Stop);
        if let Some(pos) = self.threads.iter().position(|(n, _)| n == name) {
            let (_, handle) = self.threads.remove(pos);
            let _ = handle.join();
        }
        let _ = self.directory.deregister(name);
        Ok(())
    }

    /// Stop all agents and join their threads.
    pub fn shutdown(&mut self) {
        for (name, _) in &self.threads {
            if let Ok(info) = self.directory.lookup(name) {
                let _ = info.mailbox.send(Control::Stop);
            }
        }
        for (name, handle) in self.threads.drain(..) {
            let _ = handle.join();
            let _ = self.directory.deregister(&name);
        }
    }
}

impl Default for AgentRuntime {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for AgentRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A synchronous client endpoint registered in the directory.
pub struct RuntimeHandle {
    name: String,
    directory: Directory,
    inbox: Receiver<Control>,
    /// Replies that arrived while waiting for a different conversation.
    pending: Arc<Mutex<BTreeMap<u64, AclMessage>>>,
}

impl RuntimeHandle {
    /// The client's directory name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared directory.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Fire-and-forget send.
    pub fn send(
        &self,
        receiver: impl Into<String>,
        performative: Performative,
        ontology: impl Into<String>,
        content: serde_json::Value,
    ) -> Result<u64> {
        let msg = AclMessage::new(performative, self.name.clone(), receiver, ontology, content);
        let id = msg.id;
        self.directory.deliver(msg)?;
        Ok(id)
    }

    /// Send a `Request` and block until the correlated reply arrives (or
    /// the timeout elapses).  `Refuse`/`Failure` replies surface as
    /// [`AgentError::Refused`].
    pub fn request(
        &self,
        receiver: impl Into<String>,
        ontology: impl Into<String>,
        content: serde_json::Value,
        timeout: Duration,
    ) -> Result<AclMessage> {
        let receiver = receiver.into();
        let id = self.send(&receiver, Performative::Request, ontology, content)?;
        self.wait_reply(id, &receiver, timeout)
    }

    /// Wait for the reply correlated to message `id`.
    pub fn wait_reply(&self, id: u64, receiver: &str, timeout: Duration) -> Result<AclMessage> {
        if let Some(msg) = self.pending.lock().remove(&id) {
            return finish_reply(receiver, msg);
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(AgentError::Timeout {
                    agent: receiver.to_owned(),
                    after_ms: timeout.as_millis() as u64,
                });
            }
            match self.inbox.recv_timeout(remaining) {
                Ok(Control::Deliver(msg)) => {
                    if msg.in_reply_to == Some(id) {
                        return finish_reply(receiver, msg);
                    }
                    if let Some(reply_to) = msg.in_reply_to {
                        self.pending.lock().insert(reply_to, msg);
                    }
                    // Unsolicited messages without correlation are dropped;
                    // clients only consume replies.
                }
                Ok(Control::Stop) | Err(_) => {
                    return Err(AgentError::Timeout {
                        agent: receiver.to_owned(),
                        after_ms: timeout.as_millis() as u64,
                    })
                }
            }
        }
    }

    /// Receive the next message addressed to this client (any
    /// correlation), waiting up to `timeout`.
    pub fn recv(&self, timeout: Duration) -> Result<AclMessage> {
        match self.inbox.recv_timeout(timeout) {
            Ok(Control::Deliver(msg)) => Ok(msg),
            _ => Err(AgentError::Timeout {
                agent: "<inbox>".into(),
                after_ms: timeout.as_millis() as u64,
            }),
        }
    }
}

fn finish_reply(receiver: &str, msg: AclMessage) -> Result<AclMessage> {
    if msg.is_negative() {
        let reason = msg
            .content
            .get("reason")
            .and_then(|v| v.as_str())
            .unwrap_or("unspecified")
            .to_owned();
        return Err(AgentError::Refused {
            agent: receiver.to_owned(),
            reason,
        });
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    /// Echoes every request back as an Inform with the same content.
    struct EchoAgent {
        name: String,
    }

    impl Agent for EchoAgent {
        fn name(&self) -> String {
            self.name.clone()
        }
        fn service_type(&self) -> String {
            "echo".into()
        }
        fn handle(&mut self, msg: AclMessage, ctx: &AgentContext) {
            if msg.performative == Performative::Request {
                ctx.reply(&msg, Performative::Inform, msg.content.clone())
                    .expect("reply");
            }
        }
    }

    /// Refuses everything.
    struct GrumpyAgent;

    impl Agent for GrumpyAgent {
        fn name(&self) -> String {
            "grumpy".into()
        }
        fn service_type(&self) -> String {
            "grumpy".into()
        }
        fn handle(&mut self, msg: AclMessage, ctx: &AgentContext) {
            ctx.reply(&msg, Performative::Refuse, json!({"reason": "busy"}))
                .expect("reply");
        }
    }

    /// Forwards requests to the echo agent, then relays the answer to the
    /// original requester (tests agent→agent messaging).
    struct RelayAgent {
        outstanding: Vec<(u64, AclMessage)>,
    }

    impl Agent for RelayAgent {
        fn name(&self) -> String {
            "relay".into()
        }
        fn service_type(&self) -> String {
            "relay".into()
        }
        fn handle(&mut self, msg: AclMessage, ctx: &AgentContext) {
            match msg.performative {
                Performative::Request => {
                    let fwd_id = ctx
                        .request("echo-1", msg.ontology.clone(), msg.content.clone())
                        .expect("forward");
                    self.outstanding.push((fwd_id, msg));
                }
                Performative::Inform => {
                    if let Some(pos) = self
                        .outstanding
                        .iter()
                        .position(|(id, _)| Some(*id) == msg.in_reply_to)
                    {
                        let (_, original) = self.outstanding.remove(pos);
                        ctx.reply(&original, Performative::Inform, msg.content.clone())
                            .expect("relay reply");
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn request_reply_round_trip() {
        let mut rt = AgentRuntime::new();
        rt.spawn(EchoAgent {
            name: "echo-1".into(),
        })
        .unwrap();
        let client = rt.client("test").unwrap();
        let reply = client
            .request("echo-1", "test", json!({"x": 42}), Duration::from_secs(2))
            .unwrap();
        assert_eq!(reply.performative, Performative::Inform);
        assert_eq!(reply.content, json!({"x": 42}));
        rt.shutdown();
    }

    #[test]
    fn refuse_surfaces_as_error() {
        let mut rt = AgentRuntime::new();
        rt.spawn(GrumpyAgent).unwrap();
        let client = rt.client("test").unwrap();
        let err = client
            .request("grumpy", "test", json!({}), Duration::from_secs(2))
            .unwrap_err();
        match err {
            AgentError::Refused { agent, reason } => {
                assert_eq!(agent, "grumpy");
                assert_eq!(reason, "busy");
            }
            other => panic!("expected Refused, got {other:?}"),
        }
        rt.shutdown();
    }

    #[test]
    fn unknown_receiver_is_an_error() {
        let mut rt = AgentRuntime::new();
        let client = rt.client("test").unwrap();
        assert!(matches!(
            client.request("ghost", "t", json!({}), Duration::from_millis(100)),
            Err(AgentError::UnknownAgent(_))
        ));
    }

    #[test]
    fn timeout_when_agent_stays_silent() {
        struct SilentAgent;
        impl Agent for SilentAgent {
            fn name(&self) -> String {
                "silent".into()
            }
            fn service_type(&self) -> String {
                "silent".into()
            }
            fn handle(&mut self, _msg: AclMessage, _ctx: &AgentContext) {}
        }
        let mut rt = AgentRuntime::new();
        rt.spawn(SilentAgent).unwrap();
        let client = rt.client("test").unwrap();
        let err = client
            .request("silent", "t", json!({}), Duration::from_millis(80))
            .unwrap_err();
        assert!(matches!(err, AgentError::Timeout { .. }));
        rt.shutdown();
    }

    #[test]
    fn agent_to_agent_forwarding() {
        let mut rt = AgentRuntime::new();
        rt.spawn(EchoAgent {
            name: "echo-1".into(),
        })
        .unwrap();
        rt.spawn(RelayAgent {
            outstanding: Vec::new(),
        })
        .unwrap();
        let client = rt.client("test").unwrap();
        let reply = client
            .request(
                "relay",
                "t",
                json!({"via": "relay"}),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply.content, json!({"via": "relay"}));
        rt.shutdown();
    }

    #[test]
    fn interleaved_replies_are_correlated() {
        let mut rt = AgentRuntime::new();
        rt.spawn(EchoAgent {
            name: "echo-1".into(),
        })
        .unwrap();
        let client = rt.client("test").unwrap();
        // Fire two requests, then collect replies in reverse order.
        let id1 = client
            .send("echo-1", Performative::Request, "t", json!({"n": 1}))
            .unwrap();
        let id2 = client
            .send("echo-1", Performative::Request, "t", json!({"n": 2}))
            .unwrap();
        let r2 = client
            .wait_reply(id2, "echo-1", Duration::from_secs(2))
            .unwrap();
        let r1 = client
            .wait_reply(id1, "echo-1", Duration::from_secs(2))
            .unwrap();
        assert_eq!(r1.content, json!({"n": 1}));
        assert_eq!(r2.content, json!({"n": 2}));
        rt.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let mut rt = AgentRuntime::new();
        rt.spawn(EchoAgent {
            name: "echo-1".into(),
        })
        .unwrap();
        rt.shutdown();
        rt.shutdown();
        drop(rt); // Drop must not panic.
    }

    #[test]
    fn stop_agent_removes_one_replica_only() {
        let mut rt = AgentRuntime::new();
        rt.spawn(EchoAgent {
            name: "echo-1".into(),
        })
        .unwrap();
        rt.spawn(EchoAgent {
            name: "echo-2".into(),
        })
        .unwrap();
        rt.stop_agent("echo-1").unwrap();
        assert_eq!(rt.directory().find_by_type("echo").len(), 1);
        // The survivor still answers.
        let client = rt.client("t").unwrap();
        let reply = client
            .request("echo-2", "t", json!({"x": 1}), Duration::from_secs(2))
            .unwrap();
        assert_eq!(reply.content, json!({"x": 1}));
        // Stopping an unknown agent errors.
        assert!(rt.stop_agent("echo-1").is_err());
        rt.shutdown();
    }

    #[test]
    fn duplicate_agent_names_rejected_at_spawn() {
        let mut rt = AgentRuntime::new();
        rt.spawn(EchoAgent {
            name: "echo-1".into(),
        })
        .unwrap();
        let err = rt
            .spawn(EchoAgent {
                name: "echo-1".into(),
            })
            .unwrap_err();
        assert!(matches!(err, AgentError::DuplicateAgent(_)));
        rt.shutdown();
    }

    #[test]
    fn directory_sees_spawned_agents_by_type() {
        let mut rt = AgentRuntime::new();
        rt.spawn(EchoAgent {
            name: "echo-1".into(),
        })
        .unwrap();
        rt.spawn(EchoAgent {
            name: "echo-2".into(),
        })
        .unwrap();
        assert_eq!(rt.directory().find_by_type("echo").len(), 2);
        rt.shutdown();
        assert_eq!(rt.directory().find_by_type("echo").len(), 0);
    }
}
