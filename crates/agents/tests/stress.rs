//! Concurrency stress tests for the agent runtime: correlation under
//! interleaving, multi-client contention, and chained synchronous
//! conversations.

use gridflow_agents::{AclMessage, Agent, AgentContext, AgentRuntime, Performative};
use serde_json::json;
use std::time::Duration;

/// Echoes requests with their own content (plus which worker answered).
struct Worker {
    name: String,
}

impl Agent for Worker {
    fn name(&self) -> String {
        self.name.clone()
    }
    fn service_type(&self) -> String {
        "worker".into()
    }
    fn handle(&mut self, msg: AclMessage, ctx: &AgentContext) {
        if msg.performative == Performative::Request {
            let mut body = msg.content.clone();
            body["worker"] = json!(self.name);
            ctx.reply(&msg, Performative::Inform, body).expect("reply");
        }
    }
}

/// Forwards to a worker synchronously (request_and_wait inside handle),
/// then relays — a two-hop synchronous conversation like Fig. 3's.
struct Gateway;

impl Agent for Gateway {
    fn name(&self) -> String {
        "gateway".into()
    }
    fn service_type(&self) -> String {
        "gateway".into()
    }
    fn handle(&mut self, msg: AclMessage, ctx: &AgentContext) {
        if msg.performative != Performative::Request {
            return;
        }
        let target = msg.content["target"]
            .as_str()
            .unwrap_or("worker-0")
            .to_owned();
        match ctx.request_and_wait(target, "t", msg.content.clone(), Duration::from_secs(5)) {
            Ok(reply) => {
                let _ = ctx.reply(&msg, Performative::Inform, reply.content);
            }
            Err(e) => {
                let _ = ctx.reply(
                    &msg,
                    Performative::Failure,
                    json!({"reason": e.to_string()}),
                );
            }
        }
    }
}

#[test]
fn hundreds_of_interleaved_requests_correlate() {
    let mut rt = AgentRuntime::new();
    for i in 0..4 {
        rt.spawn(Worker {
            name: format!("worker-{i}"),
        })
        .unwrap();
    }
    let client = rt.client("stress").unwrap();
    // Fire 200 requests round-robin, then collect all replies in reverse.
    let mut ids = Vec::new();
    for n in 0..200u32 {
        let target = format!("worker-{}", n % 4);
        let id = client
            .send(&target, Performative::Request, "t", json!({"n": n}))
            .unwrap();
        ids.push((id, target, n));
    }
    for (id, target, n) in ids.into_iter().rev() {
        let reply = client
            .wait_reply(id, &target, Duration::from_secs(10))
            .unwrap();
        assert_eq!(reply.content["n"], json!(n), "correlation broke");
        assert_eq!(reply.content["worker"], json!(target));
    }
    rt.shutdown();
}

#[test]
fn many_clients_share_the_runtime() {
    let mut rt = AgentRuntime::new();
    rt.spawn(Worker {
        name: "worker-0".into(),
    })
    .unwrap();
    let clients: Vec<_> = (0..8).map(|_| rt.client("multi").unwrap()).collect();
    // Drive the clients from threads to create real contention.
    std::thread::scope(|scope| {
        for (ci, client) in clients.iter().enumerate() {
            scope.spawn(move || {
                for n in 0..25u32 {
                    let reply = client
                        .request(
                            "worker-0",
                            "t",
                            json!({"ci": ci, "n": n}),
                            Duration::from_secs(10),
                        )
                        .expect("reply");
                    assert_eq!(reply.content["ci"], json!(ci));
                    assert_eq!(reply.content["n"], json!(n));
                }
            });
        }
    });
    rt.shutdown();
}

#[test]
fn chained_synchronous_conversations_under_load() {
    let mut rt = AgentRuntime::new();
    for i in 0..2 {
        rt.spawn(Worker {
            name: format!("worker-{i}"),
        })
        .unwrap();
    }
    rt.spawn(Gateway).unwrap();
    let client = rt.client("chain").unwrap();
    for n in 0..50u32 {
        let target = format!("worker-{}", n % 2);
        let reply = client
            .request(
                "gateway",
                "t",
                json!({"n": n, "target": target}),
                Duration::from_secs(10),
            )
            .unwrap();
        assert_eq!(reply.content["n"], json!(n));
        assert_eq!(reply.content["worker"], json!(target));
    }
    rt.shutdown();
}

#[test]
fn gateway_reports_downstream_timeouts_as_failures() {
    let mut rt = AgentRuntime::new();
    rt.spawn(Gateway).unwrap();
    let client = rt.client("t").unwrap();
    // Target that doesn't exist: the gateway's forward fails fast and the
    // client sees a Failure (surfaced as Refused).
    let err = client
        .request(
            "gateway",
            "t",
            json!({"target": "ghost"}),
            Duration::from_secs(5),
        )
        .unwrap_err();
    assert!(err.to_string().contains("refused"), "{err}");
    rt.shutdown();
}
