//! Shared helpers for the GridFlow benchmark harness: plain-text table
//! rendering for the table/figure regeneration binaries and the ablation
//! sweeps.
//!
//! Regeneration binaries (`cargo run -p gridflow-bench --release --bin <name>`):
//!
//! | target | reproduces |
//! |---|---|
//! | `table1` | Table 1 (GP parameter settings) |
//! | `table2` | Table 2 (ten-run planning study) |
//! | `fig1_architecture` | Fig. 1 (core/end-user service architecture) |
//! | `fig2_planning_flow` | Fig. 2 (planning request message flow) |
//! | `fig3_replanning_flow` | Fig. 3 (re-planning probe message flow) |
//! | `fig4to7_conversions` | Figs. 4–7 (process ⇄ plan-tree conversions) |
//! | `fig8_crossover` | Fig. 8 (crossover example) |
//! | `fig9_mutation` | Fig. 9 (mutation example) |
//! | `fig10_process_description` | Fig. 10 (virus workflow) |
//! | `fig11_plan_tree` | Fig. 11 (its plan tree) |
//! | `fig12_ontology_structure` | Fig. 12 (ontology classes/slots) |
//! | `fig13_ontology_instances` | Fig. 13 (ontology instances) |
//! | `ablation_smax`, `ablation_population`, `ablation_operators`, `ablation_weights`, `ablation_selection` | design-choice sweeps (A1–A4, A6) |
//! | `scaling_activities` | planner scalability vs. catalog size (A5) |
//! | `replanning_robustness` | enactment success vs. failure probability (A8) |
//!
//! Criterion benches (`cargo bench -p gridflow-bench`): `table2_planning`,
//! `enactment`, `matchmaking`, `ontology`, `representations`.

/// Render a plain-text table: headers + rows, columns padded to fit.
/// Widths are measured in characters (not bytes), so the block-glyph
/// bars of [`bar`] align correctly.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let width_of = |s: &str| s.chars().count();
    let mut widths: Vec<usize> = headers.iter().map(|h| width_of(h)).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(width_of(cell));
        }
    }
    let pad = |out: &mut String, text: &str, width: usize| {
        out.push_str(text);
        for _ in width_of(text)..width {
            out.push(' ');
        }
        out.push_str("  ");
    };
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        pad(&mut out, h, widths[i]);
    }
    out.push('\n');
    for (i, _) in headers.iter().enumerate() {
        pad(&mut out, &"-".repeat(widths[i]), widths[i]);
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            pad(&mut out, cell, widths[i]);
        }
        out.push('\n');
    }
    out
}

/// Render a one-line ASCII bar of `value` against `max`, `width` chars.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = if max > 0.0 {
        ((value / max) * width as f64)
            .round()
            .clamp(0.0, width as f64) as usize
    } else {
        0
    };
    format!("{}{}", "█".repeat(filled), "·".repeat(width - filled))
}

/// Standard banner for regeneration binaries.
pub fn banner(what: &str) {
    println!("================================================================");
    println!("GridFlow reproduction — {what}");
    println!("Yu, Bai, Wang, Ji, Marinescu: \"Metainformation and Workflow");
    println!("Management for Solving Complex Problems in Grid Environments\"");
    println!("(IPDPS 2004)");
    println!("================================================================\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["Parameter", "Value"],
            &[
                vec!["Population Size".into(), "200".into()],
                vec!["Smax".into(), "40".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Parameter"));
        assert!(lines[2].contains("200"));
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(0.0, 1.0, 4), "····");
        assert_eq!(bar(1.0, 1.0, 4), "████");
        assert_eq!(bar(0.5, 1.0, 4), "██··");
        assert_eq!(bar(2.0, 0.0, 3), "···");
    }
}
