//! Regenerate **Figure 1**: boot the core-service stack plus the
//! application containers over the virtual laboratory and list what the
//! information service knows — the architecture diagram, in registry
//! form.

use gridflow::casestudy;
use gridflow::prelude::*;
use gridflow_bench::{banner, render_table};
use gridflow_services::agents::GRIDFLOW_ONTOLOGY;
use gridflow_services::information::Registration;
use serde_json::json;
use std::time::Duration;

fn main() {
    banner("Figure 1: core and end-user services");
    let world = share(casestudy::virtual_lab_world(3, 1));
    let mut rt = AgentRuntime::new();
    let gp = GpConfig::default();
    let stack = boot_stack(
        &mut rt,
        world.clone(),
        PlanningService::new(gp),
        EnactmentConfig::default(),
    )
    .expect("stack boots");

    // Matchmaking is invoked in-process by the coordination service (it
    // is a library call on the shared world); register its offering so
    // the Fig. 1 listing is complete.
    stack
        .client
        .request(
            &stack.information,
            GRIDFLOW_ONTOLOGY,
            json!({"action": "register", "registration": Registration{
                name: "matchmaking-1".into(),
                service_type: "matchmaking".into(),
                location: "coordination-1 (in-process)".into(),
                description: "core matchmaking service".into(),
            }}),
            Duration::from_secs(5),
        )
        .expect("registers");

    let reply = stack
        .client
        .request(
            &stack.information,
            GRIDFLOW_ONTOLOGY,
            json!({"action": "list"}),
            Duration::from_secs(5),
        )
        .expect("list");
    let regs: Vec<Registration> =
        serde_json::from_value(reply.content["services"].clone()).expect("parse");

    let mut core: Vec<&Registration> = regs
        .iter()
        .filter(|r| r.service_type != "application-container")
        .collect();
    core.sort_by(|a, b| a.service_type.cmp(&b.service_type));
    println!("core services (the paper's Fig. 1 left box + information service):");
    let rows: Vec<Vec<String>> = core
        .iter()
        .map(|r| vec![r.service_type.clone(), r.name.clone(), r.location.clone()])
        .collect();
    println!("{}", render_table(&["type", "agent", "location"], &rows));

    println!("application containers hosting end-user services (right box):");
    let world = world.read();
    let rows: Vec<Vec<String>> = world
        .topology
        .containers
        .iter()
        .map(|c| {
            vec![
                c.id.clone(),
                c.resource_id.clone(),
                c.services.join(", "),
                if c.up { "up" } else { "down" }.into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["container", "resource", "end-user services", "status"],
            &rows
        )
    );
    drop(world);
    rt.shutdown();
}
