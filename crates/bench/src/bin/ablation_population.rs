//! **Ablation A2 — population/generation budget.**  How large does the
//! GP population need to be (at the paper's 20 generations) to solve the
//! case study reliably?

use gridflow::casestudy;
use gridflow::experiments::sweep;
use gridflow_bench::{banner, bar, render_table};
use gridflow_planner::prelude::GpConfig;

fn main() {
    banner("Ablation A2: population size at 20 generations");
    let problem = casestudy::planning_problem();
    let runs = 10;
    let base = GpConfig {
        seed: 11,
        ..GpConfig::default()
    };
    let points = sweep(
        &problem,
        [10usize, 25, 50, 100, 200, 400].into_iter().map(|pop| {
            (
                format!("{pop}"),
                GpConfig {
                    population_size: pop,
                    ..base
                },
            )
        }),
        runs,
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let solved = p
                .result
                .runs
                .iter()
                .filter(|r| r.fitness.is_perfect())
                .count();
            vec![
                p.label.clone(),
                format!("{solved}/{runs}"),
                bar(solved as f64, runs as f64, 10),
                format!("{:.3}", p.result.avg_fitness),
                format!("{:.2}", p.result.avg_goal),
                format!("{:.1}", p.result.avg_size),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "population",
                "solved",
                "",
                "avg fitness",
                "avg f_g",
                "avg size"
            ],
            &rows
        )
    );
    println!("expected shape: solve rate climbs with population and saturates");
    println!("around the paper's 200; tiny populations miss the goal chain.");
}
