//! Regenerate **Table 1**: the GP parameter settings of the §5
//! experiment.

use gridflow::experiments;
use gridflow_bench::banner;

fn main() {
    banner("Table 1: parameter settings");
    print!("{}", experiments::table1());
    println!(
        "\n(paper values: 200 / 20 / 0.7 / 0.001 / 40 / 0.2 / 0.5 — identical by construction)"
    );
}
