//! Regenerate **Figure 2**: "The interactions between the planning
//! service and the coordination service" — drive a planning-task
//! specification through the coordination agent and print the message
//! exchange.

use gridflow::casestudy;
use gridflow::prelude::*;
use gridflow_bench::banner;
use gridflow_services::agents::GRIDFLOW_ONTOLOGY;
use gridflow_services::planning::PlanRequest;
use serde_json::json;
use std::time::Duration;

fn main() {
    banner("Figure 2: planning-request message flow");
    let world = share(casestudy::virtual_lab_world(0, 2));
    let mut rt = AgentRuntime::new();
    let gp = GpConfig {
        seed: 2,
        ..GpConfig::default()
    };
    let stack = boot_stack(
        &mut rt,
        world,
        PlanningService::new(gp),
        EnactmentConfig::default(),
    )
    .expect("stack boots");

    let problem = casestudy::planning_problem();
    let request = PlanRequest {
        initial: problem.initial,
        goals: problem.goals,
        produced: vec![],
        excluded: vec![],
    };

    println!("user-interface        → coordination-1 : planning task specification");
    println!("  (S_init = D1..D7 classifications, G = {{Resolution File ≥ 1}})");
    println!("coordination-1        → planning-1     : 1. Planning task specification");
    let reply = stack
        .client
        .request(
            &stack.coordination,
            GRIDFLOW_ONTOLOGY,
            json!({"action": "plan_request", "request": request}),
            Duration::from_secs(300),
        )
        .expect("plan flows back");
    println!("planning-1            → coordination-1 : 2. plan");
    println!("coordination-1        → user-interface : plan relayed\n");

    println!(
        "viable: {}   fitness: {}",
        reply.content["viable"], reply.content["fitness"]["overall"]
    );
    println!("\nthe plan, as a process description:\n");
    println!("{}", reply.content["process_text"].as_str().unwrap());
    rt.shutdown();
}
