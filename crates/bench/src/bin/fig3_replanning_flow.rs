//! Regenerate **Figure 3**: "The flow of communications between the
//! planning service and other services during re-planning" — kill a
//! service's hosts, send a re-planning request, and print the probe
//! trace (information → brokerage → application containers).

use gridflow::casestudy;
use gridflow::prelude::*;
use gridflow_bench::banner;
use gridflow_services::agents::GRIDFLOW_ONTOLOGY;
use gridflow_services::planning::PlanRequest;
use serde_json::json;
use std::time::Duration;

fn main() {
    banner("Figure 3: re-planning message flow");
    let world = share(casestudy::virtual_lab_world(0, 3));
    // The orientation-refinement hosts die (POR is optional for the
    // minimal plan, so re-planning can still succeed).
    {
        let mut w = world.write();
        for c in w.hosting_containers("POR") {
            w.set_container_up(&c, false).expect("known container");
            println!("✗ {c} (hosting POR) goes down");
        }
    }
    let mut rt = AgentRuntime::new();
    let gp = GpConfig {
        seed: 3,
        ..GpConfig::default()
    };
    let stack = boot_stack(
        &mut rt,
        world,
        PlanningService::new(gp),
        EnactmentConfig::default(),
    )
    .expect("stack boots");
    stack
        .client
        .request(
            &stack.brokerage,
            GRIDFLOW_ONTOLOGY,
            json!({"action": "refresh"}),
            Duration::from_secs(5),
        )
        .expect("broker refresh");

    let problem = casestudy::planning_problem();
    let request = PlanRequest {
        initial: problem.initial,
        goals: problem.goals,
        produced: vec![],
        excluded: vec![],
    };
    println!("\ncoordination          → planning-1     : 1. planning task + non-executable activities [POR, PSF]");
    let reply = stack
        .client
        .request(
            &stack.planning,
            GRIDFLOW_ONTOLOGY,
            json!({
                "action": "replan",
                "request": request,
                "nonexecutable": ["POR", "PSF"],
            }),
            Duration::from_secs(300),
        )
        .expect("replan replies");

    println!("\nprobe trace (steps 2–7 of the figure):");
    let trace: Vec<String> =
        serde_json::from_value(reply.content["probe_trace"].clone()).expect("trace");
    for (i, line) in trace.iter().enumerate() {
        println!("  {}. {line}", i + 2);
    }
    let excluded: Vec<String> =
        serde_json::from_value(reply.content["excluded"].clone()).expect("excluded");
    println!("\nexcluded after probing: {excluded:?}");
    println!(
        "planning-1            → coordination   : 8. a new plan (viable = {})",
        reply.content["viable"]
    );
    println!(
        "\nthe new plan:\n\n{}",
        reply.content["process_text"].as_str().unwrap()
    );
    rt.shutdown();
}
