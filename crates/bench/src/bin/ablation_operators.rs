//! **Ablation A3 — operator rates.**  A grid over crossover rate ×
//! mutation rate around the paper's (0.7, 0.001).

use gridflow::casestudy;
use gridflow::experiments::table2_on;
use gridflow_bench::{banner, render_table};
use gridflow_planner::prelude::GpConfig;

fn main() {
    banner("Ablation A3: crossover × mutation rates");
    let problem = casestudy::planning_problem();
    let runs = 8;
    let base = GpConfig {
        seed: 13,
        ..GpConfig::default()
    };
    let crossover_rates = [0.0, 0.3, 0.7, 0.9];
    let mutation_rates = [0.0, 0.001, 0.01, 0.05];

    let mut rows = Vec::new();
    for &pc in &crossover_rates {
        for &pm in &mutation_rates {
            let cfg = GpConfig {
                crossover_rate: pc,
                mutation_rate: pm,
                ..base
            };
            let result = table2_on(&problem, cfg, runs);
            let solved = result
                .runs
                .iter()
                .filter(|r| r.fitness.is_perfect())
                .count();
            let marker = if (pc, pm) == (0.7, 0.001) {
                "← Table 1"
            } else {
                ""
            };
            rows.push(vec![
                format!("{pc}"),
                format!("{pm}"),
                format!("{solved}/{runs}"),
                format!("{:.3}", result.avg_fitness),
                format!("{:.1}", result.avg_size),
                marker.to_owned(),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["p_c", "p_m", "solved", "avg fitness", "avg size", ""],
            &rows
        )
    );
    println!("expected shape: crossover does the heavy lifting (p_c = 0 hurts);");
    println!("mutation is a background operator — a little helps diversity,");
    println!("a lot disrupts converged building blocks.");
}
