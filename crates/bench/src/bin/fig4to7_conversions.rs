//! Regenerate **Figures 4–7**: the process-description ⇄ plan-tree
//! conversions for sequential, concurrent, selective, and iterative
//! activities.  Each figure prints the textual process description, the
//! flattened graph (activities + transitions), the converted plan tree,
//! and the round-trip check.

use gridflow::prelude::*;
use gridflow_bench::banner;

fn show(figure: &str, title: &str, src: &str) {
    println!("---- Figure {figure}: {title} ----\n");
    let ast = parse_process(src).expect("parses");
    println!("(a) process description:\n{}", printer::print(&ast));
    let graph = lower(format!("fig{figure}"), &ast).expect("lowers");
    println!(
        "    graph form: {} activities, {} transitions",
        graph.activities().len(),
        graph.transitions().len()
    );
    for t in graph.transitions() {
        match &t.condition {
            Some(c) => println!("      {}: {} → {}  [{}]", t.id, t.source, t.dest, c),
            None => println!("      {}: {} → {}", t.id, t.source, t.dest),
        }
    }
    let tree = ast_to_tree(&ast);
    println!("\n(b) plan tree ({} nodes):", tree.size());
    print_tree(&tree, 1);
    let recovered = graph_to_tree(&graph).expect("recovers");
    println!(
        "\nround trip (graph → tree) reproduces the tree: {}\n",
        recovered == tree
    );
}

fn print_tree(node: &PlanNode, depth: usize) {
    let pad = "  ".repeat(depth);
    match node {
        PlanNode::Terminal(name) => println!("{pad}{name}"),
        PlanNode::Sequential(c) => {
            println!("{pad}Sequential");
            c.iter().for_each(|n| print_tree(n, depth + 1));
        }
        PlanNode::Concurrent(c) => {
            println!("{pad}Concurrent");
            c.iter().for_each(|n| print_tree(n, depth + 1));
        }
        PlanNode::Selective(c) => {
            println!("{pad}Selective");
            for (cond, n) in c {
                println!("{pad}  [{cond}]");
                print_tree(n, depth + 2);
            }
        }
        PlanNode::Iterative { cond, body } => {
            println!("{pad}Iterative [{cond}]");
            body.iter().for_each(|n| print_tree(n, depth + 1));
        }
    }
}

fn main() {
    banner("Figures 4–7: process description ⇄ plan tree conversions");
    show("4", "sequential activities", "BEGIN A; B; C; END");
    show(
        "5",
        "concurrent activities (Fork/Join)",
        "BEGIN FORK { { A; }, { B; } } JOIN; END",
    );
    show(
        "6",
        "selective activities (Choice/Merge)",
        "BEGIN CHOICE { COND { D.Classification = \"ready\" } { A; }, COND { true } { B; } } MERGE; END",
    );
    show(
        "7",
        "iterative activities (loop)",
        "BEGIN ITERATIVE { COND { D.Value > 8.0 } } { A; B; }; END",
    );
}
