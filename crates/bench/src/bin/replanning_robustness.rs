//! **Ablation A8 — enactment robustness vs. failure probability.**
//! Sweep the per-execution failure rate of the grid and compare three
//! coordination policies on the Fig. 10 workflow: no retries, retries
//! only, retries + re-planning (§3.3).

use gridflow::casestudy;
use gridflow::prelude::*;
use gridflow_bench::{banner, bar, render_table};
use gridflow_grid::failure::FailureModel;

fn run_policy(
    failure_prob: f64,
    max_candidates: usize,
    replan: bool,
    trials: u64,
    seed: u64,
) -> (usize, f64) {
    let mut successes = 0;
    let mut replans_total = 0usize;
    for trial in 0..trials {
        let mut world = casestudy::virtual_lab_world(0, 5);
        world.failure = if failure_prob == 0.0 {
            FailureModel::none()
        } else {
            FailureModel::new(seed * 1000 + trial, failure_prob)
        };
        // Failures are transient here: the service instance crashes but
        // the container survives (persistent failures are covered by the
        // Fig. 3 flow).
        world.failures_are_persistent = false;
        let config = EnactmentConfig {
            max_candidates,
            replan,
            planning_goals: casestudy::planning_problem().goals,
            wrap_replans_with_constraint: Some("Cons1".into()),
            gp: GpConfig {
                population_size: 100,
                generations: 15,
                seed: seed * 7 + trial,
                ..GpConfig::default()
            },
            ..EnactmentConfig::default()
        };
        let report = Enactor::builder().config(config).build().enact(
            &mut world,
            &casestudy::process_description(),
            &casestudy::case_description(),
        );
        if report.success {
            successes += 1;
        }
        replans_total += report.replans;
    }
    (successes, replans_total as f64 / trials as f64)
}

fn main() {
    banner("Ablation A8: enactment success vs. failure probability");
    let trials = 20u64;
    let mut rows = Vec::new();
    for &p in &[0.0, 0.05, 0.1, 0.2, 0.3, 0.5] {
        let (no_retry, _) = run_policy(p, 1, false, trials, 1);
        let (retry, _) = run_policy(p, 3, false, trials, 2);
        let (retry_replan, avg_replans) = run_policy(p, 3, true, trials, 3);
        rows.push(vec![
            format!("{p:.2}"),
            format!(
                "{no_retry}/{trials} {}",
                bar(no_retry as f64, trials as f64, 10)
            ),
            format!("{retry}/{trials} {}", bar(retry as f64, trials as f64, 10)),
            format!(
                "{retry_replan}/{trials} {} (avg {avg_replans:.1} replans)",
                bar(retry_replan as f64, trials as f64, 10)
            ),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["p(fail)", "no retry", "retry×3", "retry×3 + re-planning"],
            &rows
        )
    );
    println!("observed shape: success collapses without retries as the");
    println!("~17-execution workflow compounds per-step failure; retries");
    println!("absorb moderate failure rates; at high rates re-planning");
    println!("dominates — when every candidate of an activity fails, a fresh");
    println!("plan (with the refinement loop re-attached) restarts the chase");
    println!("with the data produced so far credited to S_init.");
}
