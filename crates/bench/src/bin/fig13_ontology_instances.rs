//! Regenerate **Figure 13**: "Instances of the ontologies used for
//! enactment of the process description in Figure 10" — the Task,
//! ProcessDescription, CaseDescription, Activity, Transition, Data, and
//! Service instance tables.

use gridflow::casestudy;
use gridflow_bench::{banner, render_table};
use gridflow_ontology::schema::classes;

fn main() {
    banner("Figure 13: ontology instances for task 3DSD");
    let kb = casestudy::ontology_instances();
    assert!(kb.validate_all().is_empty(), "instances must validate");

    // --- Task ---------------------------------------------------------
    let t1 = kb.instance("T1").expect("task");
    println!("Task:");
    println!(
        "{}",
        render_table(
            &[
                "ID",
                "Name",
                "Owner",
                "Process Description",
                "Case Description"
            ],
            &[vec![
                t1.get_str("ID").unwrap().into(),
                t1.get_str("Name").unwrap().into(),
                t1.get_str("Owner").unwrap().into(),
                t1.get_ref("Process Description").unwrap().into(),
                t1.get_ref("Case Description").unwrap().into(),
            ]],
        )
    );

    // --- Process / case description ------------------------------------
    let pd = kb.instance("PD-3DSD").expect("pd");
    println!("ProcessDescription PD-3DSD:");
    println!("  Activity Set:   {:?}", pd.get_ref_list("Activity Set"));
    println!(
        "  Transition Set: {:?}\n",
        pd.get_ref_list("Transition Set")
    );
    let cd = kb.instance("CD-3DSD").expect("cd");
    println!("CaseDescription CD-3DSD:");
    println!(
        "  Initial Data Set: {:?}",
        cd.get_ref_list("Initial Data Set")
    );
    println!("  Goal:             {}", cd.get_str("Goal").unwrap());
    println!("  Result Set:       {:?}\n", cd.get_ref_list("Result Set"));

    // --- Activities -----------------------------------------------------
    println!("Activities:");
    let rows: Vec<Vec<String>> = kb
        .instances_of(classes::ACTIVITY)
        .map(|a| {
            vec![
                a.get_str("ID").unwrap_or("").into(),
                a.get_str("Name").unwrap_or("").into(),
                a.get_str("Type").unwrap_or("").into(),
                a.get_str("Service Name").unwrap_or("—").into(),
                format!("{:?}", a.get_ref_list("Input Data Set")),
                format!("{:?}", a.get_ref_list("Output Data Set")),
                a.get_str("Constraint").unwrap_or("").into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "ID",
                "Name",
                "Type",
                "Service",
                "Inputs",
                "Outputs",
                "Constraint"
            ],
            &rows
        )
    );

    // --- Transitions ----------------------------------------------------
    println!("Transitions:");
    let rows: Vec<Vec<String>> = kb
        .instances_of(classes::TRANSITION)
        .map(|t| {
            vec![
                t.get_str("ID").unwrap_or("").into(),
                t.get_ref("Source Activity").unwrap_or("").into(),
                t.get_ref("Destination Activity").unwrap_or("").into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["ID", "Source Activity", "Destination Activity"], &rows)
    );

    // --- Data ------------------------------------------------------------
    println!("Data:");
    let rows: Vec<Vec<String>> = kb
        .instances_of(classes::DATA)
        .map(|d| {
            vec![
                d.id.clone(),
                d.get_str("Creator").unwrap_or("").into(),
                d.get_int("Size").map(|s| s.to_string()).unwrap_or_default(),
                d.get_str("Classification").unwrap_or("").into(),
                d.get_str("Format").unwrap_or("").into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Name", "Creator", "Size", "Classification", "Format"],
            &rows
        )
    );

    // --- Services ---------------------------------------------------------
    println!("Services (signatures C1–C8):");
    for s in kb.instances_of(classes::SERVICE) {
        println!("  {}:", s.id);
        for cond in s.get_list("Input Condition").unwrap_or(&[]) {
            println!("    in:  {}", cond.as_str().unwrap_or(""));
        }
        for cond in s.get_list("Output Condition").unwrap_or(&[]) {
            println!("    out: {}", cond.as_str().unwrap_or(""));
        }
    }
    println!("\nconstraint Cons1 (normalized to D12, see casestudy docs):");
    println!("  if ({}) then Merge else End", casestudy::cons1());
    println!(
        "\ntotal: {} instances, 0 validation errors, 0 dangling references",
        kb.instance_count()
    );
}
