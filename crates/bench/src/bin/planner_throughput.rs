//! **Planner throughput — GP search, fitness memoization, and the
//! fleet-shared plan cache.**
//!
//! Three sweeps, reported into `BENCH_planner.json`:
//!
//! 1. **GP search throughput** — repeated full GP runs of the dinner
//!    planning problem (population 80 × 25 generations), with fitness
//!    memoization on and off, reporting plans/sec, generations/sec,
//!    and the memo hit count per run.  Memoization is a strict
//!    performance knob: both rows produce byte-identical winners.
//! 2. **Cold vs warm fleet planning** — an identical-goal fleet of N
//!    planning requests, once with the cache disabled (N full GP runs)
//!    and once against a pre-warmed [`PlanCacheHandle`] (N content-
//!    addressed hits), reporting both wall times, the speedup, and the
//!    cache hit rate.
//! 3. **Single-flight dedup** — the same fleet issued cold against one
//!    shared cache: the first request runs GP, the rest hit the entry
//!    it published.
//!
//! ```sh
//! cargo run --release --bin planner_throughput
//! cargo run --release --bin planner_throughput -- --plans 3 --fleet 16  # CI smoke
//! cargo run --release --bin planner_throughput -- --guard               # + regression gate
//! ```
//!
//! `--guard` reads the committed `BENCH_planner.json` *before*
//! overwriting it and exits non-zero if the headline point (memoized
//! plans/sec, best of three measurements) regressed more than 20%
//! against it, or if the warm-cache fleet fails to beat the cold fleet
//! by at least 10× — the CI seam that keeps the plan cache's
//! fleet-scale claim honest.

use gridflow_bench::{banner, render_table};
use gridflow_harness::workload::dinner_world;
use gridflow_planner::prelude::*;
use gridflow_services::{PlanCacheHandle, PlanRequest, PlanningService};
use serde_json::json;
use std::time::Instant;

/// The headline GP shape: the replanning workload's configuration.
const POPULATION: usize = 80;
const GENERATIONS: usize = 25;
const GP_SEED: u64 = 11;
/// Default GP runs per throughput cell / requests per fleet sweep.
const DEFAULT_PLANS: usize = 8;
const DEFAULT_FLEET: usize = 64;
/// The regression gate's tolerance and sampling.
const GUARD_FLOOR: f64 = 0.8;
const GUARD_MEASUREMENTS: usize = 3;
/// The warm-cache fleet must beat the cold (cache-disabled) fleet by
/// at least this factor in wall time.
const WARM_SPEEDUP_MIN: f64 = 10.0;

fn gp_config(memoize: bool) -> GpConfig {
    GpConfig {
        population_size: POPULATION,
        generations: GENERATIONS,
        seed: GP_SEED,
        memoize_fitness: memoize,
        ..GpConfig::default()
    }
}

fn dinner_problem() -> PlanningProblem {
    dinner_world().planning_problem(
        vec!["Raw".into()],
        vec![GoalSpec {
            classification: "Plated".into(),
            min_count: 1,
        }],
    )
}

fn dinner_request() -> PlanRequest {
    PlanRequest {
        initial: vec!["Raw".into()],
        goals: vec![GoalSpec {
            classification: "Plated".into(),
            min_count: 1,
        }],
        produced: vec![],
        excluded: vec![],
    }
}

/// One throughput measurement: `plans` full GP runs, returning
/// (plans/sec, memo hits of the last run).
fn measure_gp(memoize: bool, plans: usize) -> (f64, usize) {
    let problem = dinner_problem();
    let start = Instant::now();
    let mut memo_hits = 0;
    for _ in 0..plans {
        let result = GpPlanner::new(gp_config(memoize), problem.clone()).run();
        memo_hits = result.memo_hits;
    }
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    (plans as f64 / wall, memo_hits)
}

/// The committed baseline memoized plans/sec, if the report on disk
/// has one.
fn baseline_plans_per_sec(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let report: serde_json::Value = serde_json::from_str(&text).ok()?;
    report.get("results")?.as_array()?.iter().find_map(|r| {
        r.get("memoize")?
            .as_bool()?
            .then(|| r.get("plans_per_sec")?.as_f64())
            .flatten()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str, default: usize| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(default)
    };
    let plans = arg("--plans", DEFAULT_PLANS).max(1);
    let fleet = arg("--fleet", DEFAULT_FLEET).max(2);
    let guard = args.iter().any(|a| a == "--guard");

    let path = "BENCH_planner.json";
    let baseline = guard.then(|| baseline_plans_per_sec(path)).flatten();

    banner("planner throughput: GP search with and without fitness memoization");
    let mut rows = Vec::new();
    let mut results = Vec::new();
    let mut guard_measured: Option<f64> = None;
    for memoize in [true, false] {
        let start = Instant::now();
        let (plans_per_sec, memo_hits) = measure_gp(memoize, plans);
        let wall = start.elapsed();
        let generations_per_sec = plans_per_sec * GENERATIONS as f64;
        if memoize {
            guard_measured = Some(plans_per_sec);
        }
        rows.push(vec![
            memoize.to_string(),
            plans.to_string(),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            format!("{plans_per_sec:.2}"),
            format!("{generations_per_sec:.0}"),
            memo_hits.to_string(),
        ]);
        results.push(json!({
            "memoize": memoize,
            "population_size": POPULATION,
            "generations": GENERATIONS,
            "plans": plans,
            "wall_ms": wall.as_secs_f64() * 1e3,
            "plans_per_sec": plans_per_sec,
            "generations_per_sec": generations_per_sec,
            "memo_hits_per_plan": memo_hits,
        }));
    }
    println!(
        "{}",
        render_table(
            &[
                "memoize",
                "plans",
                "wall ms",
                "plans/s",
                "generations/s",
                "memo hits/plan",
            ],
            &rows,
        )
    );

    banner("fleet planning: cold (cache disabled) vs warm (shared cache)");
    let world = dinner_world();
    let request = dinner_request();
    let uncached = PlanningService::new(gp_config(true));
    let start = Instant::now();
    for _ in 0..fleet {
        uncached.plan(&world, &request).expect("cold plan");
    }
    let cold_wall = start.elapsed();

    let cache = PlanCacheHandle::in_proc();
    let cached = PlanningService::new(gp_config(true)).with_plan_cache(cache.clone());
    // Single-flight dedup: the fleet issued cold against one shared
    // cache — request 0 runs GP, requests 1..N hit its entry.
    let start = Instant::now();
    for _ in 0..fleet {
        cached.plan(&world, &request).expect("dedup plan");
    }
    let dedup_wall = start.elapsed();
    let dedup_stats = cache.stats();
    assert_eq!(dedup_stats.misses, 1, "one GP run for the whole fleet");
    assert_eq!(dedup_stats.hits, (fleet - 1) as u64);

    // Warm: every request hits the already-published entry.
    let start = Instant::now();
    for _ in 0..fleet {
        cached.plan(&world, &request).expect("warm plan");
    }
    let warm_wall = start.elapsed();
    let warm_speedup = cold_wall.as_secs_f64() / warm_wall.as_secs_f64().max(1e-9);
    let hit_rate = cache.stats().hit_rate();

    println!(
        "{}",
        render_table(
            &["fleet pass", "cases", "wall ms", "GP runs"],
            &[
                vec![
                    "cold (no cache)".into(),
                    fleet.to_string(),
                    format!("{:.1}", cold_wall.as_secs_f64() * 1e3),
                    fleet.to_string(),
                ],
                vec![
                    "cold (shared cache)".into(),
                    fleet.to_string(),
                    format!("{:.1}", dedup_wall.as_secs_f64() * 1e3),
                    "1".into(),
                ],
                vec![
                    "warm (shared cache)".into(),
                    fleet.to_string(),
                    format!("{:.1}", warm_wall.as_secs_f64() * 1e3),
                    "0".into(),
                ],
            ],
        )
    );
    println!("warm speedup over cold: {warm_speedup:.0}x; cache hit rate: {hit_rate:.4}");

    let report = json!({
        "bench": "planner_throughput",
        "gp": {"population_size": POPULATION, "generations": GENERATIONS, "seed": GP_SEED},
        "results": results,
        "fleet": {
            "cases": fleet,
            "cold_wall_ms": cold_wall.as_secs_f64() * 1e3,
            "dedup_wall_ms": dedup_wall.as_secs_f64() * 1e3,
            "warm_wall_ms": warm_wall.as_secs_f64() * 1e3,
            "warm_speedup": warm_speedup,
            "cache_hit_rate": hit_rate,
            "cache_entries": cache.len(),
            "dedup_gp_runs": dedup_stats.misses,
        },
    });
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serializes"),
    )
    .expect("write BENCH_planner.json");
    println!("wrote {path}");

    if guard {
        let mut measured = guard_measured.expect("memoized cell always measured");
        // Best-of-N: shared CI runners jitter wall-clock throughput far
        // more than any real regression.
        for _ in 1..GUARD_MEASUREMENTS {
            measured = measured.max(measure_gp(true, plans).0);
        }
        match baseline {
            Some(base) => {
                let floor = base * GUARD_FLOOR;
                println!(
                    "guard: memoized GP: {measured:.2} plans/s vs committed baseline \
                     {base:.2} (floor {floor:.2})"
                );
                if measured < floor {
                    eprintln!("guard: plans/sec regressed more than 20% — failing");
                    std::process::exit(1);
                }
            }
            None => println!("guard: no committed baseline for the guard point; recording only"),
        }
        println!(
            "guard: warm fleet {warm_speedup:.0}x faster than cold (gate {WARM_SPEEDUP_MIN}x)"
        );
        if warm_speedup < WARM_SPEEDUP_MIN {
            eprintln!("guard: warm-cache fleet speedup fell below {WARM_SPEEDUP_MIN}x — failing");
            std::process::exit(1);
        }
    }
}
