//! **Ablation A6 — selection pressure.**  §3.4.5 uses binary tournament
//! selection; sweep the tournament size (1 = no selection pressure,
//! pure drift) and watch convergence respond.

use gridflow::casestudy;
use gridflow::experiments::table2_on;
use gridflow_bench::{banner, bar, render_table};
use gridflow_planner::prelude::GpConfig;

fn main() {
    banner("Ablation A6: tournament size (selection pressure)");
    let problem = casestudy::planning_problem();
    let runs = 10;
    let base = GpConfig {
        seed: 19,
        ..GpConfig::default()
    };
    let mut rows = Vec::new();
    for size in [1usize, 2, 4, 8, 16] {
        let cfg = GpConfig {
            tournament_size: size,
            ..base
        };
        let result = table2_on(&problem, cfg, runs);
        let solved = result
            .runs
            .iter()
            .filter(|r| r.fitness.is_perfect())
            .count();
        let marker = if size == 2 { "← paper (§3.4.5)" } else { "" };
        rows.push(vec![
            format!("{size}"),
            format!("{solved}/{runs}"),
            bar(solved as f64, runs as f64, 10),
            format!("{:.3}", result.avg_fitness),
            format!("{:.1}", result.avg_size),
            marker.to_owned(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["tournament", "solved", "", "avg fitness", "avg size", ""],
            &rows
        )
    );

    // Companion sweep: elitism on top of binary tournaments.  The
    // paper's procedure has none; elitism makes the best-of-generation
    // fitness monotone (the engine test asserts this) at a mild
    // diversity cost.
    println!("elitism (with binary tournaments):\n");
    let mut rows = Vec::new();
    for elites in [0usize, 1, 4, 16] {
        let cfg = GpConfig {
            elitism: elites,
            ..base
        };
        let result = table2_on(&problem, cfg, runs);
        let solved = result
            .runs
            .iter()
            .filter(|r| r.fitness.is_perfect())
            .count();
        let marker = if elites == 0 {
            "← paper (§3.4.6)"
        } else {
            ""
        };
        rows.push(vec![
            format!("{elites}"),
            format!("{solved}/{runs}"),
            bar(solved as f64, runs as f64, 10),
            format!("{:.3}", result.avg_fitness),
            format!("{:.1}", result.avg_size),
            marker.to_owned(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["elites", "solved", "", "avg fitness", "avg size", ""],
            &rows
        )
    );
    println!("expected shape: size 1 is random drift (rarely solves);");
    println!("binary tournaments already solve reliably; very large");
    println!("tournaments over-exploit; a little elitism never hurts on");
    println!("this landscape and pins the best plan in place.");
}
