//! Regenerate **Figure 12**: "Logic view of the ontology structure used
//! by the framework" — every class with its slots, plus the reference
//! links between classes.

use gridflow_bench::{banner, render_table};
use gridflow_ontology::schema::grid_ontology_shell;
use gridflow_ontology::ValueType;

fn main() {
    banner("Figure 12: the grid ontology structure");
    let kb = grid_ontology_shell();
    for class in kb.classes() {
        println!("┌─ {} — {}", class.name, class.doc);
        let rows: Vec<Vec<String>> = kb
            .effective_slots(&class.name)
            .expect("class exists")
            .iter()
            .map(|s| {
                let kind = match (&s.facets.value_type, &s.facets.ref_class) {
                    (ValueType::Ref, Some(target)) => format!("→ {target}"),
                    (vt, _) => vt.to_string(),
                };
                let card = match s.facets.cardinality {
                    gridflow_ontology::Cardinality::Single => "1",
                    gridflow_ontology::Cardinality::Multiple => "*",
                };
                vec![
                    s.name.clone(),
                    kind,
                    card.to_owned(),
                    if s.facets.required { "required" } else { "" }.to_owned(),
                ]
            })
            .collect();
        let table = render_table(&["slot", "type", "card", ""], &rows);
        for line in table.lines() {
            println!("│  {line}");
        }
        println!("└─");
    }

    println!("\nreference links between classes (the figure's arrows):");
    for class in kb.classes() {
        for slot in kb.effective_slots(&class.name).expect("exists") {
            if let Some(target) = &slot.facets.ref_class {
                println!("  {} ─({})→ {}", class.name, slot.name, target);
            }
        }
    }
}
