//! Regenerate **Table 2**: "We test the algorithm ten times and select
//! the individual with the highest fitness in the final generation as
//! the solution.  Then we calculate the average fitness, validity
//! fitness, goal fitness, and the size of solutions over ten runs."
//!
//! Run with `--release`; ten full Table-1-sized GP runs take a little
//! while in debug builds.

use gridflow::experiments;
use gridflow_bench::{banner, render_table};
use gridflow_planner::prelude::GpConfig;

fn main() {
    banner("Table 2: ten-run planning study on the virus case study");
    let config = GpConfig {
        seed: 1,
        ..experiments::table1_config()
    };
    let result = experiments::table2(config, 10);

    println!("per-run best solutions:");
    let rows: Vec<Vec<String>> = result
        .runs
        .iter()
        .enumerate()
        .map(|(i, r)| {
            vec![
                format!("{}", i + 1),
                format!("{}", r.seed),
                format!("{:.3}", r.fitness.overall),
                format!("{:.2}", r.fitness.validity),
                format!("{:.2}", r.fitness.goal),
                format!("{}", r.fitness.size),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["run", "seed", "fitness", "f_v", "f_g", "size"], &rows)
    );

    println!("{result}");
    println!("paper reports (Table 2):");
    println!("{:<28} {:>8}", "Average Fitness", "0.928");
    println!("{:<28} {:>8}", "Average Validity Fitness", "1.0");
    println!("{:<28} {:>8}", "Average Goal Fitness", "1.0");
    println!("{:<28} {:>8}", "Average Size of solutions", "9.7");
    println!();
    println!(
        "shape check: every run perfect = {}, avg fitness in (0.9, 1.0) = {}",
        result.all_perfect(),
        result.avg_fitness > 0.9 && result.avg_fitness < 1.0
    );
}
