//! Regenerate **Figure 8**: "An example of crossover performed on two
//! plan trees" — build the figure's two parents, cross them at a fixed
//! seed, and show parents and offspring.

use gridflow::prelude::*;
use gridflow_bench::banner;
use gridflow_planner::genetic::crossover;
use rand::SeedableRng;

fn t(name: &str) -> PlanNode {
    PlanNode::terminal(name)
}

fn print_tree(node: &PlanNode, depth: usize) {
    let pad = "  ".repeat(depth);
    match node {
        PlanNode::Terminal(name) => println!("{pad}{name}"),
        PlanNode::Sequential(c) => {
            println!("{pad}Sequential");
            c.iter().for_each(|n| print_tree(n, depth + 1));
        }
        PlanNode::Concurrent(c) => {
            println!("{pad}Concurrent");
            c.iter().for_each(|n| print_tree(n, depth + 1));
        }
        PlanNode::Selective(c) => {
            println!("{pad}Selective");
            c.iter().for_each(|(_, n)| print_tree(n, depth + 1));
        }
        PlanNode::Iterative { body, .. } => {
            println!("{pad}Iterative");
            body.iter().for_each(|n| print_tree(n, depth + 1));
        }
    }
}

fn main() {
    banner("Figure 8: crossover on plan trees");
    // Fig. 8(a): parent 1 = Sequential(A, Selective(B, C), D);
    //            parent 2 = Sequential(Concurrent(E, F), G).
    let parent1 = PlanNode::Sequential(vec![
        t("A"),
        PlanNode::selective_unguarded([t("B"), t("C")]),
        t("D"),
    ]);
    let parent2 = PlanNode::Sequential(vec![PlanNode::Concurrent(vec![t("E"), t("F")]), t("G")]);
    println!("(a) parents:\n\nparent 1 (size {}):", parent1.size());
    print_tree(&parent1, 1);
    println!("\nparent 2 (size {}):", parent2.size());
    print_tree(&parent2, 1);

    // Seed chosen so the exchanged subtrees are interior nodes, as in the
    // figure (the Selective subtree of parent 1 ↔ the Concurrent subtree
    // of parent 2).
    let mut chosen = None;
    for seed in 0..200u64 {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        if let Some((c1, c2)) = crossover(&parent1, &parent2, &mut rng, 40) {
            let c1_has_concurrent = c1.controller_counts().1 > 0;
            let c2_has_selective = c2.controller_counts().2 > 0;
            if c1_has_concurrent && c2_has_selective {
                chosen = Some((seed, c1, c2));
                break;
            }
        }
    }
    let (seed, child1, child2) = chosen.expect("an interior-node crossover exists");
    println!("\n(b)+(c) after crossover (seed {seed}; subtrees exchanged):");
    println!("\nchild 1 (size {}):", child1.size());
    print_tree(&child1, 1);
    println!("\nchild 2 (size {}):", child2.size());
    print_tree(&child2, 1);
    println!(
        "\ninvariant: sizes conserve ({} + {} = {} + {})",
        parent1.size(),
        parent2.size(),
        child1.size(),
        child2.size()
    );
    assert_eq!(
        parent1.size() + parent2.size(),
        child1.size() + child2.size()
    );
}
