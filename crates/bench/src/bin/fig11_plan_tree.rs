//! Regenerate **Figure 11**: "The corresponding plan tree to the process
//! description for the 3D reconstruction of virus structures" — derived
//! mechanically from the Fig. 10 graph and checked against the
//! hand-drawn tree.

use gridflow::casestudy;
use gridflow::prelude::*;
use gridflow_bench::banner;

fn print_tree(node: &PlanNode, depth: usize) {
    let pad = "   ".repeat(depth);
    match node {
        PlanNode::Terminal(name) => println!("{pad}{name}"),
        PlanNode::Sequential(c) => {
            println!("{pad}Sequential");
            c.iter().for_each(|n| print_tree(n, depth + 1));
        }
        PlanNode::Concurrent(c) => {
            println!("{pad}Concurrent");
            c.iter().for_each(|n| print_tree(n, depth + 1));
        }
        PlanNode::Selective(c) => {
            println!("{pad}Selective");
            c.iter().for_each(|(_, n)| print_tree(n, depth + 1));
        }
        PlanNode::Iterative { cond, body } => {
            println!("{pad}Iterative   [continue while {cond}]");
            body.iter().for_each(|n| print_tree(n, depth + 1));
        }
    }
}

fn main() {
    banner("Figure 11: the plan tree of PD-3DSD");
    let graph = casestudy::process_description();
    let derived = graph_to_tree(&graph).expect("structure recovery");
    println!("derived mechanically from the Fig. 10 graph:\n");
    print_tree(&derived, 0);

    let reference = casestudy::plan_tree();
    println!(
        "\nmatches the hand-drawn Fig. 11 tree: {}",
        derived == reference
    );
    println!(
        "size: {} nodes ({} terminals + {} controllers), depth {}",
        derived.size(),
        derived.activities().len(),
        derived.size() - derived.activities().len(),
        derived.depth()
    );
    let (seq, con, sel, ite) = derived.controller_counts();
    println!("controllers: {seq} sequential, {con} concurrent, {sel} selective, {ite} iterative");
    assert_eq!(derived, reference);
}
