//! Supplementary figure: GP convergence on the case-study problem — best
//! and mean fitness per generation for the Table-1 configuration, as an
//! ASCII chart (the learning curve the paper describes but does not
//! plot).

use gridflow::casestudy;
use gridflow_bench::{banner, bar, render_table};
use gridflow_planner::prelude::*;

fn main() {
    banner("Supplementary: GP convergence (Table 1 configuration)");
    let config = GpConfig {
        seed: 1,
        ..GpConfig::default()
    };
    let result = GpPlanner::new(config, casestudy::planning_problem()).run();

    let rows: Vec<Vec<String>> = result
        .history
        .iter()
        .map(|g| {
            vec![
                format!("{}", g.generation),
                format!("{:.3}", g.best.overall),
                bar(g.best.overall, 1.0, 24),
                format!("{:.3}", g.mean_overall),
                format!("{:.1}", g.mean_size),
                format!("{:.2}", g.best.goal),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["gen", "best f", "", "mean f", "mean size", "best f_g"],
            &rows
        )
    );
    println!(
        "final best: fitness {:.3}, size {}, validity {:.2}, goal {:.2}",
        result.best_fitness.overall,
        result.best_fitness.size,
        result.best_fitness.validity,
        result.best_fitness.goal
    );
    println!("{} fitness evaluations total", result.evaluations);
    println!("\nexpected shape: goal fitness locks in within the first few");
    println!("generations; the remaining generations trade size for the f_r");
    println!("term (mean size falls as smaller perfect plans take over).");
}
