//! Supplementary study via the simulation service: "Simulation services
//! are necessary to study the scalability of the system" (§2).  Predict
//! the Fig. 10 enactment across grid sizes and workflow widths without
//! touching the live world.

use gridflow::casestudy;
use gridflow::prelude::*;
use gridflow_bench::{banner, render_table};
use gridflow_services::simulation::predict;

fn main() {
    banner("Supplementary: scalability study through the simulation service");
    let case = casestudy::case_description();
    let graph = casestudy::process_description();

    // --- Grid size: does a bigger grid speed the reference workflow? ---
    println!("Fig. 10 prediction vs. grid size:\n");
    let mut rows = Vec::new();
    for extra in [0usize, 4, 16, 64] {
        let world = casestudy::virtual_lab_world(extra, 33);
        let p = predict(&world, &graph, &case, 100_000).expect("predicts");
        rows.push(vec![
            format!("{}", 5 + extra),
            format!("{}", p.executions),
            format!("{:.1}s", p.makespan_s),
            format!("{:.2}", p.total_cost),
        ]);
    }
    println!(
        "{}",
        render_table(&["sites", "executions", "makespan", "cost"], &rows)
    );

    // --- Workflow width: reconstruction fan-out 2..32 streams ----------
    println!("prediction vs. reconstruction fan-out (P3DR streams per pass):\n");
    let world = casestudy::virtual_lab_world(8, 33);
    let mut rows = Vec::new();
    for width in [2usize, 4, 8, 16, 32] {
        let branches: Vec<String> = (0..width).map(|_| "{ P3DR; }".to_owned()).collect();
        let src = format!(
            "BEGIN POD; P3DR; FORK {{ {} }} JOIN; PSF; END",
            branches.join(", ")
        );
        let g = lower("wide", &parse_process(&src).unwrap()).unwrap();
        let p = predict(&world, &g, &case, 100_000).expect("predicts");
        rows.push(vec![
            format!("{width}"),
            format!("{}", p.executions),
            format!("{:.1}s", p.makespan_s),
            format!("{:.2}", p.total_cost),
        ]);
    }
    println!(
        "{}",
        render_table(&["streams", "executions", "makespan", "cost"], &rows)
    );
    println!("observed shape: extra sites barely move the Fig. 10 makespan —");
    println!("its critical path (POD → P3DR → 3 iterations of POR/P3DR/PSF)");
    println!("has little parallel slack, so grid growth mostly shops for");
    println!("cheaper/faster hosts (see the cost column).  The fan-out sweep");
    println!("shows the prediction model's contract plainly: it is fault-free");
    println!("AND contention-free, so widening the fork grows cost linearly");
    println!("while the makespan stays at the slowest single branch — the");
    println!("lower bound a real enactment approaches only with unbounded");
    println!("capacity (the serial Enactor gives the matching upper bound).");
}
