//! **Ablation A1 — S_max.**  §3.4.1: "The value of S_max should be
//! properly set to ensure the efficiency of the search without
//! compromising the quality of solutions."  Sweep S_max and report
//! solve rate, fitness, and solution size.

use gridflow::casestudy;
use gridflow::experiments::sweep;
use gridflow_bench::{banner, bar, render_table};
use gridflow_planner::prelude::GpConfig;

fn main() {
    banner("Ablation A1: the S_max size cap");
    let problem = casestudy::planning_problem();
    let base = GpConfig {
        seed: 7,
        ..GpConfig::default()
    };
    let runs = 10;
    let points = sweep(
        &problem,
        [6usize, 8, 10, 15, 20, 40, 80, 120]
            .into_iter()
            .map(|smax| {
                (
                    format!("{smax}"),
                    GpConfig {
                        smax,
                        init_max_size: smax.min(base.init_max_size),
                        ..base
                    },
                )
            }),
        runs,
    );

    // A perfect plan needs ≥ 5 nodes (POD, P3DR, P3DR, PSF + root), so
    // very small caps must fail; very large caps dilute the f_r pressure.
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let solved = p
                .result
                .runs
                .iter()
                .filter(|r| r.fitness.is_perfect())
                .count();
            vec![
                p.label.clone(),
                format!("{solved}/{runs}"),
                bar(solved as f64, runs as f64, 10),
                format!("{:.3}", p.result.avg_fitness),
                format!("{:.1}", p.result.avg_size),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["S_max", "solved", "", "avg fitness", "avg size"], &rows)
    );
    println!("expected shape: S_max < 5 cannot hold a valid plan; mid-range");
    println!("values solve consistently; very large caps still solve but");
    println!("relax the size pressure (avg size drifts up).");
}
