//! **Ablation A4 — fitness weights.**  Vary the (w_v, w_g, w_r) mix of
//! Eq. 4 and observe what the search optimizes for.

use gridflow::casestudy;
use gridflow::experiments::table2_on;
use gridflow_bench::{banner, render_table};
use gridflow_planner::prelude::GpConfig;
use gridflow_planner::FitnessWeights;

fn main() {
    banner("Ablation A4: fitness weights (w_v, w_g, w_r)");
    let problem = casestudy::planning_problem();
    let runs = 8;
    let base = GpConfig {
        seed: 17,
        ..GpConfig::default()
    };
    let mixes: [(f64, f64, f64, &str); 6] = [
        (0.2, 0.5, 0.3, "Table 1"),
        (1.0, 0.0, 0.0, "validity only"),
        (0.0, 1.0, 0.0, "goal only"),
        (0.0, 0.0, 1.0, "size only"),
        (0.45, 0.45, 0.1, "balanced v/g"),
        (0.1, 0.8, 0.1, "goal heavy"),
    ];
    let mut rows = Vec::new();
    for (wv, wg, wr, label) in mixes {
        let cfg = GpConfig {
            weights: FitnessWeights::new(wv, wg, wr).expect("weights sum to 1"),
            ..base
        };
        let result = table2_on(&problem, cfg, runs);
        let solved = result
            .runs
            .iter()
            .filter(|r| r.fitness.is_perfect())
            .count();
        rows.push(vec![
            format!("({wv}, {wg}, {wr})"),
            label.to_owned(),
            format!("{solved}/{runs}"),
            format!("{:.2}", result.avg_validity),
            format!("{:.2}", result.avg_goal),
            format!("{:.1}", result.avg_size),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "(w_v, w_g, w_r)",
                "mix",
                "solved",
                "avg f_v",
                "avg f_g",
                "avg size"
            ],
            &rows
        )
    );
    println!("expected shape: goal weight is what drives problem solving;");
    println!("size-only collapses to trivial one-node plans; validity-only");
    println!("rewards tiny always-valid plans that ignore the goal.");
}
