//! **Engine throughput — concurrent multi-case enactment.**
//!
//! Drive fleets of N ∈ {1, 8, 64, 512, 2048, 100000} dinner cases
//! through the `gridflow-engine` scheduler over one shared world, at
//! worker counts 1 and 8, and report cases/sec (wall clock) plus the
//! p50/p99 virtual-tick makespan per case and the fleet's total
//! blocked ticks.  The 100k tier runs with per-case checkpointing off
//! (its cost is pure scheduling, not snapshot serialization) and is
//! sized out of CI via `--max-cases 2048`.  Results land in
//! `BENCH_enactment.json` in the working directory.
//!
//! A **sharded scaling sweep** drives the N=2048 fleet over the
//! replicated dinner topology ([`dinner_workload_scaled`]) under
//! [`CoreSpec::Sharded`] at shards ∈ {1, 8, 32} × workers ∈ {1, 8},
//! with a wide admission window so the parallel prepare phase sees
//! hundreds of ready fibers per tick.  Cells land under `"sharded"`.
//!
//! A second sweep drives the **workload × policy matrix**: the dinner
//! fixture, two generated taxonomy shapes (wide fan-out, choice-dense),
//! and the paper's virus-reconstruction case study, each under every
//! admission policy (FIFO, priority, fair-share, EDF).  Matrix cells
//! land in the same report under `"matrix"`; the legacy `"results"`
//! array keeps its schema (and the N=512/FIFO guard cell) untouched.
//!
//! A third sweep quantifies **durable-store overhead**: the N=512 fleet
//! traced only, journalled into a `MemStore`, and journalled into a
//! `FileStore` (snapshot cadence 32), reported as cases/sec under
//! `"store"`.
//!
//! ```sh
//! cargo run --release --bin enactment_throughput
//! cargo run --release --bin enactment_throughput -- --max-cases 64   # CI smoke
//! cargo run --release --bin enactment_throughput -- --guard          # + regression gate
//! cargo run --release --bin enactment_throughput -- --matrix-cases 8 # shrink the matrix
//! ```
//!
//! `--guard` reads the committed `BENCH_enactment.json` *before*
//! overwriting it and exits non-zero if the headline point (N=512,
//! workers=1, best of three measurements) regressed more than 20% in
//! cases/sec against it — the CI
//! seam that keeps the event core's throughput claim honest.  When the
//! run is large enough to measure the full sharded sweep, `--guard`
//! additionally enforces the **scaling gate**: at N=2048 with
//! shards ≥ 8, the 8-worker cell must beat the 1-worker cell by ≥2.5×
//! in cases/sec.  The gate only fires on hardware that can express the
//! speedup — `std::thread::available_parallelism()` of at least 8 —
//! and reports itself as skipped (never passed) below that.

use gridflow_bench::{banner, render_table};
use gridflow_engine::{CaseHints, CaseScheduler, CaseSpec, CoreSpec, EngineConfig, PolicySpec};
use gridflow_harness::workload::{
    dinner_case_for_fleet, dinner_workload, dinner_workload_scaled, virus_reconstruction_workload,
    GraphShape, Workload, WorkloadGen,
};
use gridflow_harness::{FaultPlan, MultiCaseScenario};
use gridflow_store::{FileStore, MemStore, Store};
use serde_json::json;
use std::sync::{Arc, Mutex};
use std::time::Instant;

const FLEET_SIZES: [usize; 6] = [1, 8, 64, 512, 2048, 100_000];
const WORKER_COUNTS: [usize; 2] = [1, 8];
/// Above this fleet size the throughput sweep turns per-case
/// checkpointing off: the 100k tier measures pure scheduling, and at
/// one snapshot per productive step it would mostly measure
/// serialization.
const CHECKPOINT_OFF_ABOVE: usize = 2048;
/// The sharded scaling sweep's shape: N=2048 cases over the
/// 64-replica dinner topology (256 containers), shards × workers,
/// with a wide admission window so prepare sees a deep ready set.
const SHARD_FLEET: usize = 2048;
const SHARD_REPLICAS: usize = 64;
const SHARD_IN_FLIGHT: usize = 512;
const SHARD_COUNTS: [usize; 3] = [1, 8, 32];
/// The scaling gate: at N=2048 with this many shards, workers=8 must
/// beat workers=1 by at least this factor.
const SCALE_GATE_SHARDS: usize = 8;
const SCALE_GATE_MIN: f64 = 2.5;
/// The regression gate's reference point and tolerance.
const GUARD_CASES: u64 = 512;
const GUARD_WORKERS: u64 = 1;
const GUARD_FLOOR: f64 = 0.8;
/// Guard comparisons use the best of this many measurements of the
/// guard cell — shared CI runners jitter wall-clock throughput far
/// more than any real regression, and best-of-N strips the downward
/// noise without hiding a genuine slowdown.
const GUARD_MEASUREMENTS: usize = 3;
/// Default fleet size per workload × policy matrix cell.
const MATRIX_CASES: usize = 32;
/// Fleet size and snapshot cadence for the durable-store overhead sweep.
const STORE_CASES: usize = 512;
const STORE_SNAPSHOT_EVERY: u64 = 32;

/// Staggered hints so every non-FIFO policy visibly reorders the
/// fleet: alternating tenants, three priority classes, deadlines
/// running against submission order.
fn matrix_hints(i: usize) -> CaseHints {
    CaseHints {
        priority: (i % 3) as i64,
        tenant: Some(if i.is_multiple_of(2) {
            "a".into()
        } else {
            "b".into()
        }),
        deadline_tick: Some(1_000 - (i as u64 % 100) * 10),
    }
}

/// The matrix's workload axis, each sized for a fleet of `fleet`
/// concurrent cases over one shared world.
fn matrix_workloads(fleet: usize) -> Vec<(&'static str, Workload)> {
    let mut dinner = dinner_workload();
    dinner.case = dinner_case_for_fleet(fleet);
    vec![
        ("dinner", dinner),
        (
            "generated-wide",
            WorkloadGen::new(7)
                .shape(GraphShape::FanOutJoin)
                .width(3)
                .depth(2)
                .fleet(fleet)
                .build(),
        ),
        (
            "generated-choice",
            WorkloadGen::new(7)
                .shape(GraphShape::ChoiceDense)
                .width(3)
                .depth(2)
                .fleet(fleet)
                .build(),
        ),
        ("virus", virus_reconstruction_workload()),
    ]
}

/// One throughput measurement of a headline-sweep cell: `fleet` dinner
/// cases through a raw `CaseScheduler` at `workers` workers.
fn measure_cell(wl: &Workload, plan: &FaultPlan, fleet: usize, workers: usize) -> f64 {
    let mut scheduler = CaseScheduler::new(EngineConfig {
        workers,
        max_in_flight: 64,
        ..EngineConfig::default()
    });
    let case = std::sync::Arc::new(dinner_case_for_fleet(fleet));
    for i in 0..fleet {
        scheduler.submit(CaseSpec {
            label: format!("dinner-{i}"),
            graph: wl.graph.clone(),
            case: case.clone(),
            config: wl.config.clone(),
            hints: Default::default(),
        });
    }
    let mut world = wl.fresh_world(plan, 0);
    let start = Instant::now();
    let outcome = scheduler.run(&mut world);
    let wall = start.elapsed();
    assert!(outcome.all_succeeded(), "guard re-measurement cell failed");
    fleet as f64 / wall.as_secs_f64().max(1e-9)
}

fn percentile_ticks(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// The committed baseline cases/sec for the guard point, if the report
/// on disk has one.  Legacy reports carried no per-result worker count;
/// they were all measured at workers=1.
fn baseline_cases_per_sec(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let report: serde_json::Value = serde_json::from_str(&text).ok()?;
    report.get("results")?.as_array()?.iter().find_map(|r| {
        let cases = r.get("cases")?.as_u64()?;
        let workers = r.get("workers").and_then(|w| w.as_u64()).unwrap_or(1);
        (cases == GUARD_CASES && workers == GUARD_WORKERS)
            .then(|| r.get("cases_per_sec")?.as_f64())
            .flatten()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_cases = args
        .iter()
        .position(|a| a == "--max-cases")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(usize::MAX);
    let guard = args.iter().any(|a| a == "--guard");
    let matrix_cases = args
        .iter()
        .position(|a| a == "--matrix-cases")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(MATRIX_CASES);

    let path = "BENCH_enactment.json";
    let baseline = guard.then(|| baseline_cases_per_sec(path)).flatten();

    banner("engine throughput: concurrent multi-case enactment");
    let wl = dinner_workload();
    let plan = FaultPlan::default();

    let mut rows = Vec::new();
    let mut results = Vec::new();
    let mut guard_measured: Option<f64> = None;
    for &fleet in FLEET_SIZES.iter().filter(|&&n| n <= max_cases) {
        for &workers in &WORKER_COUNTS {
            let mut scheduler = CaseScheduler::new(EngineConfig {
                workers,
                max_in_flight: 64,
                ..EngineConfig::default()
            });
            // The shared world's fresh-id counter is fleet-global, so
            // the goal range must be sized to the fleet.
            let case = std::sync::Arc::new(dinner_case_for_fleet(fleet));
            let mut config = wl.config.clone();
            if fleet > CHECKPOINT_OFF_ABOVE {
                config.checkpoint_every = None;
            }
            for i in 0..fleet {
                scheduler.submit(CaseSpec {
                    label: format!("dinner-{i}"),
                    graph: wl.graph.clone(),
                    case: case.clone(),
                    config: config.clone(),
                    hints: Default::default(),
                });
            }
            let mut world = wl.fresh_world(&plan, 0);
            let start = Instant::now();
            let outcome = scheduler.run(&mut world);
            let wall = start.elapsed();

            // Percentiles over cases that actually ran; a refusal has
            // no makespan and must not be counted as an instant one.
            let mut makespans: Vec<u64> = outcome
                .cases
                .iter()
                .filter_map(|c| c.admitted_makespan_ticks())
                .collect();
            makespans.sort_unstable();
            let p50 = percentile_ticks(&makespans, 50.0);
            let p99 = percentile_ticks(&makespans, 99.0);
            let blocked: u64 = outcome.cases.iter().map(|c| c.blocked_ticks).sum();
            let secs = wall.as_secs_f64().max(1e-9);
            let cases_per_sec = fleet as f64 / secs;
            assert!(
                outcome.all_succeeded(),
                "fleet of {fleet} (workers={workers}) did not fully succeed"
            );
            if fleet as u64 == GUARD_CASES && workers as u64 == GUARD_WORKERS {
                guard_measured = Some(cases_per_sec);
            }

            rows.push(vec![
                fleet.to_string(),
                workers.to_string(),
                outcome.ticks.to_string(),
                format!("{:.1}", wall.as_secs_f64() * 1e3),
                format!("{cases_per_sec:.0}"),
                p50.to_string(),
                p99.to_string(),
                blocked.to_string(),
            ]);
            results.push(json!({
                "cases": fleet,
                "workers": workers,
                "ticks": outcome.ticks,
                "wall_ms": wall.as_secs_f64() * 1e3,
                "cases_per_sec": cases_per_sec,
                "p50_makespan_ticks": p50,
                "p99_makespan_ticks": p99,
                "blocked_ticks_total": blocked,
                "all_succeeded": true,
            }));
        }
    }

    println!(
        "{}",
        render_table(
            &[
                "cases",
                "workers",
                "ticks",
                "wall ms",
                "cases/s",
                "p50 makespan",
                "p99 makespan",
                "blocked ticks",
            ],
            &rows,
        )
    );

    banner("sharded scaling: shards x workers over the replicated topology");
    let shard_fleet = SHARD_FLEET.min(max_cases.max(1));
    let mut shard_wl = dinner_workload_scaled(SHARD_REPLICAS, shard_fleet);
    // The sharded cells measure scheduling throughput, not snapshot
    // serialization: checkpointing off, like the 100k tier.
    shard_wl.config.checkpoint_every = None;
    let mut sharded_rows = Vec::new();
    let mut sharded = Vec::new();
    let mut scale_gate: [Option<f64>; 2] = [None, None];
    for &shards in &SHARD_COUNTS {
        for &workers in &WORKER_COUNTS {
            let start = Instant::now();
            let outcome = MultiCaseScenario::new(&plan, &shard_wl, shard_fleet)
                .max_in_flight(SHARD_IN_FLIGHT)
                .core(CoreSpec::Sharded { shards })
                .workers(workers)
                .run()
                .engine;
            let wall = start.elapsed();
            assert!(
                outcome.all_succeeded(),
                "sharded cell (shards={shards}, workers={workers}) did not fully succeed"
            );
            let cases_per_sec = shard_fleet as f64 / wall.as_secs_f64().max(1e-9);
            if shards == SCALE_GATE_SHARDS && shard_fleet == SHARD_FLEET {
                match workers {
                    1 => scale_gate[0] = Some(cases_per_sec),
                    8 => scale_gate[1] = Some(cases_per_sec),
                    _ => {}
                }
            }
            sharded_rows.push(vec![
                shards.to_string(),
                workers.to_string(),
                shard_fleet.to_string(),
                outcome.ticks.to_string(),
                format!("{:.1}", wall.as_secs_f64() * 1e3),
                format!("{cases_per_sec:.0}"),
            ]);
            sharded.push(json!({
                "shards": shards,
                "workers": workers,
                "cases": shard_fleet,
                "replicas": SHARD_REPLICAS,
                "max_in_flight": SHARD_IN_FLIGHT,
                "ticks": outcome.ticks,
                "wall_ms": wall.as_secs_f64() * 1e3,
                "cases_per_sec": cases_per_sec,
                "all_succeeded": true,
            }));
        }
    }
    println!(
        "{}",
        render_table(
            &["shards", "workers", "cases", "ticks", "wall ms", "cases/s"],
            &sharded_rows,
        )
    );

    banner("workload x policy admission matrix");
    let mut matrix_rows = Vec::new();
    let mut matrix = Vec::new();
    for (name, wl) in matrix_workloads(matrix_cases) {
        for policy in PolicySpec::ALL {
            let start = Instant::now();
            let outcome = MultiCaseScenario::new(&plan, &wl, matrix_cases)
                .max_in_flight(64)
                .policy(policy)
                .case_hints(matrix_hints)
                .run()
                .engine;
            let wall = start.elapsed();
            assert!(
                outcome.all_succeeded(),
                "matrix cell {name}/{} did not fully succeed",
                policy.name()
            );
            let mut makespans: Vec<u64> = outcome
                .cases
                .iter()
                .filter_map(|c| c.admitted_makespan_ticks())
                .collect();
            makespans.sort_unstable();
            let p50 = percentile_ticks(&makespans, 50.0);
            let p99 = percentile_ticks(&makespans, 99.0);
            let cases_per_sec = matrix_cases as f64 / wall.as_secs_f64().max(1e-9);
            matrix_rows.push(vec![
                name.to_string(),
                policy.name().to_string(),
                matrix_cases.to_string(),
                outcome.ticks.to_string(),
                format!("{:.1}", wall.as_secs_f64() * 1e3),
                format!("{cases_per_sec:.0}"),
                p50.to_string(),
                p99.to_string(),
            ]);
            matrix.push(json!({
                "workload": name,
                "policy": policy.name(),
                "cases": matrix_cases,
                "workers": 1,
                "ticks": outcome.ticks,
                "wall_ms": wall.as_secs_f64() * 1e3,
                "cases_per_sec": cases_per_sec,
                "p50_makespan_ticks": p50,
                "p99_makespan_ticks": p99,
                "all_succeeded": true,
            }));
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "policy",
                "cases",
                "ticks",
                "wall ms",
                "cases/s",
                "p50 makespan",
                "p99 makespan",
            ],
            &matrix_rows,
        )
    );

    banner("durable store overhead");
    let store_cases = STORE_CASES.min(max_cases.max(1));
    let mut store_wl = dinner_workload();
    store_wl.case = dinner_case_for_fleet(store_cases);
    let mut store_rows = Vec::new();
    let mut store_cells = Vec::new();
    for backend in ["trace-only", "memory", "file"] {
        let scenario = MultiCaseScenario::new(&plan, &store_wl, store_cases).max_in_flight(64);
        // The file cell journals into a throwaway directory, removed
        // after the measurement.
        let file_dir = (backend == "file").then(|| {
            std::env::temp_dir().join(format!("gridflow-bench-store-{}", std::process::id()))
        });
        let scenario = match backend {
            "trace-only" => scenario.traced(),
            "memory" => scenario.store(
                Arc::new(Mutex::new(MemStore::new())) as Arc<Mutex<dyn Store>>,
                STORE_SNAPSHOT_EVERY,
            ),
            _ => {
                let dir = file_dir.as_ref().expect("file cell has a dir");
                let _ = std::fs::remove_dir_all(dir);
                std::fs::create_dir_all(dir).expect("create bench store dir");
                let (fs, _) = FileStore::open(dir, 4096).expect("open bench store");
                scenario.store(
                    Arc::new(Mutex::new(fs)) as Arc<Mutex<dyn Store>>,
                    STORE_SNAPSHOT_EVERY,
                )
            }
        };
        let start = Instant::now();
        let outcome = scenario.run().engine;
        let wall = start.elapsed();
        if let Some(dir) = file_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
        assert!(
            outcome.all_succeeded(),
            "store cell {backend} did not fully succeed"
        );
        let cases_per_sec = store_cases as f64 / wall.as_secs_f64().max(1e-9);
        store_rows.push(vec![
            backend.to_string(),
            store_cases.to_string(),
            outcome.ticks.to_string(),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            format!("{cases_per_sec:.0}"),
        ]);
        store_cells.push(json!({
            "backend": backend,
            "cases": store_cases,
            "snapshot_every": STORE_SNAPSHOT_EVERY,
            "ticks": outcome.ticks,
            "wall_ms": wall.as_secs_f64() * 1e3,
            "cases_per_sec": cases_per_sec,
            "all_succeeded": true,
        }));
    }
    println!(
        "{}",
        render_table(
            &["backend", "cases", "ticks", "wall ms", "cases/s"],
            &store_rows,
        )
    );

    let report = json!({
        "bench": "enactment_throughput",
        "workload": wl.name,
        "engine": {"max_in_flight": 64, "enforce_reservations": true},
        "results": results,
        "sharded": sharded,
        "matrix": matrix,
        "store": store_cells,
    });
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serializes"),
    )
    .expect("write BENCH_enactment.json");
    println!("wrote {path}");

    if guard {
        let Some(mut measured) = guard_measured else {
            eprintln!("guard: no N={GUARD_CASES} workers={GUARD_WORKERS} point was measured (--max-cases too low?)");
            std::process::exit(1);
        };
        // Best-of-N: re-measure the guard cell and keep the fastest
        // observation (see GUARD_MEASUREMENTS).
        for _ in 1..GUARD_MEASUREMENTS {
            measured = measured.max(measure_cell(
                &wl,
                &plan,
                GUARD_CASES as usize,
                GUARD_WORKERS as usize,
            ));
        }
        match baseline {
            Some(base) => {
                let floor = base * GUARD_FLOOR;
                println!(
                    "guard: N={GUARD_CASES} workers={GUARD_WORKERS}: {measured:.0} cases/s \
                     vs committed baseline {base:.0} (floor {floor:.0})"
                );
                if measured < floor {
                    eprintln!("guard: throughput regressed more than 20% — failing");
                    std::process::exit(1);
                }
            }
            None => println!("guard: no committed baseline for the guard point; recording only"),
        }

        // The scaling gate only fires when the sharded sweep ran at
        // its full fleet size (a `--max-cases` below N=2048 shrinks
        // the cells and the parallel speedup with them) *and* the
        // hardware can physically express an 8-worker speedup.
        let cpus = std::thread::available_parallelism().map_or(1, usize::from);
        if cpus < 8 {
            println!(
                "guard: sharded scaling gate skipped ({cpus} CPU(s) available; \
                 an 8-worker speedup needs at least 8)"
            );
        } else if let [Some(w1), Some(w8)] = scale_gate {
            let ratio = w8 / w1.max(1e-9);
            println!(
                "guard: sharded N={SHARD_FLEET} shards={SCALE_GATE_SHARDS}: \
                 workers=8 at {w8:.0} cases/s vs workers=1 at {w1:.0} \
                 ({ratio:.2}x, gate {SCALE_GATE_MIN}x)"
            );
            if ratio < SCALE_GATE_MIN {
                eprintln!("guard: sharded 8-worker scaling fell below {SCALE_GATE_MIN}x — failing");
                std::process::exit(1);
            }
        } else {
            println!(
                "guard: sharded scaling gate skipped (needs the full N={SHARD_FLEET} sweep; \
                 raise --max-cases)"
            );
        }
    }
}
