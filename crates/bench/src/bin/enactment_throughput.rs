//! **Engine throughput — concurrent multi-case enactment.**
//!
//! Drive fleets of N ∈ {1, 8, 64, 512} dinner cases through the
//! `gridflow-engine` scheduler over one shared world and report
//! cases/sec (wall clock) plus the p50/p99 virtual-tick makespan per
//! case.  Results land in `BENCH_enactment.json` in the working
//! directory.
//!
//! ```sh
//! cargo run --release --bin enactment_throughput
//! cargo run --release --bin enactment_throughput -- --max-cases 64   # CI smoke
//! ```

use gridflow_bench::{banner, render_table};
use gridflow_engine::{CaseScheduler, CaseSpec, EngineConfig};
use gridflow_harness::workload::{dinner_case_for_fleet, dinner_workload};
use gridflow_harness::FaultPlan;
use serde_json::json;
use std::time::Instant;

const FLEET_SIZES: [usize; 4] = [1, 8, 64, 512];

fn percentile_ticks(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_cases = args
        .iter()
        .position(|a| a == "--max-cases")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(usize::MAX);

    banner("engine throughput: concurrent multi-case enactment");
    let wl = dinner_workload();
    let plan = FaultPlan::default();

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for &fleet in FLEET_SIZES.iter().filter(|&&n| n <= max_cases) {
        let mut scheduler = CaseScheduler::new(EngineConfig {
            max_in_flight: 64,
            ..EngineConfig::default()
        });
        // The shared world's fresh-id counter is fleet-global, so the
        // goal range must be sized to the fleet.
        let case = dinner_case_for_fleet(fleet);
        for i in 0..fleet {
            scheduler.submit(CaseSpec {
                label: format!("dinner-{i}"),
                graph: wl.graph.clone(),
                case: case.clone(),
                config: wl.config.clone(),
            });
        }
        let mut world = wl.fresh_world(&plan, 0);
        let start = Instant::now();
        let outcome = scheduler.run(&mut world);
        let wall = start.elapsed();

        let mut makespans: Vec<u64> = outcome.cases.iter().map(|c| c.makespan_ticks()).collect();
        makespans.sort_unstable();
        let p50 = percentile_ticks(&makespans, 50.0);
        let p99 = percentile_ticks(&makespans, 99.0);
        let blocked: u64 = outcome.cases.iter().map(|c| c.blocked_ticks).sum();
        let secs = wall.as_secs_f64().max(1e-9);
        let cases_per_sec = fleet as f64 / secs;
        assert!(
            outcome.all_succeeded(),
            "fleet of {fleet} did not fully succeed"
        );

        rows.push(vec![
            fleet.to_string(),
            outcome.ticks.to_string(),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            format!("{cases_per_sec:.0}"),
            p50.to_string(),
            p99.to_string(),
            blocked.to_string(),
        ]);
        results.push(json!({
            "cases": fleet,
            "ticks": outcome.ticks,
            "wall_ms": wall.as_secs_f64() * 1e3,
            "cases_per_sec": cases_per_sec,
            "p50_makespan_ticks": p50,
            "p99_makespan_ticks": p99,
            "blocked_ticks_total": blocked,
            "all_succeeded": true,
        }));
    }

    println!(
        "{}",
        render_table(
            &[
                "cases",
                "ticks",
                "wall ms",
                "cases/s",
                "p50 makespan",
                "p99 makespan",
                "blocked ticks",
            ],
            &rows,
        )
    );

    let report = json!({
        "bench": "enactment_throughput",
        "workload": wl.name,
        "engine": {"workers": 1, "max_in_flight": 64, "enforce_reservations": true},
        "results": results,
    });
    let path = "BENCH_enactment.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serializes"),
    )
    .expect("write BENCH_enactment.json");
    println!("wrote {path}");
}
