//! Regenerate **Figure 10**: the process description for the 3D
//! reconstruction of virus structures — printed as the activity/
//! transition listing, the structured text, and Graphviz DOT.

use gridflow::casestudy;
use gridflow::prelude::*;
use gridflow_bench::{banner, render_table};
use gridflow_process::dot;

fn main() {
    banner("Figure 10: process description PD-3DSD");
    let graph = casestudy::process_description();

    println!("activities:");
    let rows: Vec<Vec<String>> = graph
        .activities()
        .iter()
        .map(|a| {
            vec![
                a.id.clone(),
                a.kind.ontology_type().to_owned(),
                a.service.clone().unwrap_or_else(|| "—".into()),
            ]
        })
        .collect();
    println!("{}", render_table(&["id", "type", "service"], &rows));

    println!("transitions:");
    let rows: Vec<Vec<String>> = graph
        .transitions()
        .iter()
        .map(|t| {
            vec![
                t.id.clone(),
                t.source.clone(),
                t.dest.clone(),
                t.condition
                    .as_ref()
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "—".into()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["id", "source", "destination", "condition"], &rows)
    );

    let ast = recover(&graph).expect("Fig. 10 is structured");
    println!("structured (PDL) form:\n\n{}", printer::print(&ast));

    println!("Graphviz DOT (pipe into `dot -Tpng`):\n");
    println!("{}", dot::to_dot(&graph));
}
