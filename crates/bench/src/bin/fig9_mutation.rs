//! Regenerate **Figure 9**: "An example of mutation performed on a plan
//! tree" — a node is selected and its subtree is replaced by a randomly
//! generated tree.

use gridflow::prelude::*;
use gridflow_bench::banner;
use gridflow_planner::genetic::mutate;
use rand::SeedableRng;

fn t(name: &str) -> PlanNode {
    PlanNode::terminal(name)
}

fn print_tree(node: &PlanNode, depth: usize) {
    let pad = "  ".repeat(depth);
    match node {
        PlanNode::Terminal(name) => println!("{pad}{name}"),
        PlanNode::Sequential(c) => {
            println!("{pad}Sequential");
            c.iter().for_each(|n| print_tree(n, depth + 1));
        }
        PlanNode::Concurrent(c) => {
            println!("{pad}Concurrent");
            c.iter().for_each(|n| print_tree(n, depth + 1));
        }
        PlanNode::Selective(c) => {
            println!("{pad}Selective");
            c.iter().for_each(|(_, n)| print_tree(n, depth + 1));
        }
        PlanNode::Iterative { body, .. } => {
            println!("{pad}Iterative");
            body.iter().for_each(|n| print_tree(n, depth + 1));
        }
    }
}

fn main() {
    banner("Figure 9: mutation on a plan tree");
    // Fig. 9(a): Sequential(A, Selective(B, C), D).
    let original = PlanNode::Sequential(vec![
        t("A"),
        PlanNode::selective_unguarded([t("B"), t("C")]),
        t("D"),
    ]);
    println!("(a) original tree (size {}):", original.size());
    print_tree(&original, 1);

    let activities: Vec<String> = ["E", "F", "G"].iter().map(|s| s.to_string()).collect();
    // Find a seed where mutation replaces an interior subtree (as the
    // figure shows the Selective being replaced).
    let mut chosen = None;
    for seed in 0..500u64 {
        let mut tree = original.clone();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let applied = mutate(&mut tree, &mut rng, 0.25, 40, 8, &activities);
        if applied >= 1 && tree.controller_counts().2 == 0 && tree != original {
            chosen = Some((seed, applied, tree));
            break;
        }
    }
    let (seed, applied, mutated) = chosen.expect("a selective-replacing mutation exists");
    println!(
        "\n(b) after mutation (seed {seed}, {applied} node(s) mutated, size {}):",
        mutated.size()
    );
    print_tree(&mutated, 1);
    println!("\nthe Selective subtree was replaced by a randomly generated tree,");
    println!(
        "mirroring the figure; the size cap S_max = 40 was respected: {}",
        mutated.size() <= 40
    );
    assert!(mutated.is_gp_valid());
}
