//! Supplementary table: task-migration costs between the virtual
//! laboratory's sites (§1: migration "is likely to be more difficult in
//! this environment" — compression, encryption, and byte swapping pay
//! real time).

use gridflow::casestudy;
use gridflow_bench::{banner, render_table};
use gridflow_grid::transform::estimate_migration;

fn main() {
    banner("Supplementary: task-migration transformation costs");
    let world = casestudy::virtual_lab_world(0, 1);
    let data_mb = 1_500.0; // a 1.5 GB micrograph checkpoint (D7 scale)
    println!("migrating a {data_mb} MB checkpoint between sites:\n");
    let mut rows = Vec::new();
    for source in &world.topology.resources {
        for dest in &world.topology.resources {
            if source.id == dest.id {
                continue;
            }
            let (plan, time) = estimate_migration(source, dest, data_mb);
            let steps = if plan.is_empty() {
                "—".to_owned()
            } else {
                plan.steps
                    .iter()
                    .map(|s| format!("{s:?}"))
                    .collect::<Vec<_>>()
                    .join("+")
            };
            rows.push(vec![
                source.id.clone(),
                dest.id.clone(),
                steps,
                format!("{:.1}s", time),
            ]);
        }
    }
    println!(
        "{}",
        render_table(&["from", "to", "transformations", "total time"], &rows)
    );
    println!("expected shape: same-domain, same-endianness moves need no");
    println!("transformation; crossing administrative domains adds encryption;");
    println!("x86 ↔ POWER adds byte swapping; the slow commodity links dominate");
    println!("total time either way.");
}
