//! **Ablation A5 — planner scalability vs. |T|.**  Grow the activity
//! catalog with distractor services and measure solve rate and wall
//! time — the search-space growth the paper's heterogeneous grid
//! implies.

use gridflow::casestudy;
use gridflow::experiments::table2_on;
use gridflow_bench::{banner, bar, render_table};
use gridflow_planner::prelude::*;
use std::time::Instant;

fn problem_with_distractors(extra: usize) -> PlanningProblem {
    let mut problem = casestudy::planning_problem();
    for i in 0..extra {
        // Chained distractors: plausible but goal-irrelevant.
        let input = if i == 0 {
            "2D Image".to_owned()
        } else {
            format!("Noise-{}", i - 1)
        };
        problem.activities.push(ActivitySpec::new(
            format!("distractor-{i}"),
            [input],
            [format!("Noise-{i}")],
        ));
    }
    problem
}

fn main() {
    banner("Ablation A5: planner scalability vs. catalog size |T|");
    let runs = 8;
    let base = GpConfig {
        seed: 23,
        ..GpConfig::default()
    };
    let mut rows = Vec::new();
    for extra in [0usize, 2, 4, 8, 16, 32] {
        let problem = problem_with_distractors(extra);
        let start = Instant::now();
        let result = table2_on(&problem, base, runs);
        let elapsed = start.elapsed().as_secs_f64();
        let solved = result
            .runs
            .iter()
            .filter(|r| r.fitness.is_perfect())
            .count();
        rows.push(vec![
            format!("{}", 4 + extra),
            format!("{solved}/{runs}"),
            bar(solved as f64, runs as f64, 10),
            format!("{:.3}", result.avg_fitness),
            format!("{:.1}", result.avg_size),
            format!("{:.2}s", elapsed),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "|T|",
                "solved",
                "",
                "avg fitness",
                "avg size",
                "time (8 runs)"
            ],
            &rows
        )
    );
    println!("observed shape: the Table-1 budget (pop 200 / 20 generations) is");
    println!("tuned to the paper's |T| = 4; distractors dilute the goal-reaching");
    println!("genetic material quickly, and past |T| ≈ 12 the search collapses");
    println!("into the small-valid-plan local optimum (w_v + w_r reward tiny");
    println!("always-valid plans).  Larger budgets or restarts recover — see");
    println!("ablation_population and the best-of-3 pattern in the tests.");
}
