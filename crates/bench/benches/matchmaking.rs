//! Criterion bench **A9**: matchmaking latency vs. grid size, with and
//! without conditions, plus brokerage refresh cost — the "equivalence
//! classes" bookkeeping of §1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridflow::casestudy;
use gridflow::prelude::*;
use gridflow_services::brokerage::BrokerageService;

fn world_of(sites: usize) -> GridWorld {
    casestudy::virtual_lab_world(sites, 42)
}

fn bench_matchmaking(c: &mut Criterion) {
    let mut group = c.benchmark_group("matchmaking");
    for sites in [10usize, 100, 1000] {
        let world = world_of(sites);
        group.bench_with_input(
            BenchmarkId::new("unconstrained", sites),
            &world,
            |b, world| {
                b.iter(|| {
                    std::hint::black_box(
                        matchmake(world, &MatchRequest::for_service("P3DR"))
                            .unwrap()
                            .len(),
                    )
                })
            },
        );
        let strict = MatchRequest {
            require_fine_grain: true,
            min_reliability: 0.9,
            deadline_s: Some(1e6),
            budget: Some(1e9),
            ..MatchRequest::for_service("P3DR")
        };
        group.bench_with_input(
            BenchmarkId::new("all_conditions", sites),
            &world,
            |b, world| b.iter(|| std::hint::black_box(matchmake(world, &strict).map(|m| m.len()))),
        );
    }
    group.finish();
}

fn bench_brokerage(c: &mut Criterion) {
    let mut group = c.benchmark_group("brokerage");
    for sites in [10usize, 100, 1000] {
        let world = world_of(sites);
        group.bench_with_input(BenchmarkId::new("refresh", sites), &world, |b, world| {
            b.iter(|| {
                let mut broker = BrokerageService::new();
                broker.refresh(world);
                std::hint::black_box(broker.equivalence_classes().len())
            })
        });
    }
    group.finish();
}

fn bench_market(c: &mut Criterion) {
    let world = world_of(100);
    c.bench_function("market/acquire_release", |b| {
        b.iter(|| {
            let mut market =
                gridflow_grid::SpotMarket::new(world.topology.resources.iter().cloned());
            let (id, price) = market.acquire(4, f64::INFINITY, |_| true).unwrap();
            market.release(&id, 4).unwrap();
            std::hint::black_box(price)
        })
    });
}

criterion_group!(benches, bench_matchmaking, bench_brokerage, bench_market);
criterion_main!(benches);
