//! Criterion micro-benches for the representation pipeline: parsing,
//! printing, lowering (AST→graph), structure recovery (graph→AST), and
//! ATN stepping on the Fig. 10 workflow.

use criterion::{criterion_group, criterion_main, Criterion};
use gridflow::casestudy;
use gridflow::prelude::*;

fn figure_10_text() -> String {
    printer::print(&recover(&casestudy::process_description()).unwrap())
}

fn bench_pipeline(c: &mut Criterion) {
    let text = figure_10_text();
    let ast = parse_process(&text).unwrap();
    let graph = casestudy::process_description();

    c.bench_function("representations/parse_fig10", |b| {
        b.iter(|| std::hint::black_box(parse_process(&text).unwrap().node_count()))
    });
    c.bench_function("representations/print_fig10", |b| {
        b.iter(|| std::hint::black_box(printer::print(&ast).len()))
    });
    c.bench_function("representations/lower_fig10", |b| {
        b.iter(|| std::hint::black_box(lower("bench", &ast).unwrap().transitions().len()))
    });
    c.bench_function("representations/recover_fig10", |b| {
        b.iter(|| std::hint::black_box(recover(&graph).unwrap().node_count()))
    });
    c.bench_function("representations/tree_conversions_fig11", |b| {
        b.iter(|| {
            let tree = ast_to_tree(&ast);
            std::hint::black_box(tree_to_ast(&tree).node_count())
        })
    });
}

fn bench_atn(c: &mut Criterion) {
    // Drive the Fig. 10 token game to completion (flow-control only cost;
    // activity "execution" is a no-op data update here).
    let graph = casestudy::process_description();
    let case = casestudy::case_description();
    c.bench_function("atn/fig10_token_game", |b| {
        b.iter(|| {
            let mut machine = AtnMachine::new(&graph).unwrap();
            let mut state = case.initial_data.clone();
            let mut psf_runs = 0u32;
            machine.start(&state).unwrap();
            while let Some(id) = machine.ready().first().cloned() {
                machine.begin_activity(&id).unwrap();
                if id == "PSF" {
                    state.insert(
                        "D12",
                        DataItem::classified("Resolution File").with(
                            "Value",
                            Value::Float(
                                casestudy::INITIAL_RESOLUTION
                                    - casestudy::RESOLUTION_STEP * psf_runs as f64,
                            ),
                        ),
                    );
                    psf_runs += 1;
                }
                machine.complete_activity(&id, &state).unwrap();
            }
            assert!(machine.is_finished());
            std::hint::black_box(machine.total_executions())
        })
    });
}

fn bench_simulation_engine(c: &mut Criterion) {
    c.bench_function("sim_engine/10k_events", |b| {
        b.iter(|| {
            let mut sim = gridflow_grid::SimEngine::new();
            sim.schedule_at(0, 0u32);
            let n = sim.run(10_000, |_, gen, engine| {
                engine.schedule_in(1 + (gen as u64 % 7), gen + 1);
            });
            std::hint::black_box(n)
        })
    });
}

criterion_group!(benches, bench_pipeline, bench_atn, bench_simulation_engine);
criterion_main!(benches);
