//! Criterion bench **A7**: coordination-service enactment throughput as
//! the workflow grows in width (Fork fan-out) and depth (sequential
//! chain length), plus the Fig. 10 reference workflow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridflow::casestudy;
use gridflow::prelude::*;
use gridflow_grid::container::ApplicationContainer;
use gridflow_grid::resource::{Resource, ResourceKind};
use gridflow_grid::GridTopology;

/// A permissive world hosting services s0..s15 with no preconditions.
fn wide_world() -> GridWorld {
    let names: Vec<String> = (0..16).map(|i| format!("s{i}")).collect();
    let resources: Vec<Resource> = (0..4)
        .map(|i| {
            Resource::new(format!("r{i}"), ResourceKind::PcCluster)
                .with_nodes(32)
                .with_software(names.clone())
        })
        .collect();
    let containers: Vec<ApplicationContainer> = (0..4)
        .map(|i| {
            ApplicationContainer::new(format!("ac{i}"), format!("r{i}")).hosting(names.clone())
        })
        .collect();
    let mut world = GridWorld::new(GridTopology {
        resources,
        containers,
    });
    for n in &names {
        world.offer(ServiceOffering::new(
            n.clone(),
            Vec::<String>::new(),
            vec![OutputSpec::plain(format!("{n}-out"))],
        ));
    }
    world
}

fn chain_graph(depth: usize) -> ProcessGraph {
    let body: String = (0..depth).map(|i| format!("s{}; ", i % 16)).collect();
    lower(
        "chain",
        &parse_process(&format!("BEGIN {body} END")).unwrap(),
    )
    .unwrap()
}

fn fork_graph(width: usize) -> ProcessGraph {
    let branches: Vec<String> = (0..width).map(|i| format!("{{ s{}; }}", i % 16)).collect();
    let src = format!("BEGIN FORK {{ {} }} JOIN; END", branches.join(", "));
    lower("fork", &parse_process(&src).unwrap()).unwrap()
}

fn bench_enactment(c: &mut Criterion) {
    let case = CaseDescription::new("bench").with_data("D1", DataItem::classified("seed"));
    let mut group = c.benchmark_group("enactment");
    group.sample_size(20);

    for depth in [4usize, 16, 64] {
        let graph = chain_graph(depth);
        group.bench_with_input(
            BenchmarkId::new("chain_depth", depth),
            &graph,
            |b, graph| {
                b.iter(|| {
                    let mut world = wide_world();
                    let report = Enactor::default().enact(&mut world, graph, &case);
                    assert!(report.success);
                    std::hint::black_box(report.executions.len())
                });
            },
        );
    }
    for width in [2usize, 8, 16] {
        let graph = fork_graph(width);
        group.bench_with_input(BenchmarkId::new("fork_width", width), &graph, |b, graph| {
            b.iter(|| {
                let mut world = wide_world();
                let report = Enactor::default().enact(&mut world, graph, &case);
                assert!(report.success);
                std::hint::black_box(report.executions.len())
            });
        });
    }
    // The reference workflow (3 refinement iterations).
    let graph = casestudy::process_description();
    let case10 = casestudy::case_description();
    group.bench_function("figure10_full", |b| {
        b.iter(|| {
            let mut world = casestudy::virtual_lab_world(0, 1);
            let report = Enactor::default().enact(&mut world, &graph, &case10);
            assert!(report.success);
            std::hint::black_box(report.executions.len())
        });
    });
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    // A7 companion: the simulation service's fault-free prediction.
    let graph = casestudy::process_description();
    let case = casestudy::case_description();
    let world = casestudy::virtual_lab_world(0, 1);
    c.bench_function("prediction/figure10", |b| {
        b.iter(|| {
            std::hint::black_box(
                gridflow_services::simulation::predict(&world, &graph, &case, 100_000).unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_enactment, bench_prediction);
criterion_main!(benches);
