//! Criterion bench for the Table 2 workload: one full GP planning run on
//! the virus case-study problem, at several population sizes (the §5
//! configuration is pop = 200).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridflow::casestudy;
use gridflow_planner::prelude::*;

fn bench_gp_run(c: &mut Criterion) {
    let problem = casestudy::planning_problem();
    let mut group = c.benchmark_group("table2_planning");
    group.sample_size(10);
    for population in [50usize, 100, 200] {
        group.bench_with_input(
            BenchmarkId::new("gp_run", population),
            &population,
            |b, &population| {
                let config = GpConfig {
                    population_size: population,
                    seed: 1,
                    ..GpConfig::default()
                };
                b.iter(|| {
                    let result = GpPlanner::new(config, problem.clone()).run();
                    std::hint::black_box(result.best_fitness.overall)
                });
            },
        );
    }
    group.finish();
}

fn bench_fitness_evaluation(c: &mut Criterion) {
    let problem = casestudy::planning_problem();
    let tree = casestudy::plan_tree();
    c.bench_function("fitness/figure11_tree", |b| {
        b.iter(|| {
            std::hint::black_box(gridflow_planner::evaluate(
                &tree,
                &problem,
                40,
                FitnessWeights::default(),
                64,
            ))
        })
    });
}

criterion_group!(benches, bench_gp_run, bench_fitness_evaluation);
criterion_main!(benches);
