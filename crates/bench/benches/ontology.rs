//! Criterion bench **A10**: knowledge-base throughput — instance
//! insertion (with facet validation), queries, full-KB validation, and
//! JSON round-trips, vs. instance count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridflow_ontology::{schema, Instance, KnowledgeBase, Query, SlotCond, Value};

fn populated(n: usize) -> KnowledgeBase {
    let mut kb = schema::grid_ontology_shell();
    for i in 0..n {
        kb.add_instance(
            Instance::new(format!("D{i}"), schema::classes::DATA)
                .with("Name", Value::str(format!("item-{i}")))
                .with("Size", Value::Int((i as i64 % 100) * 1000))
                .with(
                    "Classification",
                    Value::str(if i % 3 == 0 { "3D Model" } else { "2D Image" }),
                ),
        )
        .expect("valid");
    }
    kb
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("ontology_insert");
    for n in [100usize, 1000] {
        group.bench_with_input(BenchmarkId::new("validated_inserts", n), &n, |b, &n| {
            b.iter(|| std::hint::black_box(populated(n).instance_count()))
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("ontology_query");
    for n in [100usize, 1000, 10_000] {
        let kb = populated(n);
        let query = Query::And(vec![
            Query::cond(SlotCond::Eq(
                "Classification".into(),
                Value::str("3D Model"),
            )),
            Query::cond(SlotCond::Gt("Size".into(), Value::Int(50_000))),
        ]);
        group.bench_with_input(BenchmarkId::new("conjunctive", n), &kb, |b, kb| {
            b.iter(|| std::hint::black_box(query.run(kb, Some(schema::classes::DATA)).len()))
        });
    }
    group.finish();
}

fn bench_validate_and_serde(c: &mut Criterion) {
    let kb = populated(1000);
    c.bench_function("ontology/validate_all_1000", |b| {
        b.iter(|| std::hint::black_box(kb.validate_all().len()))
    });
    c.bench_function("ontology/json_round_trip_1000", |b| {
        b.iter(|| {
            let json = kb.to_json().unwrap();
            std::hint::black_box(KnowledgeBase::from_json(&json).unwrap().instance_count())
        })
    });
}

criterion_group!(benches, bench_insert, bench_query, bench_validate_and_serde);
criterion_main!(benches);
