//! The three-part fitness of §3.4.4 (Equations 1–4).

use crate::problem::PlanningProblem;
use crate::simulate::simulate_capped;
use gridflow_plan::PlanNode;
use serde::{Deserialize, Serialize};

/// Weights `(w_v, w_g, w_r)` of Eq. 4; they must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitnessWeights {
    /// Weight of validity fitness (Table 1: 0.2).
    pub validity: f64,
    /// Weight of goal fitness (Table 1: 0.5).
    pub goal: f64,
    /// Weight of representation efficiency (Table 1 implies 0.3).
    pub representation: f64,
}

impl Default for FitnessWeights {
    /// The weights of Table 1: `w_v = 0.2`, `w_g = 0.5`, and therefore
    /// `w_r = 0.3` (the weights sum to 1, Eq. 5).
    fn default() -> Self {
        FitnessWeights {
            validity: 0.2,
            goal: 0.5,
            representation: 0.3,
        }
    }
}

impl FitnessWeights {
    /// Construct and check that the weights sum to 1 (within 1e-9).
    pub fn new(validity: f64, goal: f64, representation: f64) -> Result<Self, String> {
        let sum = validity + goal + representation;
        if (sum - 1.0).abs() > 1e-9 {
            return Err(format!("fitness weights must sum to 1, got {sum}"));
        }
        if validity < 0.0 || goal < 0.0 || representation < 0.0 {
            return Err("fitness weights must be non-negative".into());
        }
        Ok(FitnessWeights {
            validity,
            goal,
            representation,
        })
    }
}

/// The evaluated fitness of one plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fitness {
    /// `f_v` (Eq. 1).
    pub validity: f64,
    /// `f_g` (Eq. 2).
    pub goal: f64,
    /// `f_r` (Eq. 3).
    pub representation: f64,
    /// `f` (Eq. 4).
    pub overall: f64,
    /// Plan-tree size used for `f_r`.
    pub size: usize,
}

impl Fitness {
    /// Is this a perfect plan (valid everywhere and meeting every goal)?
    pub fn is_perfect(&self) -> bool {
        self.validity >= 1.0 && self.goal >= 1.0
    }
}

/// Evaluate a plan tree (Eqs. 1–4).
///
/// `f_r = 1 − size/S_max` (Eq. 3); trees at or above `S_max` clamp to 0
/// (the GP operators never produce them, but ad-hoc callers can).
pub fn evaluate(
    tree: &PlanNode,
    problem: &PlanningProblem,
    smax: usize,
    weights: FitnessWeights,
    flow_cap: usize,
) -> Fitness {
    let outcome = simulate_capped(tree, problem, flow_cap);
    let validity = outcome.validity_fitness();
    let goal = outcome.goal_fitness(problem);
    let size = tree.size();
    let representation = (1.0 - size as f64 / smax as f64).max(0.0);
    let overall =
        weights.validity * validity + weights.goal * goal + weights.representation * representation;
    Fitness {
        validity,
        goal,
        representation,
        overall,
        size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ActivitySpec;
    use crate::simulate::DEFAULT_FLOW_CAP;

    fn problem() -> PlanningProblem {
        PlanningProblem::builder()
            .initial(["Raw"])
            .goal("Final", 1)
            .activity(ActivitySpec::new("step1", ["Raw"], ["Mid"]))
            .activity(ActivitySpec::new("step2", ["Mid"], ["Final"]))
            .build()
    }

    #[test]
    fn default_weights_are_table_1() {
        let w = FitnessWeights::default();
        assert_eq!((w.validity, w.goal, w.representation), (0.2, 0.5, 0.3));
    }

    #[test]
    fn weights_must_sum_to_one() {
        assert!(FitnessWeights::new(0.2, 0.5, 0.3).is_ok());
        assert!(FitnessWeights::new(0.5, 0.5, 0.5).is_err());
        assert!(FitnessWeights::new(1.2, -0.5, 0.3).is_err());
    }

    #[test]
    fn perfect_plan_fitness_matches_formula() {
        let tree = PlanNode::Sequential(vec![
            PlanNode::terminal("step1"),
            PlanNode::terminal("step2"),
        ]);
        let f = evaluate(
            &tree,
            &problem(),
            40,
            FitnessWeights::default(),
            DEFAULT_FLOW_CAP,
        );
        assert_eq!(f.validity, 1.0);
        assert_eq!(f.goal, 1.0);
        assert_eq!(f.size, 3);
        let expected_fr = 1.0 - 3.0 / 40.0;
        assert!((f.representation - expected_fr).abs() < 1e-12);
        let expected = 0.2 + 0.5 + 0.3 * expected_fr;
        assert!((f.overall - expected).abs() < 1e-12);
        assert!(f.is_perfect());
    }

    #[test]
    fn oversize_tree_clamps_representation_to_zero() {
        let tree = PlanNode::Sequential(vec![PlanNode::terminal("step1"); 50]);
        let f = evaluate(
            &tree,
            &problem(),
            40,
            FitnessWeights::default(),
            DEFAULT_FLOW_CAP,
        );
        assert_eq!(f.representation, 0.0);
        assert!(f.overall <= 0.7 + 1e-12);
    }

    #[test]
    fn fitness_is_bounded_zero_one() {
        let trees = [
            PlanNode::terminal("bogus"),
            PlanNode::Sequential(vec![]),
            PlanNode::Sequential(vec![
                PlanNode::terminal("step2"),
                PlanNode::terminal("step1"),
            ]),
        ];
        for tree in &trees {
            let f = evaluate(
                tree,
                &problem(),
                40,
                FitnessWeights::default(),
                DEFAULT_FLOW_CAP,
            );
            assert!(f.overall >= 0.0 && f.overall <= 1.0, "{f:?}");
            assert!(f.validity >= 0.0 && f.validity <= 1.0);
            assert!(f.goal >= 0.0 && f.goal <= 1.0);
            assert!(f.representation >= 0.0 && f.representation < 1.0 || tree.size() == 0);
        }
    }

    #[test]
    fn smaller_valid_plan_scores_higher() {
        let small = PlanNode::Sequential(vec![
            PlanNode::terminal("step1"),
            PlanNode::terminal("step2"),
        ]);
        let padded = PlanNode::Sequential(vec![
            PlanNode::terminal("step1"),
            PlanNode::terminal("step1"),
            PlanNode::terminal("step1"),
            PlanNode::terminal("step2"),
        ]);
        let w = FitnessWeights::default();
        let fs = evaluate(&small, &problem(), 40, w, DEFAULT_FLOW_CAP);
        let fp = evaluate(&padded, &problem(), 40, w, DEFAULT_FLOW_CAP);
        assert!(fs.overall > fp.overall);
    }
}
