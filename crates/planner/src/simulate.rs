//! Plan simulation (§3.4.4): "to evaluate the plan validity fitness, we
//! need to simulate the execution of a plan".
//!
//! The simulator walks a plan tree over a [`PlanningState`]:
//!
//! * a **terminal** checks its preconditions against the current state;
//!   if they hold it is a *valid* execution and its outputs are applied,
//!   otherwise it is an *invalid* execution and the state is unchanged
//!   ("If the activity is not valid, we don't update the system state");
//! * a **sequential** node runs its children left to right;
//! * a **concurrent** node's children "can be executed either sequentially
//!   or concurrently … in any order"; the simulator runs them left to
//!   right (one admissible order);
//! * a **selective** node forks the simulation: "we need to enumerate each
//!   possible flow of execution and simulate the execution of a plan
//!   multiple times" — each child spawns a separate *world*;
//! * an **iterative** node's stopping condition is opaque at planning
//!   time; the simulator unrolls the body once (the do-while lower bound:
//!   every admissible enactment runs the body at least once).
//!
//! Worlds multiply exponentially in the number of selective nodes, so the
//! simulator caps them at [`DEFAULT_FLOW_CAP`] (configurable); beyond the
//! cap, the earliest-enumerated flows are kept.  "If a single activity is
//! simulated multiple times, each execution is counted in the validity
//! check" — counts aggregate across worlds.

use crate::problem::PlanningProblem;
use crate::state::PlanningState;
use gridflow_plan::PlanNode;
use serde::{Deserialize, Serialize};

/// Default cap on the number of enumerated flows.
pub const DEFAULT_FLOW_CAP: usize = 64;

/// One enumerated flow of execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct World {
    /// State after executing this flow.
    pub state: PlanningState,
    /// Valid activity executions in this flow.
    pub valid: usize,
    /// Total activity executions in this flow.
    pub executed: usize,
}

/// Aggregated simulation outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Every enumerated flow (at most the configured cap).
    pub worlds: Vec<World>,
    /// Sum of valid executions across flows.
    pub total_valid: usize,
    /// Sum of executions across flows.
    pub total_executed: usize,
    /// True when the flow cap truncated enumeration.
    pub truncated: bool,
}

impl SimOutcome {
    /// Validity fitness `f_v` (Eq. 1).  A plan that executes no activities
    /// is vacuously valid.
    pub fn validity_fitness(&self) -> f64 {
        if self.total_executed == 0 {
            1.0
        } else {
            self.total_valid as f64 / self.total_executed as f64
        }
    }

    /// Goal fitness `f_g` (Eq. 2), averaged over flows ("if a plan is
    /// simulated multiple times … the goal fitness is given as the average
    /// goal fitness of each execution").  With no goals, trivially 1.
    pub fn goal_fitness(&self, problem: &PlanningProblem) -> f64 {
        if problem.goals.is_empty() {
            return 1.0;
        }
        let per_world: f64 = self
            .worlds
            .iter()
            .map(|w| {
                let satisfied = problem
                    .goals
                    .iter()
                    .filter(|g| w.state.satisfies_goal(g))
                    .count();
                satisfied as f64 / problem.goals.len() as f64
            })
            .sum();
        per_world / self.worlds.len().max(1) as f64
    }
}

/// Simulate `tree` against `problem` with the default flow cap.
pub fn simulate(tree: &PlanNode, problem: &PlanningProblem) -> SimOutcome {
    simulate_capped(tree, problem, DEFAULT_FLOW_CAP)
}

/// Simulate with an explicit flow cap.
pub fn simulate_capped(tree: &PlanNode, problem: &PlanningProblem, flow_cap: usize) -> SimOutcome {
    let initial = World {
        state: PlanningState::from_classifications(problem.initial.iter().cloned()),
        valid: 0,
        executed: 0,
    };
    let mut truncated = false;
    let worlds = sim_node(
        tree,
        vec![initial],
        problem,
        flow_cap.max(1),
        &mut truncated,
    );
    let total_valid = worlds.iter().map(|w| w.valid).sum();
    let total_executed = worlds.iter().map(|w| w.executed).sum();
    SimOutcome {
        worlds,
        total_valid,
        total_executed,
        truncated,
    }
}

fn sim_node(
    node: &PlanNode,
    mut worlds: Vec<World>,
    problem: &PlanningProblem,
    flow_cap: usize,
    truncated: &mut bool,
) -> Vec<World> {
    match node {
        PlanNode::Terminal(name) => {
            for w in &mut worlds {
                w.executed += 1;
                match problem.activity(name) {
                    Some(spec) if w.state.satisfies_inputs(spec) => {
                        w.valid += 1;
                        w.state.apply_outputs(spec);
                    }
                    // Unknown service or unmet preconditions: invalid
                    // execution, state unchanged.
                    _ => {}
                }
            }
            worlds
        }
        PlanNode::Sequential(children) | PlanNode::Iterative { body: children, .. } => {
            for child in children {
                worlds = sim_node(child, worlds, problem, flow_cap, truncated);
            }
            worlds
        }
        PlanNode::Concurrent(children) => {
            // One admissible order: left to right.
            for child in children {
                worlds = sim_node(child, worlds, problem, flow_cap, truncated);
            }
            worlds
        }
        PlanNode::Selective(children) => {
            if children.is_empty() {
                return worlds;
            }
            let mut out = Vec::with_capacity(worlds.len() * children.len());
            'outer: for w in worlds {
                for (_, child) in children {
                    if out.len() >= flow_cap {
                        *truncated = true;
                        break 'outer;
                    }
                    let forked = sim_node(child, vec![w.clone()], problem, flow_cap, truncated);
                    out.extend(forked);
                }
            }
            out.truncate(flow_cap);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ActivitySpec, PlanningProblem};
    use gridflow_process::Condition;

    fn chain_problem() -> PlanningProblem {
        PlanningProblem::builder()
            .initial(["Raw"])
            .goal("Final", 1)
            .activity(ActivitySpec::new("step1", ["Raw"], ["Mid"]))
            .activity(ActivitySpec::new("step2", ["Mid"], ["Final"]))
            .build()
    }

    #[test]
    fn valid_chain_scores_perfect_validity_and_goal() {
        let tree = PlanNode::Sequential(vec![
            PlanNode::terminal("step1"),
            PlanNode::terminal("step2"),
        ]);
        let out = simulate(&tree, &chain_problem());
        assert_eq!(out.total_executed, 2);
        assert_eq!(out.total_valid, 2);
        assert_eq!(out.validity_fitness(), 1.0);
        assert_eq!(out.goal_fitness(&chain_problem()), 1.0);
    }

    #[test]
    fn wrong_order_is_partially_valid() {
        let tree = PlanNode::Sequential(vec![
            PlanNode::terminal("step2"), // Mid not yet available
            PlanNode::terminal("step1"),
        ]);
        let out = simulate(&tree, &chain_problem());
        assert_eq!(out.total_executed, 2);
        assert_eq!(out.total_valid, 1);
        assert_eq!(out.validity_fitness(), 0.5);
        assert_eq!(out.goal_fitness(&chain_problem()), 0.0);
    }

    #[test]
    fn unknown_activity_is_invalid_execution() {
        let tree = PlanNode::terminal("bogus");
        let out = simulate(&tree, &chain_problem());
        assert_eq!(out.total_executed, 1);
        assert_eq!(out.total_valid, 0);
    }

    #[test]
    fn empty_plan_is_vacuously_valid_but_misses_goals() {
        let tree = PlanNode::Sequential(vec![]);
        let out = simulate(&tree, &chain_problem());
        assert_eq!(out.validity_fitness(), 1.0);
        assert_eq!(out.goal_fitness(&chain_problem()), 0.0);
    }

    #[test]
    fn selective_enumerates_both_flows() {
        // One branch completes the chain, the other does not; goal fitness
        // averages to 0.5 and each flow counts its own executions.
        let tree = PlanNode::Sequential(vec![
            PlanNode::terminal("step1"),
            PlanNode::Selective(vec![
                (Condition::True, PlanNode::terminal("step2")),
                (Condition::True, PlanNode::terminal("step1")),
            ]),
        ]);
        let problem = chain_problem();
        let out = simulate(&tree, &problem);
        assert_eq!(out.worlds.len(), 2);
        assert_eq!(out.goal_fitness(&problem), 0.5);
        // Flow 1: step1 (valid) + step2 (valid); flow 2: step1 + step1
        // (second still valid: Raw persists).
        assert_eq!(out.total_executed, 4);
        assert_eq!(out.total_valid, 4);
    }

    #[test]
    fn nested_selectives_multiply_worlds() {
        let sel = |a: &str, b: &str| {
            PlanNode::Selective(vec![
                (Condition::True, PlanNode::terminal(a)),
                (Condition::True, PlanNode::terminal(b)),
            ])
        };
        let tree = PlanNode::Sequential(vec![sel("step1", "step1"), sel("step2", "step2")]);
        let out = simulate(&tree, &chain_problem());
        assert_eq!(out.worlds.len(), 4);
        assert!(!out.truncated);
    }

    #[test]
    fn flow_cap_truncates() {
        let sel = PlanNode::Selective(vec![
            (Condition::True, PlanNode::terminal("step1")),
            (Condition::True, PlanNode::terminal("step1")),
        ]);
        // 2^6 = 64 flows, cap at 8.
        let tree = PlanNode::Sequential(vec![sel.clone(); 6]);
        let out = simulate_capped(&tree, &chain_problem(), 8);
        assert_eq!(out.worlds.len(), 8);
        assert!(out.truncated);
    }

    #[test]
    fn iterative_unrolls_once() {
        let tree = PlanNode::Iterative {
            cond: Condition::True,
            body: vec![PlanNode::terminal("step1"), PlanNode::terminal("step2")],
        };
        let out = simulate(&tree, &chain_problem());
        assert_eq!(out.total_executed, 2);
        assert_eq!(out.validity_fitness(), 1.0);
    }

    #[test]
    fn multiplicity_matters_for_psf_style_inputs() {
        let problem = PlanningProblem::builder()
            .initial(["Param"])
            .goal("Resolution File", 1)
            .activity(ActivitySpec::new("P3DR", ["Param"], ["3D Model"]))
            .activity(ActivitySpec::new(
                "PSF",
                ["3D Model", "3D Model"],
                ["Resolution File"],
            ))
            .build();
        let once =
            PlanNode::Sequential(vec![PlanNode::terminal("P3DR"), PlanNode::terminal("PSF")]);
        let out = simulate(&once, &problem);
        assert_eq!(out.total_valid, 1, "PSF must fail with one model");
        let twice = PlanNode::Sequential(vec![
            PlanNode::terminal("P3DR"),
            PlanNode::terminal("P3DR"),
            PlanNode::terminal("PSF"),
        ]);
        let out = simulate(&twice, &problem);
        assert_eq!(out.total_valid, 3);
        assert_eq!(out.goal_fitness(&problem), 1.0);
    }
}
