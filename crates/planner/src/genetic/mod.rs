//! The genetic-programming engine of §3.4: tree representation (in
//! `gridflow-plan`), solution initialization (§3.4.2), genetic operators
//! (§3.4.3), plan evaluation (§3.4.4), tournament selection (§3.4.5), and
//! the overall procedure (§3.4.6).

mod config;
mod engine;
mod init;
mod ops;

pub use config::GpConfig;
pub use engine::{GenerationStats, GpPlanner, GpResult};
pub use init::random_tree;
pub use ops::{crossover, mutate};
