//! Genetic operators (§3.4.3): subtree crossover and subtree-replacement
//! mutation, both guarded by the size cap `S_max`.

use crate::genetic::init::random_tree;
use gridflow_plan::PlanNode;
use rand::Rng;

/// Subtree crossover (§3.4.3, Fig. 8).
///
/// A random node is selected in each parent and the associated subtrees
/// are exchanged.  "In case the size of a new tree exceeds `S_max`,
/// crossover fails and both parents are kept" — modelled by returning
/// `None`.
pub fn crossover<R: Rng>(
    a: &PlanNode,
    b: &PlanNode,
    rng: &mut R,
    smax: usize,
) -> Option<(PlanNode, PlanNode)> {
    let idx_a = rng.gen_range(0..a.size());
    let idx_b = rng.gen_range(0..b.size());
    let sub_a = a.node_at(idx_a).expect("index in range").clone();
    let sub_b = b.node_at(idx_b).expect("index in range").clone();
    let new_a_size = a.size() - sub_a.size() + sub_b.size();
    let new_b_size = b.size() - sub_b.size() + sub_a.size();
    if new_a_size > smax || new_b_size > smax {
        return None;
    }
    let mut child_a = a.clone();
    child_a.replace_at(idx_a, sub_b).expect("index in range");
    let mut child_b = b.clone();
    child_b.replace_at(idx_b, sub_a).expect("index in range");
    debug_assert_eq!(child_a.size(), new_a_size);
    debug_assert_eq!(child_b.size(), new_b_size);
    Some((child_a, child_b))
}

/// Subtree-replacement mutation (§3.4.3, Fig. 9).
///
/// Each node of the tree is independently selected with probability
/// `rate`; a selected node's subtree is replaced by a randomly generated
/// tree ("using the same method as plan initialization").  "If the new
/// tree exceeds the size limitation, mutation fails and we keep the
/// original tree."  Returns the number of applied mutations.
pub fn mutate<R: Rng>(
    tree: &mut PlanNode,
    rng: &mut R,
    rate: f64,
    smax: usize,
    init_max_size: usize,
    activities: &[String],
) -> usize {
    let mut applied = 0;
    // Sample selections against the *current* tree on each pass; indices
    // shift as mutations land, so process one selection at a time.
    let mut i = 0;
    loop {
        let size = tree.size();
        if i >= size {
            break;
        }
        if rng.gen_bool(rate) {
            let old_size = tree.node_at(i).expect("index in range").size();
            let budget = smax.saturating_sub(size - old_size).max(1);
            let new_size = rng.gen_range(1..=budget.min(init_max_size));
            let replacement = random_tree(rng, new_size, activities);
            if size - old_size + replacement.size() <= smax {
                tree.replace_at(i, replacement).expect("index in range");
                applied += 1;
            }
        }
        i += 1;
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn names() -> Vec<String> {
        vec!["A".into(), "B".into(), "C".into()]
    }

    fn sample_pair(rng: &mut ChaCha8Rng) -> (PlanNode, PlanNode) {
        (
            random_tree(rng, 12, &names()),
            random_tree(rng, 15, &names()),
        )
    }

    #[test]
    fn crossover_preserves_total_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let (a, b) = sample_pair(&mut rng);
            if let Some((ca, cb)) = crossover(&a, &b, &mut rng, 40) {
                assert_eq!(ca.size() + cb.size(), a.size() + b.size());
                assert!(ca.is_gp_valid() && cb.is_gp_valid());
            }
        }
    }

    #[test]
    fn crossover_respects_smax() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..200 {
            let (a, b) = sample_pair(&mut rng);
            if let Some((ca, cb)) = crossover(&a, &b, &mut rng, 16) {
                assert!(ca.size() <= 16);
                assert!(cb.size() <= 16);
            }
        }
    }

    #[test]
    fn crossover_at_roots_swaps_whole_trees() {
        // With both trees of size 1, the only choice is the root; children
        // are the parents swapped.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = PlanNode::terminal("A");
        let b = PlanNode::terminal("B");
        let (ca, cb) = crossover(&a, &b, &mut rng, 40).unwrap();
        assert_eq!(ca, b);
        assert_eq!(cb, a);
    }

    #[test]
    fn mutation_rate_zero_never_mutates() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut t = random_tree(&mut rng, 20, &names());
        let before = t.clone();
        let applied = mutate(&mut t, &mut rng, 0.0, 40, 20, &names());
        assert_eq!(applied, 0);
        assert_eq!(t, before);
    }

    #[test]
    fn mutation_rate_one_always_mutates_root() {
        // With rate 1 the root (index 0) is always selected, replacing the
        // whole tree.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut t = random_tree(&mut rng, 20, &names());
        let applied = mutate(&mut t, &mut rng, 1.0, 40, 20, &names());
        assert!(applied >= 1);
        assert!(t.size() <= 40);
        assert!(t.is_gp_valid());
    }

    #[test]
    fn mutation_respects_smax() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..100 {
            let mut t = random_tree(&mut rng, 35, &names());
            mutate(&mut t, &mut rng, 0.3, 40, 20, &names());
            assert!(t.size() <= 40, "size {} exceeds smax", t.size());
            assert!(t.is_gp_valid());
        }
    }

    #[test]
    fn mutated_terminals_come_from_activity_set() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut t = random_tree(&mut rng, 10, &names());
        mutate(&mut t, &mut rng, 1.0, 40, 20, &names());
        for a in t.activities() {
            assert!(names().iter().any(|n| n == a));
        }
    }
}
