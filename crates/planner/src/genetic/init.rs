//! Solution initialization (§3.4.2).
//!
//! "The initialization of a plan tree consists of two steps.  In the first
//! step, we generate an arbitrary tree structure for a plan of a given
//! size.  In the second step, we instantiate each node in the tree:
//! every internal node is instantiated with a controller node, which is
//! randomly selected from four controller nodes; every terminal node is
//! instantiated with an end-user activity."

use gridflow_plan::PlanNode;
use gridflow_process::Condition;
use rand::seq::SliceRandom;
use rand::Rng;

/// Generate a random plan tree with exactly `size` nodes, instantiating
/// terminals from `activities` (service names).
///
/// Controller nodes get 1–4 children (subject to the size budget);
/// selective guards and iterative conditions are `true` — the planner
/// treats conditions abstractly, and the coordination layer refines them
/// at enactment time.
///
/// `size == 0` is clamped to 1.  With an empty activity set, terminals are
/// named `"noop"` (they will be invalid in any simulation, which is the
/// correct fitness signal for a grid with no services).
pub fn random_tree<R: Rng>(rng: &mut R, size: usize, activities: &[String]) -> PlanNode {
    let size = size.max(1);
    if size == 1 {
        return PlanNode::Terminal(random_activity(rng, activities));
    }
    // Internal node: pick a child count and partition the remaining
    // budget among the children (each child gets at least one node).
    let remaining = size - 1;
    let max_children = remaining.min(4);
    let child_count = rng.gen_range(1..=max_children);
    let parts = random_composition(rng, remaining, child_count);
    let children: Vec<PlanNode> = parts
        .into_iter()
        .map(|p| random_tree(rng, p, activities))
        .collect();
    match rng.gen_range(0..4u8) {
        0 => PlanNode::Sequential(children),
        1 => PlanNode::Concurrent(children),
        2 => PlanNode::Selective(children.into_iter().map(|c| (Condition::True, c)).collect()),
        _ => PlanNode::Iterative {
            cond: Condition::True,
            body: children,
        },
    }
}

fn random_activity<R: Rng>(rng: &mut R, activities: &[String]) -> String {
    activities
        .choose(rng)
        .cloned()
        .unwrap_or_else(|| "noop".to_owned())
}

/// A uniform random composition of `total` into `parts` positive integers.
fn random_composition<R: Rng>(rng: &mut R, total: usize, parts: usize) -> Vec<usize> {
    debug_assert!(parts >= 1 && total >= parts);
    // Choose parts-1 distinct cut points in 1..total.
    let mut cuts: Vec<usize> = Vec::with_capacity(parts - 1);
    while cuts.len() < parts - 1 {
        let c = rng.gen_range(1..total);
        if !cuts.contains(&c) {
            cuts.push(c);
        }
    }
    cuts.sort_unstable();
    let mut out = Vec::with_capacity(parts);
    let mut prev = 0;
    for c in cuts {
        out.push(c - prev);
        prev = c;
    }
    out.push(total - prev);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn names() -> Vec<String> {
        vec!["POD".into(), "P3DR".into(), "POR".into(), "PSF".into()]
    }

    #[test]
    fn generated_trees_have_requested_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for size in 1..=40 {
            for _ in 0..10 {
                let t = random_tree(&mut rng, size, &names());
                assert_eq!(t.size(), size, "requested {size}");
            }
        }
    }

    #[test]
    fn generated_trees_are_gp_valid() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..200 {
            let size = rng.gen_range(1..=40);
            let t = random_tree(&mut rng, size, &names());
            assert!(t.is_gp_valid());
        }
    }

    #[test]
    fn terminals_come_from_the_activity_set() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let names = names();
        for _ in 0..50 {
            let t = random_tree(&mut rng, 15, &names);
            for a in t.activities() {
                assert!(names.iter().any(|n| n == a), "unexpected terminal {a}");
            }
        }
    }

    #[test]
    fn size_zero_clamps_to_single_terminal() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let t = random_tree(&mut rng, 0, &names());
        assert_eq!(t.size(), 1);
    }

    #[test]
    fn empty_activity_set_yields_noop_terminals() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let t = random_tree(&mut rng, 3, &[]);
        assert!(t.activities().iter().all(|a| *a == "noop"));
    }

    #[test]
    fn all_four_controller_kinds_appear_over_many_samples() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut totals = (0, 0, 0, 0);
        for _ in 0..100 {
            let t = random_tree(&mut rng, 20, &names());
            let c = t.controller_counts();
            totals.0 += c.0;
            totals.1 += c.1;
            totals.2 += c.2;
            totals.3 += c.3;
        }
        assert!(
            totals.0 > 0 && totals.1 > 0 && totals.2 > 0 && totals.3 > 0,
            "controller kinds missing: {totals:?}"
        );
    }

    #[test]
    fn composition_sums_and_is_positive() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            let total: usize = rng.gen_range(1..=30);
            let parts = rng.gen_range(1..=total.min(4));
            let comp = random_composition(&mut rng, total, parts);
            assert_eq!(comp.len(), parts);
            assert_eq!(comp.iter().sum::<usize>(), total);
            assert!(comp.iter().all(|&p| p >= 1));
        }
    }

    #[test]
    fn same_seed_same_tree() {
        let t1 = random_tree(&mut ChaCha8Rng::seed_from_u64(9), 25, &names());
        let t2 = random_tree(&mut ChaCha8Rng::seed_from_u64(9), 25, &names());
        assert_eq!(t1, t2);
    }
}
