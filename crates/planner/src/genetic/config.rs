//! GP configuration — the knobs of Table 1.

use crate::fitness::FitnessWeights;
use crate::simulate::DEFAULT_FLOW_CAP;
use serde::{Deserialize, Serialize};

/// Configuration of the GP planner.  [`GpConfig::default`] reproduces the
/// parameter settings of Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpConfig {
    /// Population size (Table 1: 200).
    pub population_size: usize,
    /// Number of generations (Table 1: 20).
    pub generations: usize,
    /// Crossover rate `p_c` (Table 1: 0.7) — the probability a selected
    /// pair is crossed over.
    pub crossover_rate: f64,
    /// Mutation rate `p_m` (Table 1: 0.001) — the probability each node
    /// of an individual is selected for subtree-replacement mutation.
    pub mutation_rate: f64,
    /// Size cap `S_max` on plan trees (Table 1: 40).
    pub smax: usize,
    /// Fitness weights (Table 1: `w_v = 0.2`, `w_g = 0.5`, `w_r = 0.3`).
    pub weights: FitnessWeights,
    /// Tournament size (§3.4.5 describes binary tournaments).
    pub tournament_size: usize,
    /// Cap on enumerated flows during plan simulation.
    pub flow_cap: usize,
    /// Maximum size of randomly initialized trees (and of subtrees
    /// generated during mutation).  Must be ≤ `smax`.
    pub init_max_size: usize,
    /// RNG seed; same seed + same problem ⇒ same result.
    pub seed: u64,
    /// Worker threads for fitness evaluation; 0 = auto-detect.
    pub threads: usize,
    /// Stop as soon as a generation's best plan reaches `f_v = f_g = 1`.
    /// The paper runs the full generation budget; ablation benches enable
    /// this to measure time-to-solution.
    pub early_stop_on_perfect: bool,
    /// Copy the top-k individuals unchanged into each next generation.
    /// The paper's procedure has no elitism (0, the default); with pure
    /// tournament selection the best plan can drift away between
    /// generations, which is why the paper reads its answer off the
    /// *final* generation.
    pub elitism: usize,
    /// Memoize fitness by plan-tree content hash within a run (identical
    /// trees recur heavily across generations under selection and
    /// elitism).  Fitness evaluation is pure, so this is a strict
    /// performance knob: results are byte-identical with it on or off,
    /// at any thread count.
    pub memoize_fitness: bool,
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig {
            population_size: 200,
            generations: 20,
            crossover_rate: 0.7,
            mutation_rate: 0.001,
            smax: 40,
            weights: FitnessWeights::default(),
            tournament_size: 2,
            flow_cap: DEFAULT_FLOW_CAP,
            init_max_size: 20,
            seed: 42,
            threads: 0,
            early_stop_on_perfect: false,
            elitism: 0,
            memoize_fitness: true,
        }
    }
}

impl GpConfig {
    /// Validate parameter sanity; returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        if self.population_size == 0 {
            return Err("population_size must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.crossover_rate) {
            return Err("crossover_rate must be in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.mutation_rate) {
            return Err("mutation_rate must be in [0, 1]".into());
        }
        if self.smax < 2 {
            return Err("smax must be at least 2".into());
        }
        if self.init_max_size == 0 || self.init_max_size > self.smax {
            return Err("init_max_size must be in [1, smax]".into());
        }
        if self.tournament_size == 0 {
            return Err("tournament_size must be positive".into());
        }
        if self.elitism >= self.population_size {
            return Err("elitism must be smaller than the population".into());
        }
        FitnessWeights::new(
            self.weights.validity,
            self.weights.goal,
            self.weights.representation,
        )?;
        Ok(())
    }

    /// Effective number of evaluation threads.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_1() {
        let c = GpConfig::default();
        assert_eq!(c.population_size, 200);
        assert_eq!(c.generations, 20);
        assert_eq!(c.crossover_rate, 0.7);
        assert_eq!(c.mutation_rate, 0.001);
        assert_eq!(c.smax, 40);
        assert_eq!(c.weights.validity, 0.2);
        assert_eq!(c.weights.goal, 0.5);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        let base = GpConfig::default();
        assert!(GpConfig {
            population_size: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(GpConfig {
            crossover_rate: 1.5,
            ..base
        }
        .validate()
        .is_err());
        assert!(GpConfig {
            mutation_rate: -0.1,
            ..base
        }
        .validate()
        .is_err());
        assert!(GpConfig { smax: 1, ..base }.validate().is_err());
        assert!(GpConfig {
            init_max_size: 41,
            ..base
        }
        .validate()
        .is_err());
        assert!(GpConfig {
            tournament_size: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(GpConfig {
            elitism: 200,
            ..base
        }
        .validate()
        .is_err());
        assert!(GpConfig { elitism: 5, ..base }.validate().is_ok());
    }

    #[test]
    fn effective_threads_is_positive() {
        assert!(GpConfig::default().effective_threads() >= 1);
        assert_eq!(
            GpConfig {
                threads: 3,
                ..GpConfig::default()
            }
            .effective_threads(),
            3
        );
    }
}
