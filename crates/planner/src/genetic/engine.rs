//! The GP main loop (§3.4.6):
//!
//! ```text
//! 1. Initialize population;
//! 2. While some stopping conditions are not met, do
//!    (a) Evaluate the current population;
//!    (b) Select the individuals and form a new population;
//!    (c) Crossover;
//!    (d) Mutate;
//! 3. Select a plan that has the highest fitness as the final solution.
//! ```
//!
//! Fitness evaluation is embarrassingly parallel and is spread over a
//! scoped thread pool; selection and the genetic operators run on a
//! single seeded RNG, so runs are fully deterministic for a given
//! `(config.seed, problem)` pair regardless of thread count.

use crate::fitness::{evaluate, Fitness};
use crate::genetic::config::GpConfig;
use crate::genetic::init::random_tree;
use crate::genetic::ops::{crossover, mutate};
use crate::key::plan_tree_hash;
use crate::problem::PlanningProblem;
use gridflow_plan::PlanNode;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-generation statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// Generation index (0-based).
    pub generation: usize,
    /// Fitness of the generation's best individual.
    pub best: Fitness,
    /// Mean overall fitness of the population.
    pub mean_overall: f64,
    /// Mean plan-tree size of the population.
    pub mean_size: f64,
}

/// Result of a GP run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpResult {
    /// The highest-fitness plan of the final evaluated generation (the
    /// paper's step 3).
    pub best: PlanNode,
    /// Its fitness.
    pub best_fitness: Fitness,
    /// The best plan seen in *any* generation (may differ from `best`
    /// when later generations drift).
    pub best_ever: PlanNode,
    /// Its fitness.
    pub best_ever_fitness: Fitness,
    /// Per-generation statistics, in order.
    pub history: Vec<GenerationStats>,
    /// Total *logical* fitness evaluations (one per individual per
    /// generation, whether served from the memo or computed fresh).
    pub evaluations: usize,
    /// How many of those evaluations were served from the per-run
    /// fitness memo instead of being recomputed (0 when
    /// [`GpConfig::memoize_fitness`] is off).
    pub memo_hits: usize,
}

/// The GP planner: a configuration plus a problem.
#[derive(Debug, Clone)]
pub struct GpPlanner {
    config: GpConfig,
    problem: PlanningProblem,
    activity_names: Vec<String>,
}

impl GpPlanner {
    /// Create a planner; panics on an invalid configuration (configs are
    /// developer inputs, not runtime data).
    pub fn new(config: GpConfig, problem: PlanningProblem) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid GP configuration: {msg}");
        }
        let activity_names = problem.activities.iter().map(|a| a.name.clone()).collect();
        GpPlanner {
            config,
            problem,
            activity_names,
        }
    }

    /// Borrow the problem.
    pub fn problem(&self) -> &PlanningProblem {
        &self.problem
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &GpConfig {
        &self.config
    }

    /// Run the GP to completion.
    pub fn run(&self) -> GpResult {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let cfg = &self.config;
        let mut population: Vec<PlanNode> = (0..cfg.population_size)
            .map(|_| {
                let size = rng.gen_range(1..=cfg.init_max_size);
                random_tree(&mut rng, size, &self.activity_names)
            })
            .collect();

        let mut history = Vec::with_capacity(cfg.generations);
        let mut evaluations = 0usize;
        let mut best_ever: Option<(PlanNode, Fitness)> = None;
        let mut final_best: Option<(PlanNode, Fitness)> = None;
        // Per-run fitness memo, keyed by plan-tree content hash.  Lives
        // for this run only — cross-run reuse is the plan cache's job.
        let mut memo: HashMap<u128, Fitness> = HashMap::new();
        let mut memo_hits = 0usize;

        for generation in 0..cfg.generations.max(1) {
            let fitnesses = self.evaluate_population(&population, &mut memo, &mut memo_hits);
            evaluations += fitnesses.len();

            let (best_idx, best_fit) = fitnesses
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    a.1.overall
                        .partial_cmp(&b.1.overall)
                        .expect("fitness is finite")
                })
                .map(|(i, f)| (i, *f))
                .expect("population is non-empty");
            let mean_overall =
                fitnesses.iter().map(|f| f.overall).sum::<f64>() / fitnesses.len() as f64;
            let mean_size =
                fitnesses.iter().map(|f| f.size as f64).sum::<f64>() / fitnesses.len() as f64;
            history.push(GenerationStats {
                generation,
                best: best_fit,
                mean_overall,
                mean_size,
            });
            if best_ever
                .as_ref()
                .map(|(_, f)| best_fit.overall > f.overall)
                .unwrap_or(true)
            {
                best_ever = Some((population[best_idx].clone(), best_fit));
            }
            final_best = Some((population[best_idx].clone(), best_fit));

            let stop = cfg.early_stop_on_perfect && best_fit.is_perfect();
            if generation + 1 == cfg.generations.max(1) || stop {
                break;
            }

            // Elitism: remember the top-k before selection disturbs them.
            let elites: Vec<PlanNode> = if cfg.elitism > 0 {
                let mut ranked: Vec<usize> = (0..population.len()).collect();
                ranked.sort_by(|&a, &b| {
                    fitnesses[b]
                        .overall
                        .partial_cmp(&fitnesses[a].overall)
                        .expect("fitness is finite")
                });
                ranked
                    .into_iter()
                    .take(cfg.elitism)
                    .map(|i| population[i].clone())
                    .collect()
            } else {
                Vec::new()
            };

            // (b) Tournament selection with replacement.
            let mut next: Vec<PlanNode> = Vec::with_capacity(cfg.population_size);
            for _ in 0..cfg.population_size {
                let winner = (0..cfg.tournament_size)
                    .map(|_| rng.gen_range(0..population.len()))
                    .max_by(|&a, &b| {
                        fitnesses[a]
                            .overall
                            .partial_cmp(&fitnesses[b].overall)
                            .expect("fitness is finite")
                    })
                    .expect("tournament_size >= 1");
                next.push(population[winner].clone());
            }

            // (c) Crossover over consecutive pairs.
            for pair in (0..next.len() / 2).map(|i| 2 * i) {
                if rng.gen_bool(cfg.crossover_rate) {
                    let (a, b) = (next[pair].clone(), next[pair + 1].clone());
                    if let Some((ca, cb)) = crossover(&a, &b, &mut rng, cfg.smax) {
                        next[pair] = ca;
                        next[pair + 1] = cb;
                    }
                }
            }

            // (d) Mutation.
            for individual in &mut next {
                mutate(
                    individual,
                    &mut rng,
                    cfg.mutation_rate,
                    cfg.smax,
                    cfg.init_max_size,
                    &self.activity_names,
                );
            }

            // Re-seat the elites unchanged.
            for (slot, elite) in next.iter_mut().zip(elites) {
                *slot = elite;
            }

            population = next;
        }

        let (best, best_fitness) = final_best.expect("at least one generation ran");
        let (best_ever, best_ever_fitness) = best_ever.expect("at least one generation ran");
        GpResult {
            best,
            best_fitness,
            best_ever,
            best_ever_fitness,
            history,
            evaluations,
            memo_hits,
        }
    }

    /// Evaluate the whole population.
    ///
    /// With memoization on, duplicate trees (within this generation or
    /// remembered from earlier ones) are identified by content hash in
    /// first-occurrence order, only the fresh ones are computed, and
    /// results are filled back positionally — so the returned vector is
    /// identical to the unmemoized one at any thread count.
    fn evaluate_population(
        &self,
        population: &[PlanNode],
        memo: &mut HashMap<u128, Fitness>,
        memo_hits: &mut usize,
    ) -> Vec<Fitness> {
        if !self.config.memoize_fitness {
            let all: Vec<&PlanNode> = population.iter().collect();
            return self.evaluate_trees(&all);
        }
        let keys: Vec<u128> = population.iter().map(plan_tree_hash).collect();
        let mut fresh_keys: Vec<u128> = Vec::new();
        let mut fresh_trees: Vec<&PlanNode> = Vec::new();
        for (tree, &key) in population.iter().zip(&keys) {
            if !memo.contains_key(&key) && !fresh_keys.contains(&key) {
                fresh_keys.push(key);
                fresh_trees.push(tree);
            }
        }
        *memo_hits += population.len() - fresh_trees.len();
        let fresh_fits = self.evaluate_trees(&fresh_trees);
        for (key, fit) in fresh_keys.into_iter().zip(fresh_fits) {
            memo.insert(key, fit);
        }
        keys.iter().map(|key| memo[key]).collect()
    }

    /// Compute fitness for the given trees, in parallel when beneficial.
    fn evaluate_trees(&self, trees: &[&PlanNode]) -> Vec<Fitness> {
        let cfg = &self.config;
        let threads = cfg.effective_threads();
        if threads <= 1 || trees.len() < 32 {
            return trees
                .iter()
                .map(|t| evaluate(t, &self.problem, cfg.smax, cfg.weights, cfg.flow_cap))
                .collect();
        }
        let chunk_size = trees.len().div_ceil(threads);
        let mut out: Vec<Fitness> = Vec::with_capacity(trees.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = trees
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|t| {
                                evaluate(t, &self.problem, cfg.smax, cfg.weights, cfg.flow_cap)
                            })
                            .collect::<Vec<Fitness>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("evaluation worker panicked"));
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ActivitySpec;

    fn chain_problem() -> PlanningProblem {
        PlanningProblem::builder()
            .initial(["Raw"])
            .goal("Final", 1)
            .activity(ActivitySpec::new("step1", ["Raw"], ["Mid"]))
            .activity(ActivitySpec::new("step2", ["Mid"], ["Final"]))
            .activity(ActivitySpec::new("distractor", ["Other"], ["Noise"]))
            .build()
    }

    fn small_config(seed: u64) -> GpConfig {
        GpConfig {
            population_size: 60,
            generations: 15,
            seed,
            ..GpConfig::default()
        }
    }

    #[test]
    fn solves_a_two_step_chain() {
        let result = GpPlanner::new(small_config(1), chain_problem()).run();
        assert!(
            result.best_fitness.is_perfect(),
            "expected a perfect plan, got {:?}",
            result.best_fitness
        );
        // The ideal plan is Sequential(step1, step2): size 3.
        assert!(result.best_fitness.size <= 10);
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let r1 = GpPlanner::new(small_config(7), chain_problem()).run();
        let r2 = GpPlanner::new(small_config(7), chain_problem()).run();
        assert_eq!(r1.best, r2.best);
        assert_eq!(r1.history, r2.history);
        // And thread count must not change the outcome.
        let mut cfg = small_config(7);
        cfg.threads = 1;
        let r3 = GpPlanner::new(cfg, chain_problem()).run();
        assert_eq!(r1.best, r3.best);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let r1 = GpPlanner::new(small_config(1), chain_problem()).run();
        let r2 = GpPlanner::new(small_config(2), chain_problem()).run();
        // Histories almost surely differ (same best is fine).
        assert_ne!(r1.history, r2.history);
    }

    #[test]
    fn history_length_matches_generations() {
        let result = GpPlanner::new(small_config(3), chain_problem()).run();
        assert_eq!(result.history.len(), 15);
        assert_eq!(result.evaluations, 60 * 15);
        for w in result.history.windows(2) {
            assert_eq!(w[1].generation, w[0].generation + 1);
        }
    }

    #[test]
    fn early_stop_trims_the_run() {
        let mut cfg = small_config(4);
        cfg.early_stop_on_perfect = true;
        cfg.generations = 50;
        let result = GpPlanner::new(cfg, chain_problem()).run();
        assert!(result.best_fitness.is_perfect());
        assert!(result.history.len() <= 50);
    }

    #[test]
    fn best_ever_is_at_least_final_best() {
        let result = GpPlanner::new(small_config(5), chain_problem()).run();
        assert!(result.best_ever_fitness.overall >= result.best_fitness.overall - 1e-12);
    }

    #[test]
    fn all_population_sizes_respect_smax() {
        let mut cfg = small_config(6);
        cfg.smax = 12;
        cfg.init_max_size = 12;
        let result = GpPlanner::new(cfg, chain_problem()).run();
        assert!(result.best_fitness.size <= 12);
        for g in &result.history {
            assert!(g.mean_size <= 12.0 + 1e-9);
        }
    }

    #[test]
    fn unsolvable_problem_keeps_goal_fitness_at_zero() {
        let problem = PlanningProblem::builder()
            .initial(["Raw"])
            .goal("Unreachable", 1)
            .activity(ActivitySpec::new("step1", ["Raw"], ["Mid"]))
            .build();
        let result = GpPlanner::new(small_config(8), problem).run();
        assert_eq!(result.best_fitness.goal, 0.0);
        // But valid small plans still score on f_v and f_r.
        assert!(result.best_fitness.overall > 0.0);
    }

    #[test]
    fn elitism_makes_best_fitness_monotone() {
        let cfg = GpConfig {
            elitism: 2,
            ..small_config(12)
        };
        let result = GpPlanner::new(cfg, chain_problem()).run();
        for w in result.history.windows(2) {
            assert!(
                w[1].best.overall >= w[0].best.overall - 1e-12,
                "elitism must never lose the best: {:?} then {:?}",
                w[0].best,
                w[1].best
            );
        }
        // And the final answer equals the best ever seen.
        assert!((result.best_fitness.overall - result.best_ever_fitness.overall).abs() < 1e-12);
    }

    #[test]
    fn memoization_is_a_pure_performance_knob() {
        let on = GpPlanner::new(small_config(9), chain_problem()).run();
        let off = GpPlanner::new(
            GpConfig {
                memoize_fitness: false,
                ..small_config(9)
            },
            chain_problem(),
        )
        .run();
        assert_eq!(on.best, off.best);
        assert_eq!(on.best_ever, off.best_ever);
        assert_eq!(on.history, off.history);
        assert_eq!(on.evaluations, off.evaluations);
        assert_eq!(off.memo_hits, 0);
        assert!(
            on.memo_hits > 0,
            "selection clones winners, so duplicate trees must recur"
        );
    }

    #[test]
    #[should_panic(expected = "invalid GP configuration")]
    fn invalid_config_panics() {
        let cfg = GpConfig {
            population_size: 0,
            ..GpConfig::default()
        };
        let _ = GpPlanner::new(cfg, chain_problem());
    }
}
