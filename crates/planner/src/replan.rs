//! Re-planning (§3.3).
//!
//! "Re-planning is triggered by the coordination service, whenever the
//! state of the environment is such that the execution of the current
//! case description … cannot continue.  … during re-planning, the
//! planning service has to improve the robustness of plans … and avoid
//! reusing in the new plan those activities that prevent the previous
//! plan from successful execution."
//!
//! The knowledge of *which* activities are non-executable arrives either
//! directly from the coordination service or through the brokerage /
//! application-container probe of Fig. 3 — that protocol lives in
//! `gridflow-services`; this module implements the planning core: plan
//! against `T \ excluded`, carrying forward the data produced so far.

use crate::genetic::{GpConfig, GpPlanner, GpResult};
use crate::problem::PlanningProblem;
use serde::{Deserialize, Serialize};

/// A re-planning request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplanRequest {
    /// The original problem.
    pub problem: PlanningProblem,
    /// Data classifications already produced by the partially executed
    /// previous plan ("all available data, including the initial set of
    /// data and the data modified, or created during the execution").
    pub produced: Vec<String>,
    /// Service names observed to be non-executable.
    pub excluded: Vec<String>,
}

/// Outcome of a re-planning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplanOutcome {
    /// The GP result over the restricted problem.
    pub result: GpResult,
    /// The restricted problem that was actually solved.
    pub restricted: PlanningProblem,
}

/// Run re-planning: restrict `T`, extend `S_init` with the data produced
/// so far, and plan afresh.
pub fn replan(request: &ReplanRequest, config: GpConfig) -> ReplanOutcome {
    let mut restricted = request
        .problem
        .without_activities(request.excluded.iter().map(String::as_str));
    restricted.initial.extend(request.produced.iter().cloned());
    let result = GpPlanner::new(config, restricted.clone()).run();
    ReplanOutcome { result, restricted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ActivitySpec;

    /// Two routes to the goal: a direct activity and a two-step detour.
    fn redundant_problem() -> PlanningProblem {
        PlanningProblem::builder()
            .initial(["Raw"])
            .goal("Final", 1)
            .activity(ActivitySpec::new("direct", ["Raw"], ["Final"]))
            .activity(ActivitySpec::new("detour1", ["Raw"], ["Mid"]))
            .activity(ActivitySpec::new("detour2", ["Mid"], ["Final"]))
            .build()
    }

    fn config(seed: u64) -> GpConfig {
        GpConfig {
            population_size: 60,
            generations: 20,
            seed,
            ..GpConfig::default()
        }
    }

    #[test]
    fn replanning_avoids_excluded_activities() {
        let request = ReplanRequest {
            problem: redundant_problem(),
            produced: vec![],
            excluded: vec!["direct".into()],
        };
        let outcome = replan(&request, config(1));
        assert!(outcome.result.best_fitness.is_perfect());
        assert!(
            !outcome.result.best.activities().contains(&"direct"),
            "excluded activity reused: {:?}",
            outcome.result.best
        );
        assert_eq!(outcome.restricted.activities.len(), 2);
    }

    #[test]
    fn produced_data_shortens_the_replan() {
        // `Mid` was already produced before the failure; only detour2 is
        // needed now even though detour1 is excluded.
        let request = ReplanRequest {
            problem: redundant_problem(),
            produced: vec!["Mid".into()],
            excluded: vec!["direct".into(), "detour1".into()],
        };
        let outcome = replan(&request, config(2));
        assert!(outcome.result.best_fitness.is_perfect());
        let acts = outcome.result.best.activities();
        assert!(acts.contains(&"detour2"));
        assert!(!acts.contains(&"detour1"));
    }

    #[test]
    fn impossible_replan_reports_imperfect_fitness() {
        let request = ReplanRequest {
            problem: redundant_problem(),
            produced: vec![],
            excluded: vec!["direct".into(), "detour2".into()],
        };
        let outcome = replan(&request, config(3));
        assert!(outcome.result.best_fitness.goal < 1.0);
    }
}
