//! Planning problems: `P = {S_init, G, T}` (§3.2).

use serde::{Deserialize, Serialize};

/// An end-user activity available to the planner (an element of `T`).
///
/// Preconditions and postconditions follow the shape of the service
/// signatures C1–C8 of Fig. 13: each input is a required data
/// *classification* (duplicates mean that many distinct items are needed —
/// PSF requires two `3D Model`s, one per reconstruction stream), and each
/// output is the classification of a data item the activity produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivitySpec {
    /// Service name (e.g. `P3DR`).
    pub name: String,
    /// Required input classifications (a multiset).
    pub inputs: Vec<String>,
    /// Produced output classifications.
    pub outputs: Vec<String>,
    /// Nominal cost of one execution (used by the grid scheduler; the
    /// planner itself ignores it).
    pub cost: f64,
}

impl ActivitySpec {
    /// A new activity with unit cost.
    pub fn new<I, O, S, T>(name: impl Into<String>, inputs: I, outputs: O) -> Self
    where
        I: IntoIterator<Item = S>,
        O: IntoIterator<Item = T>,
        S: Into<String>,
        T: Into<String>,
    {
        ActivitySpec {
            name: name.into(),
            inputs: inputs.into_iter().map(Into::into).collect(),
            outputs: outputs.into_iter().map(Into::into).collect(),
            cost: 1.0,
        }
    }

    /// Set the nominal cost (builder style).
    pub fn with_cost(mut self, cost: f64) -> Self {
        self.cost = cost;
        self
    }
}

/// One goal specification: at least `min_count` data items with the given
/// classification must exist in the final state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoalSpec {
    /// Required classification.
    pub classification: String,
    /// Minimum number of distinct items.
    pub min_count: usize,
}

/// A planning problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanningProblem {
    /// `S_init`: classifications of the initially available data items
    /// (a multiset).
    pub initial: Vec<String>,
    /// `G`: the goal specifications.
    pub goals: Vec<GoalSpec>,
    /// `T`: the end-user activities available in the grid.
    pub activities: Vec<ActivitySpec>,
}

impl PlanningProblem {
    /// Start building a problem.
    pub fn builder() -> PlanningProblemBuilder {
        PlanningProblemBuilder::default()
    }

    /// Look up an activity by service name.
    pub fn activity(&self, name: &str) -> Option<&ActivitySpec> {
        self.activities.iter().find(|a| a.name == name)
    }

    /// A copy of the problem with the given activities removed from `T`
    /// (re-planning: "avoid reusing in the new plan those activities that
    /// prevent the previous plan from successful execution", §3.3).
    pub fn without_activities<'a, I: IntoIterator<Item = &'a str>>(&self, excluded: I) -> Self {
        let excluded: Vec<&str> = excluded.into_iter().collect();
        PlanningProblem {
            initial: self.initial.clone(),
            goals: self.goals.clone(),
            activities: self
                .activities
                .iter()
                .filter(|a| !excluded.contains(&a.name.as_str()))
                .cloned()
                .collect(),
        }
    }
}

/// Builder for [`PlanningProblem`].
#[derive(Debug, Default)]
pub struct PlanningProblemBuilder {
    initial: Vec<String>,
    goals: Vec<GoalSpec>,
    activities: Vec<ActivitySpec>,
}

impl PlanningProblemBuilder {
    /// Set the initial data classifications.
    pub fn initial<I, S>(mut self, classifications: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.initial
            .extend(classifications.into_iter().map(Into::into));
        self
    }

    /// Add a goal specification.
    pub fn goal(mut self, classification: impl Into<String>, min_count: usize) -> Self {
        self.goals.push(GoalSpec {
            classification: classification.into(),
            min_count,
        });
        self
    }

    /// Add an available activity.
    pub fn activity(mut self, spec: ActivitySpec) -> Self {
        self.activities.push(spec);
        self
    }

    /// Finish building.
    pub fn build(self) -> PlanningProblem {
        PlanningProblem {
            initial: self.initial,
            goals: self.goals,
            activities: self.activities,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_problem() {
        let p = PlanningProblem::builder()
            .initial(["A", "A", "B"])
            .goal("C", 1)
            .activity(ActivitySpec::new("make-c", ["A", "B"], ["C"]))
            .build();
        assert_eq!(p.initial.len(), 3);
        assert_eq!(p.goals.len(), 1);
        assert!(p.activity("make-c").is_some());
        assert!(p.activity("nope").is_none());
    }

    #[test]
    fn without_activities_filters_t() {
        let p = PlanningProblem::builder()
            .activity(ActivitySpec::new("a", Vec::<String>::new(), ["X"]))
            .activity(ActivitySpec::new("b", Vec::<String>::new(), ["Y"]))
            .build();
        let filtered = p.without_activities(["a"]);
        assert_eq!(filtered.activities.len(), 1);
        assert_eq!(filtered.activities[0].name, "b");
        // Original untouched.
        assert_eq!(p.activities.len(), 2);
    }

    #[test]
    fn activity_cost_builder() {
        let a = ActivitySpec::new("x", ["I"], ["O"]).with_cost(12.5);
        assert_eq!(a.cost, 12.5);
        assert_eq!(ActivitySpec::new("y", ["I"], ["O"]).cost, 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let p = PlanningProblem::builder()
            .initial(["A"])
            .goal("B", 2)
            .activity(ActivitySpec::new("t", ["A"], ["B"]))
            .build();
        let json = serde_json::to_string(&p).unwrap();
        let back: PlanningProblem = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
