//! Content-addressed plan identity.
//!
//! A GP run is a *pure function* of its inputs: the planner seeds a
//! `ChaCha8Rng` from `GpConfig::seed`, and selection, crossover and
//! mutation all draw from that single stream while fitness evaluation is
//! side-effect free — so `(GpConfig, PlanningProblem)` fully determines
//! the resulting plan, byte for byte, at any thread count.  That purity
//! is what makes plan caching sound: two planning requests with equal
//! [`PlanKey`]s would run the identical search and produce the identical
//! tree, so the second run can be skipped entirely.
//!
//! The key is a stable 128-bit FNV-1a hash over a canonical rendering of
//! the inputs.  Performance-only knobs (`threads`, `memoize_fitness`)
//! are normalized out before hashing — they cannot change the result,
//! and folding them in would only split otherwise-identical requests
//! across distinct cache entries.

use crate::genetic::GpConfig;
use crate::problem::PlanningProblem;
use gridflow_plan::PlanNode;
use std::fmt;

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A stable 128-bit FNV-1a hasher.
///
/// Unlike `std::hash::Hasher` implementations, the digest depends only
/// on the bytes fed in — never on process randomness, pointer values, or
/// platform word size — so digests are reproducible across runs and
/// machines and are safe to persist or put in trace events.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u128,
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Feed raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ u128::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    /// The current 128-bit digest.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl fmt::Write for StableHasher {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.write_bytes(s.as_bytes());
        Ok(())
    }
}

/// Stable 128-bit content hash of any `Debug`-renderable value.
///
/// The derived `Debug` rendering is a canonical encoding for the plain
/// data types hashed here: field order is fixed by the declaration and
/// `f64` formats as its shortest exact round-trip representation.
pub fn stable_hash_debug<T: fmt::Debug>(value: &T) -> u128 {
    use fmt::Write as _;
    let mut hasher = StableHasher::new();
    write!(hasher, "{value:?}").expect("StableHasher never fails");
    hasher.finish()
}

/// Stable content hash of a plan tree.
///
/// Used to memoize fitness within a GP run (identical trees recur
/// heavily across generations under selection and elitism) and usable by
/// any layer that wants to content-address plans.
pub fn plan_tree_hash(tree: &PlanNode) -> u128 {
    stable_hash_debug(tree)
}

/// Content-addressed identity of a planning request.
///
/// Two requests with equal keys are guaranteed (by GP determinism — see
/// the module docs) to produce byte-identical plans, so a plan cache may
/// serve one request's result to the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlanKey(u128);

impl PlanKey {
    /// Compute the key for a planning request.
    ///
    /// `problem` must be the *post-exclusion* problem actually handed to
    /// the GP (it embeds the goal condition, the initial/produced data
    /// multiset, and the world's offering catalog — the world fingerprint
    /// as far as planning can observe it).  `excluded` is folded in
    /// explicitly as well so the exclusion set is part of the identity
    /// even for services the current catalog no longer offers.
    pub fn compute(config: &GpConfig, problem: &PlanningProblem, excluded: &[String]) -> PlanKey {
        use fmt::Write as _;
        // Normalize performance-only knobs: they do not affect the plan.
        let mut canonical = *config;
        canonical.threads = 0;
        canonical.memoize_fitness = false;
        let mut hasher = StableHasher::new();
        write!(
            hasher,
            "gp-config:{canonical:?};problem:{problem:?};excluded:{excluded:?}"
        )
        .expect("StableHasher never fails");
        PlanKey(hasher.finish())
    }

    /// The key as a raw 128-bit value.
    pub fn as_u128(&self) -> u128 {
        self.0
    }

    /// Lowercase 32-hex-digit rendering (the form used in trace events).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for PlanKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ActivitySpec;

    fn problem() -> PlanningProblem {
        PlanningProblem::builder()
            .initial(["Raw"])
            .goal("Final", 1)
            .activity(ActivitySpec::new("step1", ["Raw"], ["Mid"]))
            .activity(ActivitySpec::new("step2", ["Mid"], ["Final"]))
            .build()
    }

    #[test]
    fn fnv_vector_matches_reference() {
        // FNV-1a 128 of the empty input is the offset basis.
        assert_eq!(StableHasher::new().finish(), FNV_OFFSET);
        // And of "a" (reference vector from the FNV specification).
        let mut h = StableHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xd228_cb69_6f1a_8caf_7891_2b70_4e4a_8964);
    }

    #[test]
    fn equal_inputs_equal_keys() {
        let cfg = GpConfig::default();
        let k1 = PlanKey::compute(&cfg, &problem(), &[]);
        let k2 = PlanKey::compute(&cfg, &problem(), &[]);
        assert_eq!(k1, k2);
        assert_eq!(k1.hex(), k2.hex());
        assert_eq!(k1.hex().len(), 32);
    }

    #[test]
    fn semantic_changes_change_the_key() {
        let cfg = GpConfig::default();
        let base = PlanKey::compute(&cfg, &problem(), &[]);
        let other_seed = GpConfig {
            seed: 43,
            ..GpConfig::default()
        };
        assert_ne!(PlanKey::compute(&other_seed, &problem(), &[]), base);
        let excluded = ["step2".to_string()];
        assert_ne!(
            PlanKey::compute(&cfg, &problem().without_activities(["step2"]), &excluded),
            base
        );
        let mut richer = problem();
        richer.initial.push("Raw".into());
        assert_ne!(PlanKey::compute(&cfg, &richer, &[]), base);
    }

    #[test]
    fn performance_knobs_are_normalized_out() {
        let base = PlanKey::compute(&GpConfig::default(), &problem(), &[]);
        for threads in [1usize, 2, 8] {
            for memoize_fitness in [false, true] {
                let cfg = GpConfig {
                    threads,
                    memoize_fitness,
                    ..GpConfig::default()
                };
                assert_eq!(PlanKey::compute(&cfg, &problem(), &[]), base);
            }
        }
    }

    #[test]
    fn tree_hash_distinguishes_structure() {
        let a = PlanNode::Sequential(vec![
            PlanNode::Terminal("x".into()),
            PlanNode::Terminal("y".into()),
        ]);
        let b = PlanNode::Concurrent(vec![
            PlanNode::Terminal("x".into()),
            PlanNode::Terminal("y".into()),
        ]);
        assert_ne!(plan_tree_hash(&a), plan_tree_hash(&b));
        assert_eq!(plan_tree_hash(&a), plan_tree_hash(&a.clone()));
    }
}
