//! The system state tracked during plan simulation.
//!
//! "S_init … include\[s\] all the initial data provided by an end user and
//! their specifications" (§3.2).  For planning purposes a data item is
//! characterized by its *classification* (the property every service
//! signature C1–C8 of Fig. 13 constrains), so the state is a multiset of
//! classifications: how many distinct data items of each kind exist.

use crate::problem::{ActivitySpec, GoalSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A multiset of data classifications.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct PlanningState {
    counts: BTreeMap<String, usize>,
}

impl PlanningState {
    /// The empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of classifications (duplicates accumulate).
    pub fn from_classifications<I, S>(items: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut state = PlanningState::new();
        for c in items {
            state.add(c);
        }
        state
    }

    /// Add one data item of the given classification.
    pub fn add(&mut self, classification: impl Into<String>) {
        *self.counts.entry(classification.into()).or_insert(0) += 1;
    }

    /// Number of items with this classification.
    pub fn count(&self, classification: &str) -> usize {
        self.counts.get(classification).copied().unwrap_or(0)
    }

    /// Total number of items.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Distinct classifications present, in order.
    pub fn classifications(&self) -> impl Iterator<Item = (&str, usize)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Does the state provide every input of `activity`?  Inputs form a
    /// multiset: an activity listing `3D Model` twice needs two items.
    pub fn satisfies_inputs(&self, activity: &ActivitySpec) -> bool {
        let mut required: BTreeMap<&str, usize> = BTreeMap::new();
        for input in &activity.inputs {
            *required.entry(input.as_str()).or_insert(0) += 1;
        }
        required.iter().all(|(c, &n)| self.count(c) >= n)
    }

    /// Apply the outputs of `activity` (data is produced, never consumed —
    /// the paper's activities add to and modify the data pool).
    pub fn apply_outputs(&mut self, activity: &ActivitySpec) {
        for output in &activity.outputs {
            self.add(output.clone());
        }
    }

    /// Does the state satisfy a goal specification?
    pub fn satisfies_goal(&self, goal: &GoalSpec) -> bool {
        self.count(&goal.classification) >= goal.min_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ActivitySpec;

    #[test]
    fn multiset_counting() {
        let s = PlanningState::from_classifications(["A", "A", "B"]);
        assert_eq!(s.count("A"), 2);
        assert_eq!(s.count("B"), 1);
        assert_eq!(s.count("C"), 0);
        assert_eq!(s.total(), 3);
        assert_eq!(s.classifications().count(), 2);
    }

    #[test]
    fn inputs_respect_multiplicity() {
        let psf = ActivitySpec::new(
            "PSF",
            ["PSF-Parameter", "3D Model", "3D Model"],
            ["Resolution File"],
        );
        let mut s = PlanningState::from_classifications(["PSF-Parameter", "3D Model"]);
        assert!(
            !s.satisfies_inputs(&psf),
            "one 3D Model must not satisfy a two-model input"
        );
        s.add("3D Model");
        assert!(s.satisfies_inputs(&psf));
    }

    #[test]
    fn outputs_accumulate() {
        let a = ActivitySpec::new("P3DR", Vec::<String>::new(), ["3D Model"]);
        let mut s = PlanningState::new();
        s.apply_outputs(&a);
        s.apply_outputs(&a);
        assert_eq!(s.count("3D Model"), 2);
    }

    #[test]
    fn goal_satisfaction() {
        let s = PlanningState::from_classifications(["Resolution File"]);
        assert!(s.satisfies_goal(&GoalSpec {
            classification: "Resolution File".into(),
            min_count: 1
        }));
        assert!(!s.satisfies_goal(&GoalSpec {
            classification: "Resolution File".into(),
            min_count: 2
        }));
        assert!(!s.satisfies_goal(&GoalSpec {
            classification: "3D Model".into(),
            min_count: 1
        }));
    }

    #[test]
    fn no_inputs_always_satisfied() {
        let a = ActivitySpec::new("gen", Vec::<String>::new(), ["X"]);
        assert!(PlanningState::new().satisfies_inputs(&a));
    }
}
