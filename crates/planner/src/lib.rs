//! # gridflow-planner
//!
//! The Genetic-Programming-based planner of §3 of the paper.
//!
//! A planning problem is the 3-tuple `P = {S_init, G, T}` (§3.2): an
//! initial state (the data the end user provides, described by their
//! specifications), a goal specification (the data expected from the
//! computation), and the complete set of end-user activities available in
//! the grid.  The planner evolves *plan trees* (`gridflow-plan`) under a
//! size cap `S_max` with subtree crossover, subtree-replacement mutation,
//! and tournament selection, scoring each candidate with the three-part
//! fitness of §3.4.4:
//!
//! * `f_v` — plan validity: the fraction of executed activities whose
//!   preconditions held when they ran, measured by simulating the plan
//!   (enumerating each possible flow through selective nodes);
//! * `f_g` — goal fitness: the fraction of goal specifications the final
//!   state satisfies, averaged over the enumerated flows;
//! * `f_r` — representation efficiency: `1 − size/S_max`;
//!
//! combined as `f = w_v·f_v + w_g·f_g + w_r·f_r` (Eq. 4).
//!
//! Re-planning (§3.3) is planning with a set of *excluded* activities —
//! those observed to be non-executable in the runtime environment.
//!
//! ```
//! use gridflow_planner::prelude::*;
//!
//! let problem = PlanningProblem::builder()
//!     .initial(["Raw"])
//!     .goal("Cooked", 1)
//!     .activity(ActivitySpec::new("Cook", ["Raw"], ["Cooked"]))
//!     .build();
//! let config = GpConfig { population_size: 50, generations: 10, seed: 7, ..GpConfig::default() };
//! let result = GpPlanner::new(config, problem).run();
//! assert!(result.best_fitness.goal >= 1.0);
//! ```

#![warn(missing_docs)]

pub mod fitness;
pub mod genetic;
pub mod key;
pub mod problem;
pub mod replan;
pub mod simulate;
pub mod state;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::fitness::{Fitness, FitnessWeights};
    pub use crate::genetic::{GenerationStats, GpConfig, GpPlanner, GpResult};
    pub use crate::key::{plan_tree_hash, PlanKey, StableHasher};
    pub use crate::problem::{ActivitySpec, GoalSpec, PlanningProblem};
    pub use crate::replan::{replan, ReplanRequest};
    pub use crate::simulate::{simulate, SimOutcome};
    pub use crate::state::PlanningState;
}

pub use fitness::{evaluate, Fitness, FitnessWeights};
pub use genetic::{GpConfig, GpPlanner, GpResult};
pub use key::{plan_tree_hash, PlanKey, StableHasher};
pub use problem::{ActivitySpec, GoalSpec, PlanningProblem};
pub use state::PlanningState;
