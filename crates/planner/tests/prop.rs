//! Property-based tests for the GP planner core.

use gridflow_planner::genetic::{crossover, mutate, random_tree};
use gridflow_planner::prelude::*;
use gridflow_planner::{evaluate, FitnessWeights};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn sample_problem() -> PlanningProblem {
    PlanningProblem::builder()
        .initial(["Raw", "Raw", "Param"])
        .goal("Final", 1)
        .goal("Aux", 1)
        .activity(ActivitySpec::new("prep", ["Raw"], ["Mid"]))
        .activity(ActivitySpec::new("finish", ["Mid", "Param"], ["Final"]))
        .activity(ActivitySpec::new("side", ["Raw"], ["Aux"]))
        .build()
}

fn names(problem: &PlanningProblem) -> Vec<String> {
    problem.activities.iter().map(|a| a.name.clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fitness components are always within [0, 1], and overall fitness
    /// respects the weighted combination.
    #[test]
    fn fitness_bounds(seed in any::<u64>(), size in 1usize..40) {
        let problem = sample_problem();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let tree = random_tree(&mut rng, size, &names(&problem));
        let w = FitnessWeights::default();
        let f = evaluate(&tree, &problem, 40, w, 64);
        prop_assert!((0.0..=1.0).contains(&f.validity), "{f:?}");
        prop_assert!((0.0..=1.0).contains(&f.goal), "{f:?}");
        prop_assert!((0.0..=1.0).contains(&f.representation), "{f:?}");
        let combined = w.validity * f.validity + w.goal * f.goal
            + w.representation * f.representation;
        prop_assert!((f.overall - combined).abs() < 1e-12);
        prop_assert_eq!(f.size, tree.size());
    }

    /// Simulation is a pure function of (tree, problem).
    #[test]
    fn simulation_is_deterministic(seed in any::<u64>(), size in 1usize..30) {
        let problem = sample_problem();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let tree = random_tree(&mut rng, size, &names(&problem));
        let a = simulate(&tree, &problem);
        let b = simulate(&tree, &problem);
        prop_assert_eq!(a, b);
    }

    /// Crossover conserves node counts and never exceeds S_max.
    #[test]
    fn crossover_invariants(seed in any::<u64>(), sa in 1usize..25, sb in 1usize..25) {
        let problem = sample_problem();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = random_tree(&mut rng, sa, &names(&problem));
        let b = random_tree(&mut rng, sb, &names(&problem));
        if let Some((ca, cb)) = crossover(&a, &b, &mut rng, 30) {
            prop_assert_eq!(ca.size() + cb.size(), sa + sb);
            prop_assert!(ca.size() <= 30 && cb.size() <= 30);
            prop_assert!(ca.is_gp_valid() && cb.is_gp_valid());
        }
    }

    /// Mutation keeps trees GP-valid and within S_max at any rate.
    #[test]
    fn mutation_invariants(seed in any::<u64>(), size in 1usize..35, rate in 0.0f64..1.0) {
        let problem = sample_problem();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut tree = random_tree(&mut rng, size, &names(&problem));
        mutate(&mut tree, &mut rng, rate, 35, 10, &names(&problem));
        prop_assert!(tree.size() <= 35);
        prop_assert!(tree.is_gp_valid());
    }

    /// Adding a distractor activity to T never hurts the achievable
    /// fitness of a fixed plan (fitness depends only on used activities).
    #[test]
    fn fitness_invariant_to_unused_activities(seed in any::<u64>(), size in 1usize..20) {
        let problem = sample_problem();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let tree = random_tree(&mut rng, size, &names(&problem));
        let mut bigger = problem.clone();
        bigger.activities.push(ActivitySpec::new("unused", ["Nope"], ["Never"]));
        let f1 = evaluate(&tree, &problem, 40, FitnessWeights::default(), 64);
        let f2 = evaluate(&tree, &bigger, 40, FitnessWeights::default(), 64);
        prop_assert_eq!(f1, f2);
    }

    /// A GP run is reproducible from its seed, and invariant to thread
    /// count and fitness memoization: the same `(seed, problem)` yields
    /// an identical `GpResult` across `threads ∈ {1, 2, 8}` with the
    /// memo on and off.  (Population 64 ≥ the engine's parallel-eval
    /// threshold, so the multi-threaded path genuinely runs.)
    #[test]
    fn gp_run_reproducible(seed in any::<u64>()) {
        let cfg = GpConfig {
            population_size: 64,
            generations: 4,
            seed,
            ..GpConfig::default()
        };
        let reference = GpPlanner::new(cfg, sample_problem()).run();
        let rerun = GpPlanner::new(cfg, sample_problem()).run();
        prop_assert_eq!(&reference, &rerun);
        for threads in [1usize, 2, 8] {
            for memoize_fitness in [true, false] {
                let variant = GpConfig { threads, memoize_fitness, ..cfg };
                let r = GpPlanner::new(variant, sample_problem()).run();
                prop_assert_eq!(&reference.best, &r.best);
                prop_assert_eq!(&reference.best_fitness, &r.best_fitness);
                prop_assert_eq!(&reference.best_ever, &r.best_ever);
                prop_assert_eq!(&reference.history, &r.history);
                prop_assert_eq!(reference.evaluations, r.evaluations);
                if memoize_fitness {
                    // Memo hits are themselves deterministic: the tree
                    // sequence is fixed by the seed, not the thread count.
                    prop_assert_eq!(reference.memo_hits, r.memo_hits);
                } else {
                    prop_assert_eq!(r.memo_hits, 0);
                }
            }
        }
    }
}
