//! `gridflow-store`: the durable half of the determinism bargain.
//!
//! The engine's merged trace is already a pure function of `(seed,
//! workload, case count)` — this crate makes that stream *survive the
//! process*.  A [`Store`] is an append-only log of the exact
//! [`TraceRecord`]s the engine journal emits, interleaved with periodic
//! [`SnapshotRecord`]s wrapping serialized scheduler + fiber + recovery
//! state.  Recovery loads the latest valid snapshot and deterministically
//! re-executes the suffix; because re-execution regenerates the same
//! events, the store can *verify* the overlap byte-for-byte instead of
//! trusting it ([`Store::append`] on an already-stored sequence number
//! checks equality and reports divergence).
//!
//! Two backends ship:
//!
//! * [`MemStore`] — the in-memory reference; byte-identical semantics,
//!   no I/O.  The legacy default is no store at all: engine behavior is
//!   unchanged unless a store is wired in.
//! * [`FileStore`] — segmented, length-prefixed, CRC-checked files with
//!   torn-tail truncation on open (see [`record`] for the layout).

#![warn(missing_docs)]

mod file;
mod hash;
mod mem;
pub mod record;

pub use file::{FileStore, OpenReport, DEFAULT_RECORDS_PER_SEGMENT};
pub use hash::{crc32, fnv1a64};
pub use mem::MemStore;

use gridflow_telemetry::TraceRecord;

/// Schema version this build writes into event records.
pub const EVENT_SCHEMA_VERSION: u8 = 1;
/// Newest snapshot schema version this build can recover from.
pub const SNAPSHOT_SCHEMA_VERSION: u8 = 1;

/// Everything that can go wrong inside a store.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(String),
    /// Stored bytes are internally inconsistent (bad hash, non-monotone
    /// snapshot, events before the log's base).
    Corrupt(String),
    /// A replayed record differs from the stored record at the same
    /// sequence number — the recovery re-execution diverged from the
    /// original run, which means determinism itself is broken.
    ReplayDivergence {
        /// Sequence number at which the replay and the store disagree.
        seq: u64,
    },
    /// Events were appended out of order, leaving a hole in the log.
    SequenceGap {
        /// The sequence number the log expected next.
        expected: u64,
        /// The sequence number actually offered.
        found: u64,
    },
    /// A snapshot was written by a newer build than this reader
    /// supports — the durable mirror of
    /// `CheckpointError::UnsupportedCheckpoint`.
    UnsupportedSchema {
        /// Schema version found in the record.
        found: u8,
        /// Newest schema version this build supports.
        supported: u8,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Corrupt(why) => write!(f, "store corrupt: {why}"),
            StoreError::ReplayDivergence { seq } => {
                write!(f, "replay diverged from stored record at seq {seq}")
            }
            StoreError::SequenceGap { expected, found } => {
                write!(f, "event sequence gap: expected {expected}, found {found}")
            }
            StoreError::UnsupportedSchema { found, supported } => write!(
                f,
                "snapshot schema {found} is newer than supported {supported}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// Result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// A snapshot of engine state at a tick boundary, as stored in the log.
///
/// The `state` payload is opaque to the store (the engine serializes
/// its own `EngineSnapshot` into it); the surrounding fields are what
/// recovery needs *before* deserializing: where to reseed the journal
/// (`journal_seq`), the virtual clock reading, and a content hash
/// guarding the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotRecord {
    /// Snapshot schema version (see [`SNAPSHOT_SCHEMA_VERSION`]).
    pub schema: u8,
    /// First tick the restored engine will execute.
    pub next_tick: u64,
    /// Journal sequence number the restored trace log resumes at; all
    /// stored events with `seq >= journal_seq` are the replay suffix.
    pub journal_seq: u64,
    /// Virtual clock ticks at capture time.
    pub clock_ticks: u64,
    /// Virtual clock seconds at capture time.
    pub clock_s: f64,
    /// FNV-1a/64 content hash over `state`.
    pub state_hash: u64,
    /// Opaque serialized engine state.
    pub state: Vec<u8>,
}

impl SnapshotRecord {
    /// A current-schema snapshot wrapping `state`, with its content
    /// hash computed.
    pub fn new(
        next_tick: u64,
        journal_seq: u64,
        clock_ticks: u64,
        clock_s: f64,
        state: Vec<u8>,
    ) -> Self {
        let state_hash = fnv1a64(&state);
        SnapshotRecord {
            schema: SNAPSHOT_SCHEMA_VERSION,
            next_tick,
            journal_seq,
            clock_ticks,
            clock_s,
            state_hash,
            state,
        }
    }

    /// Integrity check: does the stored content hash match the payload?
    pub fn verify_hash(&self) -> StoreResult<()> {
        if fnv1a64(&self.state) != self.state_hash {
            return Err(StoreError::Corrupt(format!(
                "snapshot at tick {} fails its content hash",
                self.next_tick
            )));
        }
        Ok(())
    }

    /// Recovery-time validation, mirroring `EnactmentCheckpoint::validate`:
    /// refuse snapshots from a newer schema, and refuse payloads that
    /// fail their content hash.
    pub fn validate(&self) -> StoreResult<()> {
        if self.schema > SNAPSHOT_SCHEMA_VERSION {
            return Err(StoreError::UnsupportedSchema {
                found: self.schema,
                supported: SNAPSHOT_SCHEMA_VERSION,
            });
        }
        self.verify_hash()
    }
}

/// The storage surface the engine writes through and recovery reads
/// from.
///
/// Appends are *verified*: re-appending a sequence number the store
/// already holds checks byte equality against the stored record (and
/// errors with [`StoreError::ReplayDivergence`] on mismatch) instead of
/// duplicating it.  That property is what lets a recovering engine
/// simply re-run with a reseeded journal — the overlap window between
/// the restored snapshot and the crash point is re-proven, not skipped.
pub trait Store: Send {
    /// Append `events` in order.  Sequence numbers must continue the
    /// log (no gaps); already-stored numbers are verified, not
    /// re-stored.
    fn append(&mut self, events: &[TraceRecord]) -> StoreResult<()>;

    /// Append a snapshot record.  Re-appending a snapshot the store
    /// already holds (same `journal_seq` and `next_tick`) verifies
    /// payload equality instead of duplicating it.
    fn snapshot(&mut self, snap: SnapshotRecord) -> StoreResult<()>;

    /// All stored events with `seq >= seq`, in order.
    fn replay_from(&self, seq: u64) -> StoreResult<Vec<TraceRecord>>;

    /// The most recent stored snapshot, validated (schema + content
    /// hash), or `None` for a snapshot-free log.
    fn latest_snapshot(&self) -> StoreResult<Option<SnapshotRecord>>;

    /// The sequence number the log expects next (0 for an empty log).
    fn next_seq(&self) -> u64;

    /// Number of stored snapshots.
    fn snapshot_count(&self) -> usize;
}

/// Serialize stored events as JSON Lines, byte-identical to
/// `TraceLog::to_jsonl` over the same records — the comparison form for
/// crash/replay equality proofs.
pub fn merged_jsonl(events: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in events {
        out.push_str(&serde_json::to_string(r).expect("trace records serialize"));
        out.push('\n');
    }
    out
}

/// The backend-independent log state: ordered events, ordered
/// snapshots, and the verified-append rules.  Both backends delegate
/// their semantics here; [`FileStore`] additionally persists what this
/// core accepts.
#[derive(Debug, Default)]
pub(crate) struct JournalCore {
    events: Vec<TraceRecord>,
    snapshots: Vec<SnapshotRecord>,
}

/// What a verified append decided about one record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Accepted {
    /// New record — backends must persist it.
    Stored,
    /// Already stored and byte-identical — nothing to persist.
    Duplicate,
}

impl JournalCore {
    /// Rebuild a core from records parsed off a backend, trusting them
    /// as the stored truth.
    pub(crate) fn from_parts(events: Vec<TraceRecord>, snapshots: Vec<SnapshotRecord>) -> Self {
        JournalCore { events, snapshots }
    }

    pub(crate) fn next_seq(&self) -> u64 {
        match (self.events.first(), self.events.last()) {
            (Some(_), Some(last)) => last.seq + 1,
            _ => 0,
        }
    }

    pub(crate) fn snapshot_count(&self) -> usize {
        self.snapshots.len()
    }

    pub(crate) fn events_from(&self, seq: u64) -> Vec<TraceRecord> {
        self.events
            .iter()
            .filter(|r| r.seq >= seq)
            .cloned()
            .collect()
    }

    pub(crate) fn latest_snapshot(&self) -> StoreResult<Option<SnapshotRecord>> {
        match self.snapshots.last() {
            None => Ok(None),
            Some(snap) => {
                snap.validate()?;
                Ok(Some(snap.clone()))
            }
        }
    }

    /// Verified event append (see [`Store::append`]).
    pub(crate) fn accept_event(&mut self, record: &TraceRecord) -> StoreResult<Accepted> {
        let Some(first) = self.events.first() else {
            self.events.push(record.clone());
            return Ok(Accepted::Stored);
        };
        let base = first.seq;
        if record.seq < base {
            return Err(StoreError::Corrupt(format!(
                "event seq {} precedes the log base {base}",
                record.seq
            )));
        }
        let next = self.next_seq();
        if record.seq > next {
            return Err(StoreError::SequenceGap {
                expected: next,
                found: record.seq,
            });
        }
        if record.seq == next {
            self.events.push(record.clone());
            return Ok(Accepted::Stored);
        }
        let stored = &self.events[(record.seq - base) as usize];
        let stored_json = serde_json::to_string(stored).expect("trace records serialize");
        let offered_json = serde_json::to_string(record).expect("trace records serialize");
        if stored_json != offered_json {
            return Err(StoreError::ReplayDivergence { seq: record.seq });
        }
        Ok(Accepted::Duplicate)
    }

    /// Verified snapshot append (see [`Store::snapshot`]).
    pub(crate) fn accept_snapshot(&mut self, snap: &SnapshotRecord) -> StoreResult<Accepted> {
        snap.verify_hash()?;
        if let Some(existing) = self
            .snapshots
            .iter()
            .find(|s| s.journal_seq == snap.journal_seq && s.next_tick == snap.next_tick)
        {
            if existing.state == snap.state && existing.schema == snap.schema {
                return Ok(Accepted::Duplicate);
            }
            return Err(StoreError::ReplayDivergence {
                seq: snap.journal_seq,
            });
        }
        if let Some(last) = self.snapshots.last() {
            if snap.journal_seq < last.journal_seq {
                return Err(StoreError::Corrupt(format!(
                    "snapshot journal_seq went backwards: {} after {}",
                    snap.journal_seq, last.journal_seq
                )));
            }
        }
        self.snapshots.push(snap.clone());
        Ok(Accepted::Stored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridflow_telemetry::TraceEvent;

    pub(crate) fn event(seq: u64, tick: u64) -> TraceRecord {
        TraceRecord {
            seq,
            tick,
            at_s: tick as f64,
            source: "engine".into(),
            event: TraceEvent::TickStarted { tick },
        }
    }

    #[test]
    fn verified_append_accepts_identical_overlap_and_rejects_divergence() {
        let mut core = JournalCore::default();
        assert_eq!(core.accept_event(&event(0, 0)).unwrap(), Accepted::Stored);
        assert_eq!(core.accept_event(&event(1, 1)).unwrap(), Accepted::Stored);
        // Identical replay of seq 1 is a verified duplicate.
        assert_eq!(
            core.accept_event(&event(1, 1)).unwrap(),
            Accepted::Duplicate
        );
        // A different record at seq 1 is divergence.
        assert_eq!(
            core.accept_event(&event(1, 7)),
            Err(StoreError::ReplayDivergence { seq: 1 })
        );
        // Skipping seq 2 is a gap.
        assert_eq!(
            core.accept_event(&event(3, 3)),
            Err(StoreError::SequenceGap {
                expected: 2,
                found: 3
            })
        );
        assert_eq!(core.next_seq(), 2);
    }

    #[test]
    fn snapshots_verify_hash_and_schema() {
        let mut core = JournalCore::default();
        let snap = SnapshotRecord::new(4, 10, 4, 1.5, b"abc".to_vec());
        assert_eq!(core.accept_snapshot(&snap).unwrap(), Accepted::Stored);
        assert_eq!(core.accept_snapshot(&snap).unwrap(), Accepted::Duplicate);
        // Same position, different payload: divergence.
        let mut other = SnapshotRecord::new(4, 10, 4, 1.5, b"xyz".to_vec());
        assert_eq!(
            core.accept_snapshot(&other),
            Err(StoreError::ReplayDivergence { seq: 10 })
        );
        // Tampered payload fails its hash.
        other.state_hash = snap.state_hash;
        assert!(matches!(
            core.accept_snapshot(&other),
            Err(StoreError::Corrupt(_))
        ));
        // A future-schema snapshot is readable but refuses recovery.
        let future = SnapshotRecord {
            schema: SNAPSHOT_SCHEMA_VERSION + 1,
            journal_seq: 11,
            ..SnapshotRecord::new(5, 11, 5, 2.0, b"v2".to_vec())
        };
        core.accept_snapshot(&future).unwrap();
        assert_eq!(
            core.latest_snapshot(),
            Err(StoreError::UnsupportedSchema {
                found: SNAPSHOT_SCHEMA_VERSION + 1,
                supported: SNAPSHOT_SCHEMA_VERSION
            })
        );
    }

    #[test]
    fn merged_jsonl_matches_trace_log_serialization() {
        let log = gridflow_telemetry::TraceLog::new();
        use gridflow_telemetry::TraceSink;
        log.emit("engine", TraceEvent::TickStarted { tick: 0 });
        log.emit(
            "engine",
            TraceEvent::CaseCompleted {
                case: "c-0".into(),
                success: true,
            },
        );
        assert_eq!(merged_jsonl(&log.records()), log.to_jsonl());
    }
}
