//! The in-memory backend: verified-append semantics with no I/O.
//!
//! `MemStore` is the reference implementation the file backend must
//! agree with, and the cheapest way to give an engine run a durable
//! journal when the "process" being killed is a simulated one (the
//! store outlives the engine object, not the OS process).

use crate::{JournalCore, SnapshotRecord, Store, StoreResult};
use gridflow_telemetry::TraceRecord;

/// An in-memory [`Store`].
#[derive(Debug, Default)]
pub struct MemStore {
    core: JournalCore,
}

impl MemStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl Store for MemStore {
    fn append(&mut self, events: &[TraceRecord]) -> StoreResult<()> {
        for record in events {
            self.core.accept_event(record)?;
        }
        Ok(())
    }

    fn snapshot(&mut self, snap: SnapshotRecord) -> StoreResult<()> {
        self.core.accept_snapshot(&snap)?;
        Ok(())
    }

    fn replay_from(&self, seq: u64) -> StoreResult<Vec<TraceRecord>> {
        Ok(self.core.events_from(seq))
    }

    fn latest_snapshot(&self) -> StoreResult<Option<SnapshotRecord>> {
        self.core.latest_snapshot()
    }

    fn next_seq(&self) -> u64 {
        self.core.next_seq()
    }

    fn snapshot_count(&self) -> usize {
        self.core.snapshot_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridflow_telemetry::TraceEvent;

    fn event(seq: u64) -> TraceRecord {
        TraceRecord {
            seq,
            tick: seq,
            at_s: 0.0,
            source: "engine".into(),
            event: TraceEvent::TickStarted { tick: seq },
        }
    }

    #[test]
    fn replay_from_slices_the_suffix() {
        let mut store = MemStore::new();
        store.append(&[event(0), event(1), event(2)]).unwrap();
        assert_eq!(store.next_seq(), 3);
        let suffix = store.replay_from(1).unwrap();
        assert_eq!(suffix.len(), 2);
        assert_eq!(suffix[0].seq, 1);
        assert!(store.replay_from(3).unwrap().is_empty());
        assert_eq!(store.replay_from(0).unwrap().len(), 3);
    }

    #[test]
    fn latest_snapshot_returns_the_most_recent() {
        let mut store = MemStore::new();
        store.append(&[event(0), event(1)]).unwrap();
        store
            .snapshot(SnapshotRecord::new(1, 2, 1, 0.0, b"a".to_vec()))
            .unwrap();
        store.append(&[event(2)]).unwrap();
        store
            .snapshot(SnapshotRecord::new(2, 3, 2, 0.0, b"b".to_vec()))
            .unwrap();
        let latest = store.latest_snapshot().unwrap().unwrap();
        assert_eq!((latest.next_tick, latest.journal_seq), (2, 3));
        assert_eq!(store.snapshot_count(), 2);
    }
}
