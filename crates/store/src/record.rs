//! The on-disk record format shared by every file-backed segment.
//!
//! A segment is an 8-byte header followed by length-prefixed,
//! CRC-checked records:
//!
//! ```text
//! segment  := header record*
//! header   := magic("GFS1") version:u16le reserved:u16le
//! record   := len:u32le body crc32(body):u32le
//! body     := kind:u8 schema:u8 payload
//! ```
//!
//! Record kinds:
//!
//! * `kind = 1` (event): `payload` is the JSONL form of one
//!   [`TraceRecord`] — byte-identical to a `TraceLog::to_jsonl` line.
//! * `kind = 2` (snapshot): `payload` is a fixed binary snapshot header
//!   (`next_tick:u64le journal_seq:u64le clock_ticks:u64le
//!   clock_s:f64le state_hash:u64le`) followed by the opaque serialized
//!   engine state.
//!
//! The `schema` byte versions each kind independently; readers refuse
//! snapshot schemas newer than they support (mirroring
//! `EnactmentCheckpoint::validate`) instead of guessing at the payload.
//! Anything that fails the length or CRC check is a torn tail: decoding
//! reports where the valid prefix ends so the store can truncate and
//! carry on.

use crate::hash::crc32;
use crate::{SnapshotRecord, EVENT_SCHEMA_VERSION};
use gridflow_telemetry::TraceRecord;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"GFS1";
/// Version of the segment container format (header + framing).
pub const SEGMENT_FORMAT_VERSION: u16 = 1;
/// Byte length of the segment header.
pub const SEGMENT_HEADER_LEN: usize = 8;
/// Record kind byte for trace events.
pub const KIND_EVENT: u8 = 1;
/// Record kind byte for snapshots.
pub const KIND_SNAPSHOT: u8 = 2;
/// Byte length of the fixed snapshot header inside a snapshot body
/// (five little-endian 64-bit fields after the kind and schema bytes).
const SNAPSHOT_HEADER_LEN: usize = 40;

/// One decoded record: a trace event or a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A deterministic trace event, exactly as the journal emitted it.
    Event(TraceRecord),
    /// A snapshot of engine state at a tick boundary.
    Snapshot(SnapshotRecord),
}

/// The segment header bytes for a fresh segment.
pub fn segment_header() -> [u8; SEGMENT_HEADER_LEN] {
    let mut header = [0u8; SEGMENT_HEADER_LEN];
    header[..4].copy_from_slice(&SEGMENT_MAGIC);
    header[4..6].copy_from_slice(&SEGMENT_FORMAT_VERSION.to_le_bytes());
    header
}

/// Is `bytes` a valid segment header?
pub fn header_is_valid(bytes: &[u8]) -> bool {
    bytes.len() >= SEGMENT_HEADER_LEN
        && bytes[..4] == SEGMENT_MAGIC
        && u16::from_le_bytes([bytes[4], bytes[5]]) == SEGMENT_FORMAT_VERSION
}

fn frame(body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 8);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    let crc = crc32(&body);
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Encode one trace event as a framed record.
pub fn encode_event(record: &TraceRecord) -> Vec<u8> {
    let json = serde_json::to_string(record).expect("trace records serialize");
    let mut body = Vec::with_capacity(json.len() + 2);
    body.push(KIND_EVENT);
    body.push(EVENT_SCHEMA_VERSION);
    body.extend_from_slice(json.as_bytes());
    frame(body)
}

/// Encode one snapshot as a framed record.  The record's `schema` byte
/// is taken from the snapshot itself so version handling round-trips
/// through the log.
pub fn encode_snapshot(snap: &SnapshotRecord) -> Vec<u8> {
    let mut body = Vec::with_capacity(SNAPSHOT_HEADER_LEN + snap.state.len() + 2);
    body.push(KIND_SNAPSHOT);
    body.push(snap.schema);
    body.extend_from_slice(&snap.next_tick.to_le_bytes());
    body.extend_from_slice(&snap.journal_seq.to_le_bytes());
    body.extend_from_slice(&snap.clock_ticks.to_le_bytes());
    body.extend_from_slice(&snap.clock_s.to_bits().to_le_bytes());
    body.extend_from_slice(&snap.state_hash.to_le_bytes());
    body.extend_from_slice(&snap.state);
    frame(body)
}

/// Encode any [`LogRecord`] as a framed record.
pub fn encode_record(record: &LogRecord) -> Vec<u8> {
    match record {
        LogRecord::Event(r) => encode_event(r),
        LogRecord::Snapshot(s) => encode_snapshot(s),
    }
}

/// The result of decoding one record at an offset.
#[derive(Debug)]
pub enum Decoded {
    /// A valid record; the next record starts at `next_offset`.
    Record {
        /// The decoded record.
        record: LogRecord,
        /// Byte offset of the next record in the segment.
        next_offset: usize,
    },
    /// The bytes at this offset are truncated, corrupt, or otherwise
    /// unreadable — the valid prefix of the segment ends here.
    Torn,
    /// Clean end of segment: the offset is exactly the end of the
    /// buffer.
    End,
}

fn u64_at(bytes: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(buf)
}

/// Decode the record starting at `offset` in a segment's byte buffer
/// (the header must already have been skipped).
///
/// Every malformed case — short length prefix, body running past the
/// buffer, CRC mismatch, unknown kind, unparsable payload — decodes as
/// [`Decoded::Torn`]; the caller treats `offset` as the end of the
/// valid prefix.  Future snapshot *schemas* decode fine (refusal
/// happens at recovery time, mirroring `EnactmentCheckpoint::validate`);
/// future *container* formats do not get here because the segment
/// header check rejects them first.
pub fn decode_record(bytes: &[u8], offset: usize) -> Decoded {
    if offset == bytes.len() {
        return Decoded::End;
    }
    if offset + 4 > bytes.len() {
        return Decoded::Torn;
    }
    let len = u32::from_le_bytes([
        bytes[offset],
        bytes[offset + 1],
        bytes[offset + 2],
        bytes[offset + 3],
    ]) as usize;
    let body_start = offset + 4;
    let Some(crc_start) = body_start.checked_add(len) else {
        return Decoded::Torn;
    };
    if crc_start + 4 > bytes.len() {
        return Decoded::Torn;
    }
    let body = &bytes[body_start..crc_start];
    let stored_crc = u32::from_le_bytes([
        bytes[crc_start],
        bytes[crc_start + 1],
        bytes[crc_start + 2],
        bytes[crc_start + 3],
    ]);
    if crc32(body) != stored_crc || body.len() < 2 {
        return Decoded::Torn;
    }
    let next_offset = crc_start + 4;
    let (kind, schema, payload) = (body[0], body[1], &body[2..]);
    match kind {
        KIND_EVENT => {
            if schema > EVENT_SCHEMA_VERSION {
                return Decoded::Torn;
            }
            match serde_json::from_str::<TraceRecord>(
                std::str::from_utf8(payload).unwrap_or_default(),
            ) {
                Ok(record) => Decoded::Record {
                    record: LogRecord::Event(record),
                    next_offset,
                },
                Err(_) => Decoded::Torn,
            }
        }
        KIND_SNAPSHOT => {
            if payload.len() < SNAPSHOT_HEADER_LEN {
                return Decoded::Torn;
            }
            let snap = SnapshotRecord {
                schema,
                next_tick: u64_at(payload, 0),
                journal_seq: u64_at(payload, 8),
                clock_ticks: u64_at(payload, 16),
                clock_s: f64::from_bits(u64_at(payload, 24)),
                state_hash: u64_at(payload, 32),
                state: payload[SNAPSHOT_HEADER_LEN..].to_vec(),
            };
            Decoded::Record {
                record: LogRecord::Snapshot(snap),
                next_offset,
            }
        }
        _ => Decoded::Torn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridflow_telemetry::TraceEvent;

    fn tick_record() -> TraceRecord {
        TraceRecord {
            seq: 0,
            tick: 0,
            at_s: 0.0,
            source: "engine".into(),
            event: TraceEvent::TickStarted { tick: 0 },
        }
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn event_records_round_trip() {
        let record = tick_record();
        let bytes = encode_event(&record);
        match decode_record(&bytes, 0) {
            Decoded::Record {
                record: LogRecord::Event(back),
                next_offset,
            } => {
                assert_eq!(back, record);
                assert_eq!(next_offset, bytes.len());
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn snapshot_records_round_trip_with_their_schema_byte() {
        let snap = SnapshotRecord::new(17, 42, 17, 3.5, b"state-bytes".to_vec());
        let bytes = encode_snapshot(&snap);
        match decode_record(&bytes, 0) {
            Decoded::Record {
                record: LogRecord::Snapshot(back),
                ..
            } => assert_eq!(back, snap),
            other => panic!("unexpected decode: {other:?}"),
        }
        // A future schema byte survives the round trip untouched —
        // refusal is the reader's job, not the codec's.
        let future = SnapshotRecord {
            schema: 9,
            ..snap.clone()
        };
        let bytes = encode_snapshot(&future);
        match decode_record(&bytes, 0) {
            Decoded::Record {
                record: LogRecord::Snapshot(back),
                ..
            } => assert_eq!(back.schema, 9),
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn truncation_and_corruption_decode_as_torn() {
        let bytes = encode_event(&tick_record());
        for cut in 1..bytes.len() {
            assert!(
                matches!(decode_record(&bytes[..cut], 0), Decoded::Torn),
                "cut at {cut}"
            );
        }
        for i in 4..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x01;
            assert!(
                matches!(decode_record(&flipped, 0), Decoded::Torn | Decoded::End),
                "flip at {i}"
            );
        }
    }

    // Golden fixture: the exact bytes of one event record and one
    // snapshot record.  If this test fails, the on-disk format drifted —
    // bump the schema version and add a migration path instead of
    // editing the fixture.
    #[test]
    fn record_layout_is_pinned() {
        let event_hex = hex(&encode_event(&tick_record()));
        // Note the vendored serde derive emits object keys in
        // alphabetical order; that ordering is part of the pinned
        // format.
        let expected_json =
            r#"{"at_s":0.0,"event":{"TickStarted":{"tick":0}},"seq":0,"source":"engine","tick":0}"#;
        let mut body = vec![KIND_EVENT, EVENT_SCHEMA_VERSION];
        body.extend_from_slice(expected_json.as_bytes());
        let mut expected = (body.len() as u32).to_le_bytes().to_vec();
        let crc = crc32(&body);
        expected.extend_from_slice(&body);
        expected.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(event_hex, hex(&expected));

        let snap = SnapshotRecord::new(1, 2, 1, 0.5, b"{}".to_vec());
        assert_eq!(
            hex(&encode_snapshot(&snap)),
            concat!(
                "2c000000",         // body length = 44
                "02",               // kind = snapshot
                "01",               // schema version
                "0100000000000000", // next_tick = 1
                "0200000000000000", // journal_seq = 2
                "0100000000000000", // clock_ticks = 1
                "000000000000e03f", // clock_s = 0.5 (f64 bits)
                "251a90b5074bf408", // fnv1a64("{}")
                "7b7d",             // state = "{}"
                "9d2c5976",         // crc32 of body
            )
        );
    }

    #[test]
    fn segment_header_is_pinned_and_validates() {
        let header = segment_header();
        assert_eq!(hex(&header), "4746533101000000");
        assert!(header_is_valid(&header));
        let mut bad = header;
        bad[0] ^= 0xFF;
        assert!(!header_is_valid(&bad));
        assert!(!header_is_valid(&header[..7]));
    }
}
