//! The file-backed backend: segmented, length-prefixed, CRC-checked
//! logs with torn-tail truncation on open.
//!
//! A store directory holds `seg-NNNNNN.log` files (see [`crate::record`]
//! for the byte layout).  Writes go to the highest-numbered segment
//! until it holds `records_per_segment` records, then a new segment is
//! started.  On open, every segment is scanned front to back; the first
//! record that fails its length or CRC check marks the end of the valid
//! prefix — the segment is truncated there, any later segments are
//! removed, and the damage is *reported* in an [`OpenReport`] rather
//! than panicking.  The crash model is process death: writes reach the
//! OS on every append, and durability across power loss (fsync policy)
//! is explicitly out of scope for this simulation-first store.

use crate::record::{
    decode_record, encode_event, encode_snapshot, header_is_valid, segment_header, Decoded,
    LogRecord, SEGMENT_HEADER_LEN,
};
use crate::{Accepted, JournalCore, SnapshotRecord, Store, StoreError, StoreResult};
use gridflow_telemetry::TraceRecord;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Default record-count capacity of one segment.
pub const DEFAULT_RECORDS_PER_SEGMENT: usize = 1024;

/// What `FileStore::open` found — and what it had to discard.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpenReport {
    /// Number of segment files scanned (including any removed).
    pub segments: usize,
    /// Valid event records recovered.
    pub events: usize,
    /// Valid snapshot records recovered.
    pub snapshots: usize,
    /// Bytes discarded as torn or corrupt (truncated tails plus any
    /// whole segments dropped after the corruption point).
    pub discarded_bytes: u64,
    /// Whole segment files removed (corrupt header, or stranded after
    /// a truncation in an earlier segment).
    pub discarded_segments: usize,
    /// Did open have to truncate or remove anything?
    pub truncated: bool,
}

fn io_err(e: std::io::Error) -> StoreError {
    StoreError::Io(e.to_string())
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:06}.log"))
}

/// A file-backed [`Store`].
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
    records_per_segment: usize,
    core: JournalCore,
    current_index: u64,
    current_records: usize,
}

impl FileStore {
    /// Open (or create) the store in `dir`, recovering whatever valid
    /// prefix the segments hold and truncating any torn tail.  Returns
    /// the store plus a report of what was found and discarded.
    pub fn open(
        dir: impl Into<PathBuf>,
        records_per_segment: usize,
    ) -> StoreResult<(FileStore, OpenReport)> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(io_err)?;
        let mut indices: Vec<u64> = fs::read_dir(&dir)
            .map_err(io_err)?
            .filter_map(|entry| {
                let name = entry.ok()?.file_name().into_string().ok()?;
                let idx = name.strip_prefix("seg-")?.strip_suffix(".log")?;
                idx.parse().ok()
            })
            .collect();
        indices.sort_unstable();

        let mut report = OpenReport {
            segments: indices.len(),
            ..OpenReport::default()
        };
        let mut events = Vec::new();
        let mut snapshots = Vec::new();
        let mut current_index = 0u64;
        let mut current_records = 0usize;
        let mut corrupted = false;

        for (pos, &index) in indices.iter().enumerate() {
            let path = segment_path(&dir, index);
            if corrupted {
                // Everything past the corruption point is stranded:
                // keeping it would leave a hole in the event sequence.
                let len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                report.discarded_bytes += len;
                report.discarded_segments += 1;
                fs::remove_file(&path).map_err(io_err)?;
                continue;
            }
            let bytes = fs::read(&path).map_err(io_err)?;
            if !header_is_valid(&bytes) {
                // The segment cannot be read at all.  Drop it (and
                // everything after it) and let writes restart here.
                report.discarded_bytes += bytes.len() as u64;
                report.discarded_segments += 1;
                fs::remove_file(&path).map_err(io_err)?;
                corrupted = true;
                current_index = index;
                current_records = 0;
                continue;
            }
            let mut offset = SEGMENT_HEADER_LEN;
            let mut records_here = 0usize;
            loop {
                match decode_record(&bytes, offset) {
                    Decoded::End => break,
                    Decoded::Torn => {
                        report.discarded_bytes += (bytes.len() - offset) as u64;
                        let file = fs::OpenOptions::new()
                            .write(true)
                            .open(&path)
                            .map_err(io_err)?;
                        file.set_len(offset as u64).map_err(io_err)?;
                        corrupted = true;
                        break;
                    }
                    Decoded::Record {
                        record,
                        next_offset,
                    } => {
                        match record {
                            LogRecord::Event(r) => {
                                report.events += 1;
                                events.push(r);
                            }
                            LogRecord::Snapshot(s) => {
                                report.snapshots += 1;
                                snapshots.push(s);
                            }
                        }
                        records_here += 1;
                        offset = next_offset;
                    }
                }
            }
            current_index = index;
            current_records = records_here;
            // A full segment that was the last one: further writes
            // must rotate.  Handled uniformly by append's rotation
            // check.
            let _ = pos;
        }
        report.truncated = corrupted;
        let store = FileStore {
            dir,
            records_per_segment: records_per_segment.max(1),
            core: JournalCore::from_parts(events, snapshots),
            current_index,
            current_records,
        };
        Ok((store, report))
    }

    /// Open the store and discard the report (fresh-directory callers).
    pub fn create(dir: impl Into<PathBuf>, records_per_segment: usize) -> StoreResult<FileStore> {
        Ok(Self::open(dir, records_per_segment)?.0)
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn write_record(&mut self, bytes: &[u8]) -> StoreResult<()> {
        if self.current_records >= self.records_per_segment {
            self.current_index += 1;
            self.current_records = 0;
        }
        let path = segment_path(&self.dir, self.current_index);
        let mut file = fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
            .map_err(io_err)?;
        if file.metadata().map_err(io_err)?.len() == 0 {
            file.write_all(&segment_header()).map_err(io_err)?;
        }
        file.write_all(bytes).map_err(io_err)?;
        self.current_records += 1;
        Ok(())
    }
}

impl Store for FileStore {
    fn append(&mut self, events: &[TraceRecord]) -> StoreResult<()> {
        for record in events {
            if self.core.accept_event(record)? == Accepted::Stored {
                let bytes = encode_event(record);
                self.write_record(&bytes)?;
            }
        }
        Ok(())
    }

    fn snapshot(&mut self, snap: SnapshotRecord) -> StoreResult<()> {
        if self.core.accept_snapshot(&snap)? == Accepted::Stored {
            let bytes = encode_snapshot(&snap);
            self.write_record(&bytes)?;
        }
        Ok(())
    }

    fn replay_from(&self, seq: u64) -> StoreResult<Vec<TraceRecord>> {
        Ok(self.core.events_from(seq))
    }

    fn latest_snapshot(&self) -> StoreResult<Option<SnapshotRecord>> {
        self.core.latest_snapshot()
    }

    fn next_seq(&self) -> u64 {
        self.core.next_seq()
    }

    fn snapshot_count(&self) -> usize {
        self.core.snapshot_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridflow_telemetry::TraceEvent;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique scratch directory under the system temp dir, cleaned up
    /// on drop.
    pub(crate) struct TempDir(PathBuf);

    impl TempDir {
        pub(crate) fn new(tag: &str) -> Self {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join(format!("gridflow-store-{tag}-{}-{n}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).expect("create temp dir");
            TempDir(dir)
        }

        pub(crate) fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn event(seq: u64) -> TraceRecord {
        TraceRecord {
            seq,
            tick: seq,
            at_s: seq as f64 * 0.5,
            source: "engine".into(),
            event: TraceEvent::TickStarted { tick: seq },
        }
    }

    fn snap(next_tick: u64, journal_seq: u64) -> SnapshotRecord {
        SnapshotRecord::new(
            next_tick,
            journal_seq,
            next_tick,
            0.0,
            format!("state-{next_tick}").into_bytes(),
        )
    }

    #[test]
    fn reopen_recovers_everything_written() {
        let tmp = TempDir::new("reopen");
        {
            let mut store = FileStore::create(tmp.path(), 3).unwrap();
            store.append(&[event(0), event(1), event(2)]).unwrap();
            store.snapshot(snap(3, 3)).unwrap();
            store.append(&[event(3), event(4)]).unwrap();
        }
        let (store, report) = FileStore::open(tmp.path(), 3).unwrap();
        assert_eq!(report.events, 5);
        assert_eq!(report.snapshots, 1);
        assert!(!report.truncated);
        assert_eq!(store.next_seq(), 5);
        assert_eq!(
            store.replay_from(0).unwrap(),
            vec![event(0), event(1), event(2), event(3), event(4)]
        );
        let latest = store.latest_snapshot().unwrap().unwrap();
        assert_eq!((latest.next_tick, latest.journal_seq), (3, 3));
    }

    #[test]
    fn segments_rotate_by_record_count() {
        let tmp = TempDir::new("rotate");
        {
            let mut store = FileStore::create(tmp.path(), 2).unwrap();
            store
                .append(&[event(0), event(1), event(2), event(3), event(4)])
                .unwrap();
        }
        let mut names: Vec<String> = fs::read_dir(tmp.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert_eq!(
            names,
            ["seg-000000.log", "seg-000001.log", "seg-000002.log"]
        );
        let (store, report) = FileStore::open(tmp.path(), 2).unwrap();
        assert_eq!(report.segments, 3);
        assert_eq!(store.next_seq(), 5);
        // Writes continue in the half-full last segment, then rotate.
        let mut store = store;
        store.append(&[event(5), event(6)]).unwrap();
        assert!(segment_path(tmp.path(), 3).exists());
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let tmp = TempDir::new("torn");
        {
            let mut store = FileStore::create(tmp.path(), 100).unwrap();
            store.append(&[event(0), event(1), event(2)]).unwrap();
        }
        // Tear the last record in half.
        let path = segment_path(tmp.path(), 0);
        let bytes = fs::read(&path).unwrap();
        let torn_len = bytes.len() - 5;
        fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(torn_len as u64)
            .unwrap();
        let (store, report) = FileStore::open(tmp.path(), 100).unwrap();
        assert!(report.truncated);
        assert_eq!(report.events, 2);
        assert!(report.discarded_bytes > 0);
        assert_eq!(store.next_seq(), 2);
        // The truncated store accepts fresh appends of the lost suffix.
        let mut store = store;
        store.append(&[event(2), event(3)]).unwrap();
        let (reread, report) = FileStore::open(tmp.path(), 100).unwrap();
        assert_eq!(reread.next_seq(), 4);
        assert!(!report.truncated);
    }

    #[test]
    fn corruption_in_an_early_segment_drops_later_segments() {
        let tmp = TempDir::new("cascade");
        {
            let mut store = FileStore::create(tmp.path(), 2).unwrap();
            store
                .append(&[event(0), event(1), event(2), event(3), event(4)])
                .unwrap();
        }
        // Flip a byte inside the first segment's second record body.
        let path = segment_path(tmp.path(), 0);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() - 10;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let (store, report) = FileStore::open(tmp.path(), 2).unwrap();
        assert!(report.truncated);
        assert_eq!(report.discarded_segments, 2);
        assert!(report.events < 2);
        assert!(store.next_seq() < 2);
        assert!(!segment_path(tmp.path(), 1).exists());
        assert!(!segment_path(tmp.path(), 2).exists());
    }

    #[test]
    fn corrupt_header_discards_the_segment_but_not_the_log_prefix() {
        let tmp = TempDir::new("header");
        {
            let mut store = FileStore::create(tmp.path(), 2).unwrap();
            store.append(&[event(0), event(1), event(2)]).unwrap();
        }
        let path = segment_path(tmp.path(), 1);
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let (store, report) = FileStore::open(tmp.path(), 2).unwrap();
        assert!(report.truncated);
        assert_eq!(report.events, 2);
        assert_eq!(report.discarded_segments, 1);
        assert_eq!(store.next_seq(), 2);
    }
}
