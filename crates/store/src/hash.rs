//! In-repo integrity hashes: CRC-32 (IEEE) for record framing and
//! FNV-1a/64 for content hashes over snapshot state.
//!
//! Both are implemented here rather than pulled from a crate so the
//! on-disk format depends on nothing but this repository — a store
//! written today must stay readable by every future build.

/// The CRC-32 (IEEE 802.3) lookup table, generated at first use.
fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    0xEDB8_8320 ^ (crc >> 1)
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-32 (IEEE) of `bytes` — the per-record checksum in the segment
/// format.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// FNV-1a 64-bit hash of `bytes` — the content hash stamped over each
/// snapshot's serialized case state.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fnv1a64_matches_known_vectors() {
        // Offset basis for the empty input; published vector for "a".
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn single_bit_flips_change_the_crc() {
        let base = b"deterministic record body".to_vec();
        let crc = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), crc, "flip at byte {i} bit {bit}");
            }
        }
    }
}
