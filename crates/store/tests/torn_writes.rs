//! Torn-write and corruption properties for the file backend.
//!
//! The crash model behind `FileStore` is "the process died mid-write":
//! the tail of the last segment may hold a half-written record, or a
//! sector's worth of garbage.  These proptests truncate and bit-flip
//! the last segment at arbitrary byte offsets and require `open` to
//! (a) never panic, (b) recover a sequence-contiguous *prefix* of the
//! original events, (c) report what it discarded, and (d) be idempotent
//! — a second open of the repaired directory finds nothing left to fix.

use gridflow_store::{FileStore, SnapshotRecord, Store};
use gridflow_telemetry::{TraceEvent, TraceRecord};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("gridflow-torn-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn event(seq: u64) -> TraceRecord {
    TraceRecord {
        seq,
        tick: seq / 2,
        at_s: seq as f64 * 0.25,
        source: "engine".into(),
        event: TraceEvent::TickStarted { tick: seq },
    }
}

const EVENTS: u64 = 40;
const SEG_CAP: usize = 8;
const SNAP_EVERY: u64 = 9;

/// Build a deterministic multi-segment store: 40 events, a snapshot
/// after every 9th, segments of 8 records.
fn build(dir: &Path) -> Vec<TraceRecord> {
    let mut store = FileStore::create(dir, SEG_CAP).expect("create store");
    let originals: Vec<TraceRecord> = (0..EVENTS).map(event).collect();
    for record in &originals {
        store.append(std::slice::from_ref(record)).expect("append");
        if (record.seq + 1) % SNAP_EVERY == 0 {
            store
                .snapshot(SnapshotRecord::new(
                    record.tick + 1,
                    record.seq + 1,
                    record.tick + 1,
                    record.at_s,
                    format!("state-at-{}", record.seq).into_bytes(),
                ))
                .expect("snapshot");
        }
    }
    originals
}

fn last_segment(dir: &Path) -> PathBuf {
    let mut names: Vec<String> = fs::read_dir(dir)
        .expect("read dir")
        .map(|e| e.expect("entry").file_name().into_string().expect("name"))
        .collect();
    names.sort();
    dir.join(names.last().expect("at least one segment").clone())
}

/// Recovered events must be exactly `originals[..n]` for some `n`.
fn assert_prefix(recovered: &[TraceRecord], originals: &[TraceRecord]) {
    assert!(recovered.len() <= originals.len());
    for (r, o) in recovered.iter().zip(originals) {
        assert_eq!(r, o);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn truncation_at_any_offset_recovers_a_reported_prefix(cut_pick in 0usize..100_000) {
        let tmp = TempDir::new();
        let originals = build(&tmp.0);
        let path = last_segment(&tmp.0);
        let len = fs::metadata(&path).expect("metadata").len() as usize;
        let cut = cut_pick % (len + 1);
        fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("open segment")
            .set_len(cut as u64)
            .expect("truncate");

        let (store, report) = FileStore::open(&tmp.0, SEG_CAP).expect("open after tear");
        let recovered = store.replay_from(0).expect("replay");
        assert_prefix(&recovered, &originals);
        // Whatever survives of the snapshot chain is still valid.
        store.latest_snapshot().expect("snapshots stay readable");
        // Anything torn mid-record was reported, not silently dropped.
        if report.truncated {
            prop_assert!(report.discarded_bytes > 0 || report.discarded_segments > 0);
        }
        drop(store);
        // Repair is idempotent: a second open finds a clean log with
        // the same contents.
        let (again, clean) = FileStore::open(&tmp.0, SEG_CAP).expect("reopen");
        prop_assert!(!clean.truncated, "second open still repairing: {clean:?}");
        prop_assert_eq!(again.replay_from(0).expect("replay"), recovered);
    }

    #[test]
    fn bit_flip_at_any_offset_recovers_a_reported_prefix(
        offset_pick in 0usize..100_000,
        bit in 0u8..8,
    ) {
        let tmp = TempDir::new();
        let originals = build(&tmp.0);
        let path = last_segment(&tmp.0);
        let mut bytes = fs::read(&path).expect("read segment");
        let offset = offset_pick % bytes.len();
        bytes[offset] ^= 1 << bit;
        fs::write(&path, &bytes).expect("write corrupted segment");

        let (store, report) = FileStore::open(&tmp.0, SEG_CAP).expect("open after flip");
        let recovered = store.replay_from(0).expect("replay");
        assert_prefix(&recovered, &originals);
        store.latest_snapshot().expect("snapshots stay readable");
        // A flipped bit always damages at least one record (CRC or
        // header), so the open must have discarded something.
        prop_assert!(report.truncated, "flip at {offset} bit {bit} undetected");
        prop_assert!(report.discarded_bytes > 0 || report.discarded_segments > 0);
        drop(store);
        let (again, clean) = FileStore::open(&tmp.0, SEG_CAP).expect("reopen");
        prop_assert!(!clean.truncated, "second open still repairing: {clean:?}");
        prop_assert_eq!(again.replay_from(0).expect("replay"), recovered);
    }

    #[test]
    fn append_after_repair_continues_the_sequence(cut_pick in 0usize..100_000) {
        let tmp = TempDir::new();
        let originals = build(&tmp.0);
        let path = last_segment(&tmp.0);
        let len = fs::metadata(&path).expect("metadata").len() as usize;
        let cut = cut_pick % (len + 1);
        fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("open segment")
            .set_len(cut as u64)
            .expect("truncate");

        let (mut store, _report) = FileStore::open(&tmp.0, SEG_CAP).expect("open after tear");
        let next = store.next_seq();
        // Re-append the lost suffix (what a recovering engine does):
        // the store accepts it seamlessly from its repaired tail.
        let suffix: Vec<TraceRecord> = originals.iter().filter(|r| r.seq >= next).cloned().collect();
        store.append(&suffix).expect("re-append suffix");
        prop_assert_eq!(store.next_seq(), EVENTS);
        drop(store);
        let (reread, report) = FileStore::open(&tmp.0, SEG_CAP).expect("reopen");
        prop_assert!(!report.truncated);
        prop_assert_eq!(reread.replay_from(0).expect("replay"), originals);
    }
}
