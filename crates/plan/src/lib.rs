//! # gridflow-plan
//!
//! Plan trees — the internal representation the paper's GP-based planner
//! evolves (§3.4.1) — and the conversions between plan trees and process
//! descriptions (Figures 4–7 and 11).
//!
//! A plan tree consists of *terminal nodes* (end-user activities, the
//! leaves) and *controller nodes* (internal nodes): **sequential**,
//! **concurrent**, **selective**, and **iterative**.  Controller nodes map
//! to the flow-control activities of the process description: a
//! sequential node to plain arrow sequencing, a concurrent node to a
//! Fork/Join pair, a selective node to a Choice/Merge pair, and an
//! iterative node to a loop (Merge-entry / Choice-exit).
//!
//! The conversions:
//!
//! * [`convert::ast_to_tree`] / [`convert::tree_to_ast`] — between plan
//!   trees and the structured AST of `gridflow-process` (exact round trip
//!   AST→tree→AST; tree→AST→tree is exact on *canonical* trees, see
//!   [`convert::canonicalize`]);
//! * [`convert::tree_to_graph`] / [`convert::graph_to_tree`] — composition
//!   with `gridflow_process::lower` / `recover`, giving the full Figure 10
//!   ⇄ Figure 11 conversion.

#![warn(missing_docs)]

pub mod convert;
pub mod tree;

pub use convert::{ast_to_tree, canonicalize, graph_to_tree, tree_to_ast, tree_to_graph};
pub use tree::PlanNode;
