//! The plan-tree data structure of §3.4.1.

use gridflow_process::Condition;
use serde::{Deserialize, Serialize};

/// A node of a plan tree.
///
/// The paper's GP planner evolves these trees directly; conditions on
/// selective branches and iterative nodes are carried through conversions
/// but are treated abstractly during planning (the fitness simulation
/// enumerates every possible flow instead of evaluating them, §3.4.4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanNode {
    /// A leaf: one end-user activity, referenced by service name.
    Terminal(String),
    /// Children execute left to right; the block completes when the
    /// rightmost child completes.
    Sequential(Vec<PlanNode>),
    /// Children may execute concurrently (or sequentially in any order);
    /// the block completes when *all* children complete.  Corresponds to a
    /// Fork/Join pair.
    Concurrent(Vec<PlanNode>),
    /// Exactly one child executes, selected by the guard conditions.
    /// Corresponds to a Choice/Merge pair.
    Selective(Vec<(Condition, PlanNode)>),
    /// The children execute repeatedly (in order) while `cond` holds after
    /// each pass (do-while, matching the Fig. 10 loop).  Corresponds to a
    /// Merge-entry / Choice-exit loop.
    Iterative {
        /// Continue-looping condition.
        cond: Condition,
        /// Loop body, executed in order each pass.
        body: Vec<PlanNode>,
    },
}

impl PlanNode {
    /// A terminal node.
    pub fn terminal(name: impl Into<String>) -> Self {
        PlanNode::Terminal(name.into())
    }

    /// A selective node whose guards are all `true` (the form GP
    /// initialization produces: "every internal node is instantiated with
    /// a controller node" with no conditions attached yet).
    pub fn selective_unguarded<I: IntoIterator<Item = PlanNode>>(children: I) -> Self {
        PlanNode::Selective(children.into_iter().map(|c| (Condition::True, c)).collect())
    }

    /// Is this a controller (internal) node?
    pub fn is_controller(&self) -> bool {
        !matches!(self, PlanNode::Terminal(_))
    }

    /// The number of nodes in the tree — the paper's plan-tree *size*
    /// (terminal and controller nodes both count; `S_max` bounds this).
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// Maximum depth (a terminal has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children().iter().map(|c| c.depth()).max().unwrap_or(0)
    }

    /// Borrowed children, in order (guards dropped).
    pub fn children(&self) -> Vec<&PlanNode> {
        match self {
            PlanNode::Terminal(_) => Vec::new(),
            PlanNode::Sequential(c) | PlanNode::Concurrent(c) => c.iter().collect(),
            PlanNode::Selective(c) => c.iter().map(|(_, n)| n).collect(),
            PlanNode::Iterative { body, .. } => body.iter().collect(),
        }
    }

    /// Every terminal activity name, in left-to-right order (duplicates
    /// preserved).
    pub fn activities(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_activities(&mut out);
        out
    }

    fn collect_activities<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            PlanNode::Terminal(name) => out.push(name),
            _ => {
                for c in self.children() {
                    c.collect_activities(out);
                }
            }
        }
    }

    /// Number of controller nodes by kind: `(sequential, concurrent,
    /// selective, iterative)`.
    pub fn controller_counts(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        self.count_controllers(&mut counts);
        counts
    }

    fn count_controllers(&self, counts: &mut (usize, usize, usize, usize)) {
        match self {
            PlanNode::Terminal(_) => {}
            PlanNode::Sequential(_) => counts.0 += 1,
            PlanNode::Concurrent(_) => counts.1 += 1,
            PlanNode::Selective(_) => counts.2 += 1,
            PlanNode::Iterative { .. } => counts.3 += 1,
        }
        for c in self.children() {
            c.count_controllers(counts);
        }
    }

    /// GP structural validity (§3.4.1): every controller node "must have
    /// at least one child node".
    pub fn is_gp_valid(&self) -> bool {
        match self {
            PlanNode::Terminal(_) => true,
            _ => {
                let children = self.children();
                !children.is_empty() && children.iter().all(|c| c.is_gp_valid())
            }
        }
    }

    /// Visit every node (preorder), returning the number visited.
    pub fn visit(&self, f: &mut impl FnMut(&PlanNode)) -> usize {
        f(self);
        1 + self.children().iter().map(|c| c.visit(f)).sum::<usize>()
    }

    /// Borrow the node at preorder index `idx` (0 = this node).
    pub fn node_at(&self, idx: usize) -> Option<&PlanNode> {
        fn go<'a>(node: &'a PlanNode, idx: &mut usize) -> Option<&'a PlanNode> {
            if *idx == 0 {
                return Some(node);
            }
            *idx -= 1;
            for c in node.children() {
                if let Some(found) = go(c, idx) {
                    return Some(found);
                }
            }
            None
        }
        let mut idx = idx;
        go(self, &mut idx)
    }

    /// Replace the node at preorder index `idx` with `replacement`,
    /// returning the subtree that was there.  Returns `None` (tree
    /// unchanged) if `idx` is out of range.
    pub fn replace_at(&mut self, idx: usize, replacement: PlanNode) -> Option<PlanNode> {
        fn go(
            node: &mut PlanNode,
            idx: &mut usize,
            replacement: &mut Option<PlanNode>,
        ) -> Option<PlanNode> {
            if *idx == 0 {
                let new = replacement.take().expect("single use");
                return Some(std::mem::replace(node, new));
            }
            *idx -= 1;
            let children: Vec<&mut PlanNode> = match node {
                PlanNode::Terminal(_) => Vec::new(),
                PlanNode::Sequential(c) | PlanNode::Concurrent(c) => c.iter_mut().collect(),
                PlanNode::Selective(c) => c.iter_mut().map(|(_, n)| n).collect(),
                PlanNode::Iterative { body, .. } => body.iter_mut().collect(),
            };
            for c in children {
                if let Some(old) = go(c, idx, replacement) {
                    return Some(old);
                }
            }
            None
        }
        let mut slot = Some(replacement);
        let mut idx = idx;
        go(self, &mut idx, &mut slot)
    }

    /// Replace every iterative node whose condition is the abstract
    /// `true` (as produced by GP initialization, where "conditions are
    /// treated abstractly") by a sequential node over its body — i.e. a
    /// single unrolling, which is exactly the semantics the planner's
    /// fitness simulation gave it.  Loops with concrete conditions (from
    /// a case description) are preserved.  Used when exporting a GP
    /// winner for enactment, where `ITERATIVE { COND { true } }` would
    /// never terminate.
    pub fn unroll_abstract_iteratives(&self) -> PlanNode {
        match self {
            PlanNode::Terminal(name) => PlanNode::Terminal(name.clone()),
            PlanNode::Sequential(c) => {
                PlanNode::Sequential(c.iter().map(Self::unroll_abstract_iteratives).collect())
            }
            PlanNode::Concurrent(c) => {
                PlanNode::Concurrent(c.iter().map(Self::unroll_abstract_iteratives).collect())
            }
            PlanNode::Selective(c) => PlanNode::Selective(
                c.iter()
                    .map(|(g, n)| (g.clone(), n.unroll_abstract_iteratives()))
                    .collect(),
            ),
            PlanNode::Iterative { cond, body } => {
                let body: Vec<PlanNode> =
                    body.iter().map(Self::unroll_abstract_iteratives).collect();
                if *cond == Condition::True {
                    PlanNode::Sequential(body)
                } else {
                    PlanNode::Iterative {
                        cond: cond.clone(),
                        body,
                    }
                }
            }
        }
    }

    /// Semantic simplification, mirroring the paper's representation-
    /// efficiency pressure (`f_r`): drops empty controllers, unwraps
    /// single-child concurrent/selective/sequential nodes, and flattens
    /// sequential-under-sequential.  Returns `None` if the node simplifies
    /// away entirely.
    pub fn simplify(&self) -> Option<PlanNode> {
        match self {
            PlanNode::Terminal(name) => Some(PlanNode::Terminal(name.clone())),
            PlanNode::Sequential(children) => {
                let mut out = Vec::new();
                for c in children {
                    match c.simplify() {
                        Some(PlanNode::Sequential(inner)) => out.extend(inner),
                        Some(node) => out.push(node),
                        None => {}
                    }
                }
                match out.len() {
                    0 => None,
                    1 => Some(out.pop().expect("len checked")),
                    _ => Some(PlanNode::Sequential(out)),
                }
            }
            PlanNode::Concurrent(children) => {
                let out: Vec<PlanNode> = children.iter().filter_map(|c| c.simplify()).collect();
                match out.len() {
                    0 => None,
                    1 => Some(out.into_iter().next().expect("len checked")),
                    _ => Some(PlanNode::Concurrent(out)),
                }
            }
            PlanNode::Selective(children) => {
                let out: Vec<(Condition, PlanNode)> = children
                    .iter()
                    .filter_map(|(g, c)| c.simplify().map(|n| (g.clone(), n)))
                    .collect();
                match out.len() {
                    0 => None,
                    1 => Some(out.into_iter().next().expect("len checked").1),
                    _ => Some(PlanNode::Selective(out)),
                }
            }
            PlanNode::Iterative { cond, body } => {
                let out: Vec<PlanNode> = body.iter().filter_map(|c| c.simplify()).collect();
                if out.is_empty() {
                    None
                } else {
                    Some(PlanNode::Iterative {
                        cond: cond.clone(),
                        body: out,
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The plan tree of Figure 11 (virus reconstruction).
    pub(crate) fn figure_11() -> PlanNode {
        PlanNode::Sequential(vec![
            PlanNode::terminal("POD"),
            PlanNode::terminal("P3DR"),
            PlanNode::Iterative {
                cond: Condition::True,
                body: vec![
                    PlanNode::terminal("POR"),
                    PlanNode::Concurrent(vec![
                        PlanNode::terminal("P3DR"),
                        PlanNode::terminal("P3DR"),
                        PlanNode::terminal("P3DR"),
                    ]),
                    PlanNode::terminal("PSF"),
                ],
            },
        ])
    }

    #[test]
    fn figure_11_has_ten_nodes() {
        // Sequential + POD + P3DR1 + Iterative + POR + Concurrent
        // + P3DR2 + P3DR3 + P3DR4 + PSF = 10.
        assert_eq!(figure_11().size(), 10);
    }

    #[test]
    fn depth_and_children() {
        let t = figure_11();
        assert_eq!(t.depth(), 4); // Sequential > Iterative > Concurrent > Terminal
        assert_eq!(t.children().len(), 3);
        assert_eq!(PlanNode::terminal("A").depth(), 1);
    }

    #[test]
    fn activities_in_order() {
        assert_eq!(
            figure_11().activities(),
            vec!["POD", "P3DR", "POR", "P3DR", "P3DR", "P3DR", "PSF"]
        );
    }

    #[test]
    fn controller_counts() {
        let (seq, con, sel, ite) = figure_11().controller_counts();
        assert_eq!((seq, con, sel, ite), (1, 1, 0, 1));
    }

    #[test]
    fn gp_validity_requires_children() {
        assert!(figure_11().is_gp_valid());
        assert!(!PlanNode::Sequential(vec![]).is_gp_valid());
        assert!(!PlanNode::Sequential(vec![PlanNode::Concurrent(vec![])]).is_gp_valid());
        assert!(PlanNode::terminal("A").is_gp_valid());
    }

    #[test]
    fn node_at_is_preorder() {
        let t = figure_11();
        assert_eq!(t.node_at(0), Some(&t));
        assert_eq!(t.node_at(1), Some(&PlanNode::terminal("POD")));
        assert_eq!(t.node_at(2), Some(&PlanNode::terminal("P3DR")));
        // 3 = Iterative, 4 = POR, 5 = Concurrent, 6..8 = P3DRs, 9 = PSF.
        assert!(matches!(t.node_at(3), Some(PlanNode::Iterative { .. })));
        assert_eq!(t.node_at(9), Some(&PlanNode::terminal("PSF")));
        assert_eq!(t.node_at(10), None);
    }

    #[test]
    fn replace_at_swaps_subtree() {
        let mut t = figure_11();
        let old = t.replace_at(5, PlanNode::terminal("X")).unwrap();
        assert!(matches!(old, PlanNode::Concurrent(_)));
        assert_eq!(t.size(), 10 - 4 + 1);
        assert!(t.activities().contains(&"X"));
        // Out-of-range replacement leaves the tree unchanged.
        let before = t.clone();
        assert!(t.replace_at(100, PlanNode::terminal("Y")).is_none());
        assert_eq!(t, before);
    }

    #[test]
    fn visit_counts_all_nodes() {
        let t = figure_11();
        let mut n = 0;
        let visited = t.visit(&mut |_| n += 1);
        assert_eq!(visited, 10);
        assert_eq!(n, 10);
    }

    #[test]
    fn simplify_unwraps_and_flattens() {
        // Sequential(Sequential(A, B), Concurrent(C)) →
        // Sequential(A, B, C)
        let t = PlanNode::Sequential(vec![
            PlanNode::Sequential(vec![PlanNode::terminal("A"), PlanNode::terminal("B")]),
            PlanNode::Concurrent(vec![PlanNode::terminal("C")]),
        ]);
        let s = t.simplify().unwrap();
        assert_eq!(
            s,
            PlanNode::Sequential(vec![
                PlanNode::terminal("A"),
                PlanNode::terminal("B"),
                PlanNode::terminal("C"),
            ])
        );
    }

    #[test]
    fn simplify_drops_empty_controllers() {
        assert_eq!(PlanNode::Sequential(vec![]).simplify(), None);
        assert_eq!(
            PlanNode::Concurrent(vec![PlanNode::Sequential(vec![])]).simplify(),
            None
        );
        let t = PlanNode::Selective(vec![(Condition::True, PlanNode::Sequential(vec![]))]);
        assert_eq!(t.simplify(), None);
    }

    #[test]
    fn simplify_preserves_activity_multiset() {
        let t = figure_11();
        let s = t.simplify().unwrap();
        assert_eq!(t.activities(), s.activities());
    }

    #[test]
    fn simplify_keeps_iterative_with_body() {
        let t = PlanNode::Iterative {
            cond: Condition::True,
            body: vec![PlanNode::terminal("A")],
        };
        assert_eq!(t.simplify(), Some(t.clone()));
        let empty = PlanNode::Iterative {
            cond: Condition::True,
            body: vec![PlanNode::Concurrent(vec![])],
        };
        assert_eq!(empty.simplify(), None);
    }

    #[test]
    fn unroll_replaces_true_loops_only() {
        let concrete = Condition::Exists("D10".into());
        let t = PlanNode::Sequential(vec![
            PlanNode::Iterative {
                cond: Condition::True,
                body: vec![PlanNode::terminal("A")],
            },
            PlanNode::Iterative {
                cond: concrete.clone(),
                body: vec![PlanNode::Iterative {
                    cond: Condition::True,
                    body: vec![PlanNode::terminal("B")],
                }],
            },
        ]);
        let u = t.unroll_abstract_iteratives();
        match &u {
            PlanNode::Sequential(children) => {
                assert!(matches!(children[0], PlanNode::Sequential(_)));
                match &children[1] {
                    PlanNode::Iterative { cond, body } => {
                        assert_eq!(*cond, concrete);
                        assert!(matches!(body[0], PlanNode::Sequential(_)));
                    }
                    other => panic!("expected concrete loop preserved, got {other:?}"),
                }
            }
            other => panic!("unexpected shape {other:?}"),
        }
        assert_eq!(u.activities(), t.activities());
    }

    #[test]
    fn selective_unguarded_builds_true_guards() {
        let t = PlanNode::selective_unguarded([PlanNode::terminal("A"), PlanNode::terminal("B")]);
        match t {
            PlanNode::Selective(children) => {
                assert_eq!(children.len(), 2);
                assert!(children.iter().all(|(g, _)| *g == Condition::True));
            }
            other => panic!("expected Selective, got {other:?}"),
        }
    }

    #[test]
    fn serde_round_trip() {
        let t = figure_11();
        let json = serde_json::to_string(&t).unwrap();
        let back: PlanNode = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
