//! Conversions between plan trees, process ASTs, and process graphs
//! (Figures 4–7 and the Figure 10 ⇄ Figure 11 pair).

use crate::tree::PlanNode;
use gridflow_process::error::Result;
use gridflow_process::{lower, recover, ProcessAst, ProcessGraph, Stmt};

/// Convert a process AST to a plan tree.  The root is always a sequential
/// node over the body (matching Fig. 11, whose root is sequential).
pub fn ast_to_tree(ast: &ProcessAst) -> PlanNode {
    PlanNode::Sequential(ast.body.iter().map(stmt_to_node).collect())
}

fn stmt_to_node(stmt: &Stmt) -> PlanNode {
    match stmt {
        Stmt::Activity(name) => PlanNode::Terminal(name.clone()),
        Stmt::Concurrent(branches) => {
            PlanNode::Concurrent(branches.iter().map(|b| stmts_to_node(b)).collect())
        }
        Stmt::Selective(branches) => PlanNode::Selective(
            branches
                .iter()
                .map(|(cond, b)| (cond.clone(), stmts_to_node(b)))
                .collect(),
        ),
        Stmt::Iterative { cond, body } => PlanNode::Iterative {
            cond: cond.clone(),
            body: body.iter().map(stmt_to_node).collect(),
        },
    }
}

/// A branch (statement list) becomes a single node: the lone statement's
/// node if the branch has one statement, otherwise a sequential node.
fn stmts_to_node(stmts: &[Stmt]) -> PlanNode {
    match stmts {
        [single] => stmt_to_node(single),
        many => PlanNode::Sequential(many.iter().map(stmt_to_node).collect()),
    }
}

/// Convert a plan tree to a process AST.
///
/// This is exact for trees produced by [`ast_to_tree`]; for arbitrary
/// trees it is semantics-preserving but may erase redundant sequential
/// nesting (see [`canonicalize`]).
pub fn tree_to_ast(tree: &PlanNode) -> ProcessAst {
    ProcessAst::new(node_to_stmts(tree))
}

fn node_to_stmts(node: &PlanNode) -> Vec<Stmt> {
    match node {
        PlanNode::Terminal(name) => vec![Stmt::Activity(name.clone())],
        PlanNode::Sequential(children) => children.iter().flat_map(node_to_stmts).collect(),
        PlanNode::Concurrent(children) => vec![Stmt::Concurrent(
            children.iter().map(node_to_stmts).collect(),
        )],
        PlanNode::Selective(children) => vec![Stmt::Selective(
            children
                .iter()
                .map(|(cond, c)| (cond.clone(), node_to_stmts(c)))
                .collect(),
        )],
        PlanNode::Iterative { cond, body } => vec![Stmt::Iterative {
            cond: cond.clone(),
            body: body.iter().flat_map(node_to_stmts).collect(),
        }],
    }
}

/// The canonical form of a plan tree: the unique tree that converts to
/// the same process AST.  `canonicalize` is idempotent, and
/// tree→AST→tree equals `canonicalize(tree)`.
pub fn canonicalize(tree: &PlanNode) -> PlanNode {
    ast_to_tree(&tree_to_ast(tree))
}

/// Lower a plan tree all the way to an activity/transition graph (the
/// Figure 11 → Figure 10 direction).
pub fn tree_to_graph(name: impl Into<String>, tree: &PlanNode) -> Result<ProcessGraph> {
    lower::lower(name, &tree_to_ast(tree))
}

/// Recover a plan tree from an activity/transition graph (the Figure 10 →
/// Figure 11 direction).
pub fn graph_to_tree(graph: &ProcessGraph) -> Result<PlanNode> {
    Ok(ast_to_tree(&recover::recover(graph)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridflow_process::condition::{CompareOp, Condition};
    use gridflow_process::parser::parse_process;

    fn figure_10_source() -> &'static str {
        "BEGIN POD; P3DR; \
         ITERATIVE { COND { D10.Value > 8 } } { \
            POR; FORK { { P3DR; }, { P3DR; }, { P3DR; } } JOIN; PSF; \
         }; END"
    }

    #[test]
    fn figure_10_converts_to_figure_11_tree() {
        let ast = parse_process(figure_10_source()).unwrap();
        let tree = ast_to_tree(&ast);
        // Fig. 11: sequential root [POD, P3DR, Iterative[POR, Concurrent
        // [P3DR ×3], PSF]] — 10 nodes.
        assert_eq!(tree.size(), 10);
        let (seq, con, sel, ite) = tree.controller_counts();
        assert_eq!((seq, con, sel, ite), (1, 1, 0, 1));
        assert_eq!(
            tree.activities(),
            vec!["POD", "P3DR", "POR", "P3DR", "P3DR", "P3DR", "PSF"]
        );
    }

    #[test]
    fn ast_tree_round_trip_is_exact() {
        let ast = parse_process(figure_10_source()).unwrap();
        let tree = ast_to_tree(&ast);
        assert_eq!(tree_to_ast(&tree), ast);
    }

    #[test]
    fn sequential_branches_round_trip() {
        // Figure 4: a sequence A;B;C in a branch position becomes a
        // sequential node and converts back.
        let ast = parse_process("BEGIN FORK { { A; B; C; }, { D; } } JOIN; END").unwrap();
        let tree = ast_to_tree(&ast);
        match tree.node_at(1) {
            Some(PlanNode::Concurrent(children)) => {
                assert!(matches!(children[0], PlanNode::Sequential(_)));
                assert!(matches!(children[1], PlanNode::Terminal(_)));
            }
            other => panic!("expected Concurrent, got {other:?}"),
        }
        assert_eq!(tree_to_ast(&tree), ast);
    }

    #[test]
    fn selective_guards_are_preserved() {
        let ast = parse_process(
            "BEGIN CHOICE { COND { D.X = 1 } { A; }, COND { true } { B; } } MERGE; END",
        )
        .unwrap();
        let tree = ast_to_tree(&ast);
        match tree.node_at(1) {
            Some(PlanNode::Selective(children)) => {
                assert_eq!(
                    children[0].0,
                    Condition::compare("D", "X", CompareOp::Eq, 1i64)
                );
                assert_eq!(children[1].0, Condition::True);
            }
            other => panic!("expected Selective, got {other:?}"),
        }
        assert_eq!(tree_to_ast(&tree), ast);
    }

    #[test]
    fn canonicalize_erases_redundant_nesting() {
        // Sequential directly under sequential flattens; the result is
        // stable under further canonicalization.
        let tree = PlanNode::Sequential(vec![PlanNode::Sequential(vec![
            PlanNode::terminal("A"),
            PlanNode::Sequential(vec![PlanNode::terminal("B")]),
        ])]);
        let canon = canonicalize(&tree);
        assert_eq!(
            canon,
            PlanNode::Sequential(vec![PlanNode::terminal("A"), PlanNode::terminal("B")])
        );
        assert_eq!(canonicalize(&canon), canon);
    }

    #[test]
    fn canonicalize_preserves_activities() {
        let tree = PlanNode::Sequential(vec![
            PlanNode::Concurrent(vec![
                PlanNode::Sequential(vec![PlanNode::terminal("A")]),
                PlanNode::terminal("B"),
            ]),
            PlanNode::terminal("C"),
        ]);
        assert_eq!(canonicalize(&tree).activities(), tree.activities());
    }

    #[test]
    fn tree_to_graph_produces_figure_10_shape() {
        let ast = parse_process(figure_10_source()).unwrap();
        let tree = ast_to_tree(&ast);
        let graph = tree_to_graph("PD-3DSD", &tree).unwrap();
        graph.validate().unwrap();
        assert_eq!(graph.activities().len(), 13);
        assert_eq!(graph.transitions().len(), 15);
    }

    #[test]
    fn graph_to_tree_inverts_tree_to_graph() {
        let ast = parse_process(figure_10_source()).unwrap();
        let tree = ast_to_tree(&ast);
        let graph = tree_to_graph("PD", &tree).unwrap();
        let back = graph_to_tree(&graph).unwrap();
        assert_eq!(back, tree);
    }

    #[test]
    fn empty_tree_converts() {
        let tree = PlanNode::Sequential(vec![]);
        let ast = tree_to_ast(&tree);
        assert!(ast.body.is_empty());
        assert_eq!(ast_to_tree(&ast), tree);
    }
}
