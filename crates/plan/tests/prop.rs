//! Property-based tests for plan-tree conversions.

use gridflow_plan::{
    ast_to_tree, canonicalize, graph_to_tree, tree_to_ast, tree_to_graph, PlanNode,
};
use gridflow_process::Condition;
use proptest::prelude::*;

fn condition() -> impl Strategy<Value = Condition> {
    prop_oneof![
        Just(Condition::True),
        "D[0-9]{1,2}".prop_map(Condition::Exists),
        ("D[0-9]{1,2}", -100i64..100).prop_map(|(d, v)| Condition::compare(
            d,
            "Value",
            gridflow_process::CompareOp::Gt,
            v
        )),
    ]
}

/// Arbitrary plan trees, including degenerate shapes GP can produce
/// (empty controllers excluded — those are GP-invalid by §3.4.1).
fn plan_node() -> impl Strategy<Value = PlanNode> {
    let leaf = "[A-Z][a-z0-9]{0,3}".prop_map(PlanNode::Terminal);
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(PlanNode::Sequential),
            prop::collection::vec(inner.clone(), 2..4).prop_map(PlanNode::Concurrent),
            prop::collection::vec((condition(), inner.clone()), 2..4).prop_map(PlanNode::Selective),
            (condition(), prop::collection::vec(inner, 1..4))
                .prop_map(|(cond, body)| PlanNode::Iterative { cond, body }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// AST→tree→AST is the identity.
    #[test]
    fn ast_tree_ast_identity(tree in plan_node()) {
        // Build the AST from a tree first so we have a valid AST source.
        let ast = tree_to_ast(&tree);
        let tree2 = ast_to_tree(&ast);
        prop_assert_eq!(tree_to_ast(&tree2), ast);
    }

    /// Canonicalization is idempotent.
    #[test]
    fn canonicalize_idempotent(tree in plan_node()) {
        let once = canonicalize(&tree);
        let twice = canonicalize(&once);
        prop_assert_eq!(once, twice);
    }

    /// Canonicalization preserves the activity sequence and never grows
    /// the tree.
    #[test]
    fn canonicalize_preserves_activities(tree in plan_node()) {
        let canon = canonicalize(&tree);
        prop_assert_eq!(canon.activities(), tree.activities());
        prop_assert!(canon.size() <= tree.size() + 1,
            "canonicalization grew the tree from {} to {}", tree.size(), canon.size());
    }

    /// Lowering a tree to a graph and recovering it yields the canonical
    /// form of the tree.
    #[test]
    fn graph_round_trip_is_canonicalization(tree in plan_node()) {
        let graph = tree_to_graph("prop", &tree).unwrap();
        graph.validate().unwrap();
        let back = graph_to_tree(&graph).unwrap();
        prop_assert_eq!(back, canonicalize(&tree));
    }

    /// The graph contains exactly the tree's terminal activities as
    /// end-user activities.
    #[test]
    fn graph_preserves_activity_multiset(tree in plan_node()) {
        let graph = tree_to_graph("prop", &tree).unwrap();
        let mut from_graph: Vec<String> = graph
            .end_user_activities()
            .map(|a| a.service.clone().unwrap())
            .collect();
        let mut from_tree: Vec<String> =
            tree.activities().iter().map(|s| s.to_string()).collect();
        from_graph.sort();
        from_tree.sort();
        prop_assert_eq!(from_graph, from_tree);
    }

    /// `simplify` preserves the activity multiset and never grows size.
    #[test]
    fn simplify_contracts(tree in plan_node()) {
        if let Some(s) = tree.simplify() {
            prop_assert!(s.size() <= tree.size());
            let mut a: Vec<&str> = s.activities();
            let mut b: Vec<&str> = tree.activities();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        } else {
            prop_assert!(tree.activities().is_empty());
        }
    }

    /// `node_at` enumerates exactly `size()` nodes.
    #[test]
    fn node_at_range_matches_size(tree in plan_node()) {
        let size = tree.size();
        prop_assert!(tree.node_at(size - 1).is_some());
        prop_assert!(tree.node_at(size).is_none());
    }

    /// `replace_at` at any valid index keeps the tree GP-valid and adjusts
    /// the size by the difference of the subtree sizes.
    #[test]
    fn replace_at_size_arithmetic(tree in plan_node(), idx in 0usize..64) {
        let size = tree.size();
        let idx = idx % size;
        let old_subtree_size = tree.node_at(idx).unwrap().size();
        let mut t = tree.clone();
        let old = t.replace_at(idx, PlanNode::terminal("Xrepl")).unwrap();
        prop_assert_eq!(old.size(), old_subtree_size);
        prop_assert_eq!(t.size(), size - old_subtree_size + 1);
        prop_assert!(t.is_gp_valid());
    }
}
