//! Pluggable admission policies for the case scheduler.
//!
//! Admission order is the one scheduling decision the engine makes that
//! is not dictated by the workflow itself, and it is exactly the axis
//! the Yu & Buyya taxonomy files under *scheduling / market-driven
//! architecture*: who gets into the running set first when capacity is
//! scarce.  [`AdmissionPolicy`] abstracts that choice.  Every tick,
//! while the running set has room, the scheduler hands the policy a
//! view of the waiting queue and the policy picks the next case (or
//! declines).  Everything else — matchmaking gates, rotation-fair
//! stepping, reservation drains — is unchanged, so two runs under
//! different policies differ *only* in admission order and in the
//! optional `reason` recorded on each `case.admitted` event.
//!
//! Determinism contract: a policy must be a pure function of the
//! waiting view, the tick, and its own admission history.  No clocks,
//! no randomness — the same submitted fleet must admit in the same
//! order on every run and on both scheduler cores.  [`Fifo`] is the
//! default and is byte-identical to the pre-policy engine: it always
//! picks position 0 with no reason, which is exactly the old
//! `pop_front`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Scheduling metadata a case carries into admission.  All fields are
/// advisory: FIFO ignores them entirely, and each policy reads only the
/// axis it arbitrates.  Serializable so engine snapshots can persist
/// the hints of still-waiting cases.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CaseHints {
    /// Bigger is more urgent.  Read by [`Priority`]; ties fall back to
    /// submission order.
    pub priority: i64,
    /// Accounting bucket for [`FairShare`]; `None` pools the case into
    /// the `"default"` tenant.
    pub tenant: Option<String>,
    /// Absolute tick this case wants to finish by.  Read by
    /// [`Deadline`]; `None` sorts after every real deadline.
    pub deadline_tick: Option<u64>,
}

impl CaseHints {
    /// Hints with the given priority, other fields defaulted.
    pub fn with_priority(priority: i64) -> Self {
        CaseHints {
            priority,
            ..Default::default()
        }
    }

    /// Hints with the given tenant, other fields defaulted.
    pub fn with_tenant(tenant: impl Into<String>) -> Self {
        CaseHints {
            tenant: Some(tenant.into()),
            ..Default::default()
        }
    }

    /// Hints with the given deadline tick, other fields defaulted.
    pub fn with_deadline(tick: u64) -> Self {
        CaseHints {
            deadline_tick: Some(tick),
            ..Default::default()
        }
    }
}

/// One waiting case as the policy sees it.
#[derive(Debug, Clone, Copy)]
pub struct WaitingCase<'a> {
    /// Submission index: position in the original submit order, stable
    /// across ticks.  The canonical tie-breaker.
    pub submitted: usize,
    /// The case's scheduler label.
    pub label: &'a str,
    /// The case's scheduling hints.
    pub hints: &'a CaseHints,
}

/// A policy's pick: which waiting-queue position to admit, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct Admission {
    /// Index into the waiting view passed to [`AdmissionPolicy::next`].
    pub pos: usize,
    /// Human-readable reason recorded on the `case.admitted` trace
    /// event.  `None` omits the field, keeping FIFO traces
    /// byte-identical to the pre-policy engine.
    pub reason: Option<String>,
}

/// Chooses which waiting case the scheduler admits next.
///
/// Called repeatedly within a tick while the running set has room;
/// returning `None` stops admission for the tick (FIFO-style policies
/// never decline while cases wait, but a budget- or market-driven
/// policy may).  `&mut self` lets a policy carry admission history
/// (fair-share counts); [`AdmissionPolicy::admitted`] is the commit
/// signal — a pick that fails the matchmaking gate is rejected, not
/// admitted, and must not update history.
pub trait AdmissionPolicy {
    /// Stable identifier (`"fifo"`, `"priority"`, …) surfaced in bench
    /// matrices and logs.
    fn name(&self) -> &'static str;

    /// Pick the next case to admit from `waiting`, or `None` to stop
    /// admitting this tick.  `waiting` is in queue order; `pos` indexes
    /// it.  Must be deterministic.
    fn next(&mut self, waiting: &[WaitingCase<'_>], tick: u64) -> Option<Admission>;

    /// The pick at `case` passed the admission gate and is now running.
    fn admitted(&mut self, case: &WaitingCase<'_>) {
        let _ = case;
    }

    /// `true` iff this policy always picks position 0 with no reason —
    /// i.e. it is plain FIFO.  Lets the scheduler skip building the
    /// O(waiting) view entirely and pop the queue front directly, which
    /// matters at fleet scale (the view build was O(N²) across a run).
    /// The fast path is byte-identical by construction: position 0, no
    /// reason, stop when empty — exactly [`Fifo::next`].
    fn is_fifo(&self) -> bool {
        false
    }
}

/// First come, first served — the default, byte-identical to the
/// pre-policy engine (always position 0, no reason).
#[derive(Debug, Default)]
pub struct Fifo;

impl AdmissionPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn next(&mut self, waiting: &[WaitingCase<'_>], _tick: u64) -> Option<Admission> {
        if waiting.is_empty() {
            None
        } else {
            Some(Admission {
                pos: 0,
                reason: None,
            })
        }
    }

    fn is_fifo(&self) -> bool {
        true
    }
}

/// Highest [`CaseHints::priority`] first; ties in submission order, so
/// equal-priority cases degrade to FIFO and a starved high-priority
/// case is never overtaken by a lower one arriving at the same tick.
#[derive(Debug, Default)]
pub struct Priority;

impl AdmissionPolicy for Priority {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn next(&mut self, waiting: &[WaitingCase<'_>], _tick: u64) -> Option<Admission> {
        let pos = waiting
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (std::cmp::Reverse(c.hints.priority), c.submitted))
            .map(|(pos, _)| pos)?;
        let p = waiting[pos].hints.priority;
        Some(Admission {
            pos,
            reason: Some(format!("priority={p}")),
        })
    }
}

/// Round-robins admission across tenants: always the waiting case whose
/// tenant has the fewest admissions so far (ties in submission order),
/// so one tenant's burst cannot starve another's queue.
#[derive(Debug, Default)]
pub struct FairShare {
    admitted: BTreeMap<String, u64>,
}

impl FairShare {
    fn tenant(hints: &CaseHints) -> &str {
        hints.tenant.as_deref().unwrap_or("default")
    }
}

impl AdmissionPolicy for FairShare {
    fn name(&self) -> &'static str {
        "fair_share"
    }

    fn next(&mut self, waiting: &[WaitingCase<'_>], _tick: u64) -> Option<Admission> {
        let pos = waiting
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| {
                let share = self
                    .admitted
                    .get(Self::tenant(c.hints))
                    .copied()
                    .unwrap_or(0);
                (share, c.submitted)
            })
            .map(|(pos, _)| pos)?;
        let tenant = Self::tenant(waiting[pos].hints);
        let share = self.admitted.get(tenant).copied().unwrap_or(0);
        Some(Admission {
            pos,
            reason: Some(format!("fair_share tenant={tenant} admitted={share}")),
        })
    }

    fn admitted(&mut self, case: &WaitingCase<'_>) {
        *self
            .admitted
            .entry(Self::tenant(case.hints).to_owned())
            .or_insert(0) += 1;
    }
}

/// Earliest deadline first: smallest [`CaseHints::deadline_tick`] wins;
/// deadline-less cases sort after every real deadline; ties in
/// submission order.
#[derive(Debug, Default)]
pub struct Deadline;

impl AdmissionPolicy for Deadline {
    fn name(&self) -> &'static str {
        "deadline"
    }

    fn next(&mut self, waiting: &[WaitingCase<'_>], _tick: u64) -> Option<Admission> {
        let pos = waiting
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (c.hints.deadline_tick.unwrap_or(u64::MAX), c.submitted))
            .map(|(pos, _)| pos)?;
        let reason = match waiting[pos].hints.deadline_tick {
            Some(d) => format!("deadline={d}"),
            None => "deadline=none".to_string(),
        };
        Some(Admission {
            pos,
            reason: Some(reason),
        })
    }
}

/// Which [`AdmissionPolicy`] a run uses — the value form carried by
/// `EngineConfig` (policies themselves are stateful, so the config
/// holds this spec and [`PolicySpec::build`] mints a fresh instance per
/// run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicySpec {
    /// [`Fifo`] — the byte-identical default.
    #[default]
    Fifo,
    /// [`Priority`].
    Priority,
    /// [`FairShare`].
    FairShare,
    /// [`Deadline`].
    Deadline,
}

impl PolicySpec {
    /// Every spec, in canonical order (bench matrices iterate this).
    pub const ALL: [PolicySpec; 4] = [
        PolicySpec::Fifo,
        PolicySpec::Priority,
        PolicySpec::FairShare,
        PolicySpec::Deadline,
    ];

    /// The policy's stable identifier.
    pub fn name(&self) -> &'static str {
        match self {
            PolicySpec::Fifo => "fifo",
            PolicySpec::Priority => "priority",
            PolicySpec::FairShare => "fair_share",
            PolicySpec::Deadline => "deadline",
        }
    }

    /// A fresh policy instance with empty history.
    pub fn build(&self) -> Box<dyn AdmissionPolicy> {
        match self {
            PolicySpec::Fifo => Box::new(Fifo),
            PolicySpec::Priority => Box::new(Priority),
            PolicySpec::FairShare => Box::new(FairShare::default()),
            PolicySpec::Deadline => Box::new(Deadline),
        }
    }

    /// Parse a spec from its [`name`](PolicySpec::name).
    pub fn parse(s: &str) -> Option<PolicySpec> {
        match s {
            "fifo" => Some(PolicySpec::Fifo),
            "priority" => Some(PolicySpec::Priority),
            "fair_share" | "fair-share" => Some(PolicySpec::FairShare),
            "deadline" | "edf" => Some(PolicySpec::Deadline),
            _ => None,
        }
    }
}

impl std::str::FromStr for PolicySpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PolicySpec::parse(s).ok_or_else(|| {
            format!("unknown admission policy `{s}` (expected fifo|priority|fair_share|deadline)")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(hints: &'a [CaseHints], labels: &'a [String]) -> Vec<WaitingCase<'a>> {
        hints
            .iter()
            .zip(labels)
            .enumerate()
            .map(|(i, (h, l))| WaitingCase {
                submitted: i,
                label: l,
                hints: h,
            })
            .collect()
    }

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("c-{i}")).collect()
    }

    #[test]
    fn fifo_always_picks_the_front_with_no_reason() {
        let hints = vec![CaseHints::with_priority(0), CaseHints::with_priority(9)];
        let labels = labels(2);
        let mut p = Fifo;
        let pick = p.next(&view(&hints, &labels), 0).unwrap();
        assert_eq!(pick.pos, 0);
        assert_eq!(pick.reason, None);
        assert!(p.next(&[], 0).is_none());
    }

    #[test]
    fn priority_picks_highest_and_breaks_ties_by_submission() {
        let hints = vec![
            CaseHints::with_priority(1),
            CaseHints::with_priority(5),
            CaseHints::with_priority(5),
        ];
        let labels = labels(3);
        let mut p = Priority;
        let pick = p.next(&view(&hints, &labels), 0).unwrap();
        assert_eq!(pick.pos, 1, "first of the tied high-priority pair");
        assert_eq!(pick.reason.as_deref(), Some("priority=5"));
    }

    #[test]
    fn fair_share_rotates_across_tenants() {
        let hints = vec![
            CaseHints::with_tenant("a"),
            CaseHints::with_tenant("a"),
            CaseHints::with_tenant("b"),
        ];
        let labels = labels(3);
        let mut p = FairShare::default();
        let v = view(&hints, &labels);
        let first = p.next(&v, 0).unwrap();
        assert_eq!(first.pos, 0, "all shares zero: submission order");
        p.admitted(&v[first.pos]);
        let second = p.next(&v, 0).unwrap();
        assert_eq!(second.pos, 2, "tenant b owed after a's admission");
    }

    #[test]
    fn deadline_is_edf_with_none_sorting_last() {
        let hints = vec![
            CaseHints::default(),
            CaseHints::with_deadline(40),
            CaseHints::with_deadline(10),
        ];
        let labels = labels(3);
        let mut p = Deadline;
        let pick = p.next(&view(&hints, &labels), 0).unwrap();
        assert_eq!(pick.pos, 2);
        assert_eq!(pick.reason.as_deref(), Some("deadline=10"));
    }

    #[test]
    fn spec_round_trips_names() {
        for spec in PolicySpec::ALL {
            assert_eq!(PolicySpec::parse(spec.name()), Some(spec));
            assert_eq!(spec.build().name(), spec.name());
        }
        assert_eq!(PolicySpec::parse("edf"), Some(PolicySpec::Deadline));
        assert_eq!(PolicySpec::parse("nope"), None);
    }
}
