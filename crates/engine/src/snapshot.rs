//! Serializable images of the event core's loop state.
//!
//! [`EngineSnapshot`] is what a [`SnapshotRecord`] payload holds: the
//! complete scheduler state at a tick boundary — waiting queue, live
//! fibers (as [`FiberImage`]s), finished outcomes, the admission
//! history the policy is rebuilt from, the wake-signal bookkeeping, and
//! the [`WorldImage`] of the shared substrate.  Restoring one onto a
//! fresh world and a journal reseeded at the snapshot's sequence number
//! reproduces the crashed run's remaining trace byte-for-byte.
//!
//! [`SnapshotRecord`]: gridflow_store::SnapshotRecord

use crate::policy::CaseHints;
use crate::scheduler::{CaseOutcome, CaseSpec, CoreSpec};
use gridflow_process::{AtnSnapshot, CaseDescription, DataState, ProcessGraph};
use gridflow_recovery::RecoveryState;
use gridflow_services::{EnactmentConfig, EnactmentReport, FiberImage, PendingImage, WorldImage};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One distinct (graph, case description, config) triple, stored once
/// per snapshot and referenced by index from [`WaitingImage`].
///
/// Fleet members share their blueprint (the scheduler's `submit` path
/// hands every case the same `Arc<CaseDescription>`), so without this
/// pool a snapshot would embed one full copy of the workload per
/// waiting case — quadratic in fleet size, and the dominant snapshot
/// cost for large fleets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseBlueprint {
    /// The workflow to enact.
    pub graph: ProcessGraph,
    /// Owned copy of the shared case description.
    pub case: CaseDescription,
    /// Per-case enactment configuration.
    pub config: EnactmentConfig,
}

/// A blueprint pool under construction during snapshot capture.
#[derive(Debug, Default)]
pub struct BlueprintPool {
    entries: Vec<CaseBlueprint>,
    // Capture-time identity fast path: the `Arc<CaseDescription>`
    // pointer each entry was first captured from.  Specs sharing that
    // Arc still have their graph/config compared — the pointer only
    // short-circuits the (potentially large) description comparison.
    sources: Vec<*const CaseDescription>,
}

impl BlueprintPool {
    /// Intern `spec`'s blueprint, returning its pool index.
    pub fn intern(&mut self, spec: &CaseSpec) -> usize {
        self.intern_parts(
            &spec.graph,
            &spec.case,
            &spec.config,
            Arc::as_ptr(&spec.case),
        )
    }

    /// Intern a live fiber's image, splitting its blueprint-shaped bulk
    /// (graph, case, config) into the pool and returning the remainder.
    /// A re-planned fiber's graph differs from its submission blueprint
    /// and simply interns as a further pool entry.
    pub fn slim(&mut self, fiber: FiberImage) -> FiberSlim {
        let blueprint =
            self.intern_parts(&fiber.graph, &fiber.case, &fiber.config, std::ptr::null());
        FiberSlim {
            blueprint,
            label: fiber.label,
            snapshot: fiber.snapshot,
            prime_flow_base: fiber.prime_flow_base,
            flow_base: fiber.flow_base,
            state: fiber.state,
            report: fiber.report,
            excluded: fiber.excluded,
            recovery: fiber.recovery,
            since_checkpoint: fiber.since_checkpoint,
            done: fiber.done,
            pending: fiber.pending,
        }
    }

    fn intern_parts(
        &mut self,
        graph: &ProcessGraph,
        case: &CaseDescription,
        config: &EnactmentConfig,
        ptr: *const CaseDescription,
    ) -> usize {
        if let Some(found) = (0..self.entries.len()).find(|&i| {
            let b = &self.entries[i];
            b.graph == *graph
                && b.config == *config
                && ((!ptr.is_null() && self.sources[i] == ptr) || b.case == *case)
        }) {
            return found;
        }
        self.entries.push(CaseBlueprint {
            graph: graph.clone(),
            case: case.clone(),
            config: config.clone(),
        });
        self.sources.push(ptr);
        self.entries.len() - 1
    }

    /// Seal the pool into the snapshot's blueprint table.
    pub fn into_entries(self) -> Vec<CaseBlueprint> {
        self.entries
    }
}

/// A [`FiberImage`] with its blueprint-shaped bulk interned into the
/// snapshot's pool — every other field is carried verbatim, so
/// [`FiberSlim::hydrate`] reconstructs the image exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FiberSlim {
    /// Index into [`EngineSnapshot::blueprints`] holding the fiber's
    /// (graph, case, config).
    pub blueprint: usize,
    /// Case label (trace scope and reservation-hold owner).
    pub label: String,
    /// ATN machine state, if any step has run.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub snapshot: Option<AtnSnapshot>,
    /// Whether the next restore primes the flow baseline.
    pub prime_flow_base: bool,
    /// Flow-transition baseline counts.
    pub flow_base: BTreeMap<String, usize>,
    /// Data state.
    pub state: DataState,
    /// The report so far, including captured checkpoints.
    pub report: EnactmentReport,
    /// Services excluded by re-planning.
    pub excluded: Vec<String>,
    /// Recovery-layer state (breakers, attempts, pending backoffs).
    pub recovery: RecoveryState,
    /// Activities executed since the last cadence checkpoint.
    pub since_checkpoint: usize,
    /// Has the enactment reached a terminal state?
    pub done: bool,
    /// Cached blocked dispatch, if the fiber is waiting on capacity.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub pending: Option<PendingImage>,
}

impl FiberSlim {
    /// Rebuild the full [`FiberImage`] from the snapshot's blueprint
    /// table; `None` if the blueprint index is out of range.
    pub fn hydrate(self, blueprints: &[CaseBlueprint]) -> Option<FiberImage> {
        let b = blueprints.get(self.blueprint)?;
        Some(FiberImage {
            config: b.config.clone(),
            case: b.case.clone(),
            label: self.label,
            graph: b.graph.clone(),
            snapshot: self.snapshot,
            prime_flow_base: self.prime_flow_base,
            flow_base: self.flow_base,
            state: self.state,
            report: self.report,
            excluded: self.excluded,
            recovery: self.recovery,
            since_checkpoint: self.since_checkpoint,
            done: self.done,
            pending: self.pending,
        })
    }
}

/// One still-waiting case: its submission index, identity, and a
/// reference into the snapshot's blueprint pool.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WaitingImage {
    /// Submission index (position in the original submit order).
    pub index: usize,
    /// The case's scheduler label.
    pub label: String,
    /// Scheduling hints.
    pub hints: CaseHints,
    /// Index into [`EngineSnapshot::blueprints`].
    pub blueprint: usize,
}

/// One live fiber with its scheduler accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlotImage {
    /// Submission index.
    pub index: usize,
    /// Tick at which the case was admitted.
    pub admitted_tick: u64,
    /// Ticks spent blocked on reserved-away capacity so far.
    pub blocked_ticks: u64,
    /// `None` when the fiber was in the ready queue; `Some(blockers)`
    /// when it was parked on a capacity wait-set (possibly empty — an
    /// always-wake wait).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub blockers: Option<Vec<String>>,
    /// The shard this fiber belonged to when the snapshot was captured
    /// under [`CoreSpec::Sharded`] (`submission index mod shards`);
    /// `None` under the unsharded cores and in pre-version-2 payloads.
    /// Recovery cross-checks it against the snapshot's own recorded
    /// core, proving shard assignments round-trip through the store.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub shard: Option<usize>,
    /// The fiber's mid-enactment image, blueprint bulk interned.
    pub fiber: FiberSlim,
}

/// One already-finished case.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FinishedImage {
    /// Submission index.
    pub index: usize,
    /// The sealed outcome.
    pub outcome: CaseOutcome,
}

/// One committed admission, in order — the replay script that rebuilds
/// the admission policy's history (policies are pure functions of the
/// waiting view, the tick, and this history).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdmissionRecord {
    /// Submission index of the admitted case.
    pub submitted: usize,
    /// The admitted case's label.
    pub label: String,
    /// The admitted case's hints.
    pub hints: CaseHints,
}

/// Engine-snapshot schema version written by this build.
///
/// Version 1 payloads (pre-`CoreSpec`) carry neither a `version` nor a
/// `core` field; deserialization defaults them to `1` and
/// [`CoreSpec::Event`], so old checkpoints keep restoring.  Payloads
/// from a *newer* schema than this build understands are refused.
pub const ENGINE_SNAPSHOT_VERSION: u32 = 2;

/// The event core's complete loop state at a tick boundary.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// Snapshot schema version (see [`ENGINE_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The core that captured the snapshot.  Informational plus a
    /// round-trip check: under [`CoreSpec::Sharded`] each live slot's
    /// recorded [`SlotImage::shard`] must equal `index mod shards`.
    /// Traces are core-invariant, so recovery may run a different core.
    pub core: CoreSpec,
    /// First tick the restored loop will execute.
    pub next_tick: u64,
    /// The distinct blueprints the waiting queue references.
    pub blueprints: Vec<CaseBlueprint>,
    /// Waiting queue, in queue order.
    pub waiting: Vec<WaitingImage>,
    /// Live fibers, in live-list order (stepping rotation depends on
    /// this order, so it is preserved exactly).
    pub live: Vec<SlotImage>,
    /// Finished cases so far.
    pub finished: Vec<FinishedImage>,
    /// Committed admissions so far, in admission order.
    pub admissions: Vec<AdmissionRecord>,
    /// Containers whose holds drained at the captured tick boundary —
    /// the next tick's wake signal.
    pub freed: Vec<String>,
    /// World matchmaking generation observed at the boundary.
    pub last_generation: u64,
    /// The shared substrate's state image.
    pub world: WorldImage,
}

// Hand-written serde: version 1 payloads predate the `version` and
// `core` fields, so deserialization must default them instead of
// erroring on the missing keys, and must refuse payloads newer than
// this build's schema.
impl Serialize for EngineSnapshot {
    fn to_json_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("version".to_string(), self.version.to_json_value());
        m.insert("core".to_string(), self.core.to_json_value());
        m.insert("next_tick".to_string(), self.next_tick.to_json_value());
        m.insert("blueprints".to_string(), self.blueprints.to_json_value());
        m.insert("waiting".to_string(), self.waiting.to_json_value());
        m.insert("live".to_string(), self.live.to_json_value());
        m.insert("finished".to_string(), self.finished.to_json_value());
        m.insert("admissions".to_string(), self.admissions.to_json_value());
        m.insert("freed".to_string(), self.freed.to_json_value());
        m.insert(
            "last_generation".to_string(),
            self.last_generation.to_json_value(),
        );
        m.insert("world".to_string(), self.world.to_json_value());
        serde::Value::Object(m)
    }
}

impl Deserialize for EngineSnapshot {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v.as_object().ok_or_else(|| {
            serde::Error::custom(format!(
                "expected object for struct EngineSnapshot, got {v:?}"
            ))
        })?;
        let version = match obj.get("version") {
            Some(v) => u32::from_json_value(v)
                .map_err(|e| serde::Error::custom(format!("field `version`: {e}")))?,
            None => 1,
        };
        if version > ENGINE_SNAPSHOT_VERSION {
            return Err(serde::Error::custom(format!(
                "engine snapshot version {version} is newer than this \
                 build's {ENGINE_SNAPSHOT_VERSION}"
            )));
        }
        let core = match obj.get("core") {
            Some(v) => CoreSpec::from_json_value(v)
                .map_err(|e| serde::Error::custom(format!("field `core`: {e}")))?,
            None => CoreSpec::Event,
        };
        Ok(EngineSnapshot {
            version,
            core,
            next_tick: serde::__field(obj, "next_tick", "EngineSnapshot")?,
            blueprints: serde::__field(obj, "blueprints", "EngineSnapshot")?,
            waiting: serde::__field(obj, "waiting", "EngineSnapshot")?,
            live: serde::__field(obj, "live", "EngineSnapshot")?,
            finished: serde::__field(obj, "finished", "EngineSnapshot")?,
            admissions: serde::__field(obj, "admissions", "EngineSnapshot")?,
            freed: serde::__field(obj, "freed", "EngineSnapshot")?,
            last_generation: serde::__field(obj, "last_generation", "EngineSnapshot")?,
            world: serde::__field(obj, "world", "EngineSnapshot")?,
        })
    }
}

impl EngineSnapshot {
    /// Serialize for a snapshot record's opaque payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("engine snapshots serialize")
            .into_bytes()
    }

    /// Deserialize a snapshot record's payload.  Version 1 payloads
    /// (no `version`/`core` fields) deserialize with the historical
    /// defaults; payloads newer than [`ENGINE_SNAPSHOT_VERSION`] are
    /// refused.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// Shard-assignment round-trip check: under a sharded recorded
    /// core, every live slot's `shard` must equal `index mod shards`
    /// (pre-version-2 slots with no recorded shard are exempt).
    /// Returns the offending slot's submission index on mismatch.
    pub fn verify_shard_assignments(&self) -> Result<(), usize> {
        let shards = self.core.shards();
        for slot in &self.live {
            if let Some(shard) = slot.shard {
                if shard != slot.index % shards {
                    return Err(slot.index);
                }
            }
        }
        Ok(())
    }
}
