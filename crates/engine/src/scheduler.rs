//! The tick scheduler: admission, rotation-fair stepping, tick-scoped
//! reservations, and per-case scoped tracing.

use crate::policy::{AdmissionPolicy, CaseHints, PolicySpec, WaitingCase};
use gridflow_process::{ActivityKind, CaseDescription, ProcessGraph};
use gridflow_services::matchmaking::{matchmake, MatchRequest};
use gridflow_services::{CaseFiber, EnactmentConfig, EnactmentReport, FiberStatus, GridWorld};
use gridflow_telemetry::{ScopedSink, TraceEvent, TraceHandle, TraceSink};
use std::collections::VecDeque;
use std::sync::Arc;

/// Scheduler knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// How many workers the per-tick step list is chunked across.
    ///
    /// Stepping is logically single-threaded and the chunking is
    /// order-preserving, so this knob **cannot** change the merged
    /// trace: a seed yields byte-identical JSONL for any worker count.
    pub workers: usize,
    /// Cases enacting at once; the rest wait in the admission queue.
    pub max_in_flight: usize,
    /// Turn on the world's tick-scoped reservation protocol for the
    /// run, so concurrent cases contend for container capacity instead
    /// of double-booking it.  The world's previous setting is restored
    /// when the run ends.
    pub enforce_reservations: bool,
    /// Abort every still-running case once this many ticks have
    /// elapsed — the engine's defense against a live-locked schedule.
    pub max_ticks: u64,
    /// Run the legacy scan core instead of the event-driven core.
    ///
    /// The scan core re-derives every fiber's situation from scratch
    /// each tick; the event core (the default) classifies fibers into a
    /// ready queue and capacity wait-sets and lets blocked fibers
    /// re-check contention cheaply.  Both cores emit byte-identical
    /// merged traces — the scan core exists as the differential oracle
    /// the equivalence suite compares against, not as a feature.
    pub scan_core: bool,
    /// Which admission policy orders the waiting queue.  The default,
    /// [`PolicySpec::Fifo`], is byte-identical to the pre-policy
    /// engine; non-FIFO policies reorder admission only and stamp each
    /// `case.admitted` event with a `reason`.
    pub policy: PolicySpec,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 1,
            max_in_flight: 16,
            enforce_reservations: true,
            max_ticks: 100_000,
            scan_core: false,
            policy: PolicySpec::Fifo,
        }
    }
}

/// One case submitted to the scheduler.
#[derive(Debug, Clone)]
pub struct CaseSpec {
    /// Unique name for the case; tags its trace events and reservation
    /// holds.  Submitting two cases with one label makes their
    /// reservation holds indistinguishable — keep labels unique.
    pub label: String,
    /// The workflow to enact.
    pub graph: ProcessGraph,
    /// The case description (initial data, goals, constraints).
    ///
    /// Shared, so a fleet of specs stamped from one workload holds one
    /// description between them and spawning a fiber never deep-copies
    /// the case's condition trees (`my_case.into()` converts an owned
    /// description).
    pub case: Arc<CaseDescription>,
    /// Per-case enactment configuration (recovery ladder included).
    pub config: EnactmentConfig,
    /// Scheduling hints the admission policy reads (priority, tenant,
    /// deadline).  Ignored by FIFO; defaults to neutral values.
    pub hints: CaseHints,
}

/// What became of one submitted case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseOutcome {
    /// The case's label, as submitted.
    pub label: String,
    /// The sealed enactment report.
    pub report: EnactmentReport,
    /// Tick at which the case was admitted; `None` if admission
    /// refused it (no live container could serve it).
    pub admitted_tick: Option<u64>,
    /// Tick at which the case finished (or was refused/aborted).
    pub finished_tick: u64,
    /// Ticks the case spent blocked on reserved-away containers.
    pub blocked_ticks: u64,
}

impl CaseOutcome {
    /// Virtual-tick makespan: admission to finish, inclusive of the
    /// finishing tick.
    ///
    /// **Refused cases return 0**, which is *not* a makespan — a
    /// refused case never ran.  Aggregations (percentiles, means) that
    /// feed zeros in would silently report refusals as instant
    /// completions; use [`CaseOutcome::admitted_makespan_ticks`] and
    /// filter its `None`s instead.
    pub fn makespan_ticks(&self) -> u64 {
        self.admitted_makespan_ticks().unwrap_or(0)
    }

    /// Virtual-tick makespan for cases that actually ran: admission to
    /// finish, inclusive of the finishing tick.  `None` when admission
    /// refused the case — the variant aggregations should filter out
    /// rather than count as zero.
    pub fn admitted_makespan_ticks(&self) -> Option<u64> {
        self.admitted_tick
            .map(|t| self.finished_tick.saturating_sub(t) + 1)
    }
}

/// The whole run's result.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineOutcome {
    /// One outcome per submitted case, in submission order.
    pub cases: Vec<CaseOutcome>,
    /// Ticks the schedule took overall.
    pub ticks: u64,
}

impl EngineOutcome {
    /// Did every admitted case succeed?
    pub fn all_succeeded(&self) -> bool {
        self.cases.iter().all(|c| c.report.success)
    }
}

/// A fiber the scheduler is driving, with its accounting.
struct Slot {
    index: usize,
    fiber: CaseFiber,
    admitted_tick: u64,
    blocked_ticks: u64,
}

/// A live fiber's scheduling state in the event core.
enum WaitState {
    /// In the ready queue: stepped this tick.
    Ready,
    /// Parked on reserved-away capacity until one of its blockers frees
    /// a slot or the world's matchmaking generation changes (its
    /// candidate ranking may then differ).  Under tick-scoped
    /// reservations every hold drains at each tick boundary, so
    /// capacity waiters wake every tick by construction — the wait
    /// set's value is that a woken blocked fiber re-checks contention
    /// in O(candidates) instead of re-deriving its whole step.  An
    /// empty blocker set (recovery-ladder blocks, whose candidate list
    /// is not cacheable) always wakes.
    Capacity { blockers: Vec<String> },
}

/// A [`Slot`] plus its event-core scheduling state.
struct EventSlot {
    slot: Slot,
    wait: WaitState,
}

/// The multi-case enactment engine.
///
/// Submit cases with [`CaseScheduler::submit`], then [`run`] them to
/// completion over a shared world.  Admission order is set by
/// [`EngineConfig::policy`] (FIFO in submission order by default); each
/// tick admits waiting cases up to [`EngineConfig::max_in_flight`],
/// steps every live case once in a rotated canonical order (rotation
/// index = tick mod live cases, so no case monopolizes first pick of
/// the tick's capacity), then releases all tick-scoped reservations.
///
/// [`run`]: CaseScheduler::run
pub struct CaseScheduler {
    config: EngineConfig,
    trace: TraceHandle,
    sink: Option<Arc<dyn TraceSink>>,
    pending: Vec<CaseSpec>,
}

impl std::fmt::Debug for CaseScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaseScheduler")
            .field("config", &self.config)
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl CaseScheduler {
    /// An empty scheduler (no tracing).
    pub fn new(config: EngineConfig) -> Self {
        CaseScheduler {
            config,
            trace: TraceHandle::none(),
            sink: None,
            pending: Vec::new(),
        }
    }

    /// Record the run into `sink`.  Engine events carry source
    /// `engine`; each case's enactor events are prefixed
    /// `case:<label>/`, so one merged log holds every case's story and
    /// [`gridflow_telemetry::TraceQuery`] can check cross-case
    /// invariants such as no-double-booking.
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = TraceHandle::from(sink.clone());
        self.sink = Some(sink);
        self
    }

    /// Queue a case for admission.  Order of submission is the default
    /// (FIFO) admission order, every policy's tie-breaker, and the
    /// canonical base order for stepping.
    pub fn submit(&mut self, spec: CaseSpec) {
        self.pending.push(spec);
    }

    /// Enact every submitted case to completion.
    pub fn run(&mut self, world: &mut GridWorld) -> EngineOutcome {
        self.run_with(world, |_, _| {})
    }

    /// Like [`run`](CaseScheduler::run), with a hook called at the top
    /// of every tick (after `TickStarted`, before admission) — the seam
    /// the harness uses to inject mid-schedule faults such as node
    /// loss.
    ///
    /// Dispatches to the event-driven core, or to the legacy scan core
    /// when [`EngineConfig::scan_core`] is set.  The two cores emit
    /// byte-identical merged traces for every `(seed, workload, case
    /// count)` — the differential equivalence suite pins that down.
    pub fn run_with(
        &mut self,
        world: &mut GridWorld,
        on_tick: impl FnMut(u64, &mut GridWorld),
    ) -> EngineOutcome {
        if self.config.scan_core {
            self.run_scan(world, on_tick)
        } else {
            self.run_event(world, on_tick)
        }
    }

    /// The legacy scan core: every tick re-derives every fiber's
    /// situation from scratch.  Kept verbatim as the differential
    /// oracle for the event core — do not "improve" it.
    fn run_scan(
        &mut self,
        world: &mut GridWorld,
        mut on_tick: impl FnMut(u64, &mut GridWorld),
    ) -> EngineOutcome {
        let reservations_before = world.reservations_enabled();
        world.enable_reservations(self.config.enforce_reservations);

        let specs = std::mem::take(&mut self.pending);
        let mut waiting: VecDeque<(usize, CaseSpec)> = specs.into_iter().enumerate().collect();
        let mut live: Vec<Slot> = Vec::new();
        let mut finished: Vec<(usize, CaseOutcome)> = Vec::new();
        let mut tick: u64 = 0;
        let mut policy = self.config.policy.build();

        loop {
            self.trace.emit("engine", TraceEvent::TickStarted { tick });
            on_tick(tick, world);

            // Policy-ordered admission, gated on matchmaking: a case
            // none of the live containers can serve is refused outright
            // instead of failing activity-by-activity later.
            while live.len() < self.config.max_in_flight.max(1) {
                let Some((index, spec, why)) = Self::pick_next(policy.as_mut(), &mut waiting, tick)
                else {
                    break;
                };
                match self.admission_gap(world, &spec.graph) {
                    None => {
                        self.trace.emit(
                            "engine",
                            TraceEvent::CaseAdmitted {
                                case: spec.label.clone(),
                                tick,
                                reason: why,
                            },
                        );
                        policy.admitted(&WaitingCase {
                            submitted: index,
                            label: &spec.label,
                            hints: &spec.hints,
                        });
                        let fiber = self.spawn_fiber(&spec);
                        live.push(Slot {
                            index,
                            fiber,
                            admitted_tick: tick,
                            blocked_ticks: 0,
                        });
                    }
                    Some(reason) => {
                        self.trace.emit(
                            "engine",
                            TraceEvent::CaseRejected {
                                case: spec.label.clone(),
                                reason: reason.clone(),
                            },
                        );
                        let mut fiber = self.spawn_fiber(&spec);
                        fiber.abort(format!("admission refused: {reason}"));
                        finished.push((
                            index,
                            CaseOutcome {
                                label: spec.label.clone(),
                                report: fiber.into_report(),
                                admitted_tick: None,
                                finished_tick: tick,
                                blocked_ticks: 0,
                            },
                        ));
                    }
                }
            }

            if live.is_empty() && waiting.is_empty() {
                break;
            }

            // Step every live case once, in canonical order rotated by
            // the tick so first pick of the tick's capacity circulates.
            // `workers` only chunks this already-ordered list — the
            // chunking is order-preserving, so the merged trace cannot
            // depend on it.
            let n = live.len();
            let rotation = (tick as usize) % n.max(1);
            let order: Vec<usize> = (0..n).map(|i| (i + rotation) % n).collect();
            let chunk = n.div_ceil(self.config.workers.max(1));
            let mut done: Vec<usize> = Vec::new();
            for worker_share in order.chunks(chunk.max(1)) {
                for &slot_idx in worker_share {
                    let slot = &mut live[slot_idx];
                    match slot.fiber.step(world) {
                        FiberStatus::Progressed => {}
                        FiberStatus::Blocked { .. } => slot.blocked_ticks += 1,
                        FiberStatus::Finished => done.push(slot_idx),
                    }
                }
            }

            // Retire finished cases (highest slot first so removals
            // don't shift pending indices).
            done.sort_unstable();
            for &slot_idx in done.iter().rev() {
                let slot = live.remove(slot_idx);
                self.trace.emit(
                    "engine",
                    TraceEvent::CaseCompleted {
                        case: slot.fiber.label().to_owned(),
                        success: slot.fiber.report().success,
                    },
                );
                finished.push((
                    slot.index,
                    CaseOutcome {
                        label: slot.fiber.label().to_owned(),
                        report: slot.fiber.into_report(),
                        admitted_tick: Some(slot.admitted_tick),
                        finished_tick: tick,
                        blocked_ticks: slot.blocked_ticks,
                    },
                ));
            }

            // Reservations are tick-scoped: release every hold, in
            // deterministic (container, holder) order.
            for (container, holders) in world.drain_reservations() {
                for case in holders {
                    self.trace.emit(
                        "engine",
                        TraceEvent::SlotReleased {
                            case,
                            container: container.clone(),
                        },
                    );
                }
            }

            tick += 1;
            if tick >= self.config.max_ticks {
                for mut slot in live.drain(..) {
                    slot.fiber.abort(format!(
                        "engine tick budget exhausted after {} ticks",
                        self.config.max_ticks
                    ));
                    self.trace.emit(
                        "engine",
                        TraceEvent::CaseCompleted {
                            case: slot.fiber.label().to_owned(),
                            success: false,
                        },
                    );
                    finished.push((
                        slot.index,
                        CaseOutcome {
                            label: slot.fiber.label().to_owned(),
                            report: slot.fiber.into_report(),
                            admitted_tick: Some(slot.admitted_tick),
                            finished_tick: tick,
                            blocked_ticks: slot.blocked_ticks,
                        },
                    ));
                }
                waiting.clear();
                break;
            }
        }

        world.enable_reservations(reservations_before);
        finished.sort_by_key(|(index, _)| *index);
        EngineOutcome {
            cases: finished.into_iter().map(|(_, c)| c).collect(),
            ticks: tick.max(1),
        }
    }

    /// The event-driven core: live fibers are classified into a ready
    /// queue and capacity wait-sets.  A blocked fiber parks on the set
    /// of containers it found reserved away; the tick boundary's
    /// reservation drain is the wake signal.  Because reservations are
    /// tick-scoped, every blocker's hold drains every tick, so capacity
    /// waiters always wake — the trace stays byte-identical to the scan
    /// core's (one `CaseBlocked` per blocked tick) while the woken
    /// fiber's re-step is a cheap contention re-check instead of a full
    /// plan/matchmake re-derivation.
    fn run_event(
        &mut self,
        world: &mut GridWorld,
        mut on_tick: impl FnMut(u64, &mut GridWorld),
    ) -> EngineOutcome {
        let reservations_before = world.reservations_enabled();
        world.enable_reservations(self.config.enforce_reservations);

        let specs = std::mem::take(&mut self.pending);
        let mut waiting: VecDeque<(usize, CaseSpec)> = specs.into_iter().enumerate().collect();
        let mut live: Vec<EventSlot> = Vec::new();
        let mut finished: Vec<(usize, CaseOutcome)> = Vec::new();
        let mut tick: u64 = 0;
        let mut policy = self.config.policy.build();
        // Containers whose tick-scoped holds drained at the previous
        // tick boundary — the wake signal for capacity waiters.
        let mut freed: Vec<String> = Vec::new();
        let mut last_generation = world.generation();

        loop {
            self.trace.emit("engine", TraceEvent::TickStarted { tick });
            on_tick(tick, world);

            // Policy-ordered admission, identical to the scan core;
            // fresh admissions enter the ready queue.
            while live.len() < self.config.max_in_flight.max(1) {
                let Some((index, spec, why)) = Self::pick_next(policy.as_mut(), &mut waiting, tick)
                else {
                    break;
                };
                match self.admission_gap(world, &spec.graph) {
                    None => {
                        self.trace.emit(
                            "engine",
                            TraceEvent::CaseAdmitted {
                                case: spec.label.clone(),
                                tick,
                                reason: why,
                            },
                        );
                        policy.admitted(&WaitingCase {
                            submitted: index,
                            label: &spec.label,
                            hints: &spec.hints,
                        });
                        let fiber = self.spawn_fiber(&spec);
                        live.push(EventSlot {
                            slot: Slot {
                                index,
                                fiber,
                                admitted_tick: tick,
                                blocked_ticks: 0,
                            },
                            wait: WaitState::Ready,
                        });
                    }
                    Some(reason) => {
                        self.trace.emit(
                            "engine",
                            TraceEvent::CaseRejected {
                                case: spec.label.clone(),
                                reason: reason.clone(),
                            },
                        );
                        let mut fiber = self.spawn_fiber(&spec);
                        fiber.abort(format!("admission refused: {reason}"));
                        finished.push((
                            index,
                            CaseOutcome {
                                label: spec.label.clone(),
                                report: fiber.into_report(),
                                admitted_tick: None,
                                finished_tick: tick,
                                blocked_ticks: 0,
                            },
                        ));
                    }
                }
            }

            if live.is_empty() && waiting.is_empty() {
                break;
            }

            // Wake phase: move capacity waiters whose blockers freed a
            // slot (or whose candidate ranking may have changed) back to
            // the ready queue.
            let generation = world.generation();
            for entry in &mut live {
                let wake = match &entry.wait {
                    WaitState::Ready => true,
                    WaitState::Capacity { blockers } => {
                        blockers.is_empty()
                            || generation != last_generation
                            || blockers.iter().any(|b| freed.contains(b))
                    }
                };
                if wake {
                    entry.wait = WaitState::Ready;
                }
            }

            // Step the ready queue in the canonical order rotated by the
            // tick over the *full* live list, so rotation fairness (and
            // hence the trace) is independent of who happens to be
            // parked.  Worker chunking is order-preserving, as in the
            // scan core.
            let n = live.len();
            let rotation = (tick as usize) % n.max(1);
            let order: Vec<usize> = (0..n)
                .map(|i| (i + rotation) % n)
                .filter(|&i| matches!(live[i].wait, WaitState::Ready))
                .collect();
            let chunk = order.len().div_ceil(self.config.workers.max(1));
            let mut done: Vec<usize> = Vec::new();
            for worker_share in order.chunks(chunk.max(1)) {
                for &slot_idx in worker_share {
                    let entry = &mut live[slot_idx];
                    match entry.slot.fiber.step(world) {
                        FiberStatus::Progressed => entry.wait = WaitState::Ready,
                        FiberStatus::Blocked { .. } => {
                            entry.slot.blocked_ticks += 1;
                            entry.wait = WaitState::Capacity {
                                blockers: entry
                                    .slot
                                    .fiber
                                    .blocked_on()
                                    .map(<[String]>::to_vec)
                                    .unwrap_or_default(),
                            };
                        }
                        FiberStatus::Finished => done.push(slot_idx),
                    }
                }
            }

            // Retire finished cases (highest slot first so removals
            // don't shift pending indices).
            done.sort_unstable();
            for &slot_idx in done.iter().rev() {
                let slot = live.remove(slot_idx).slot;
                self.trace.emit(
                    "engine",
                    TraceEvent::CaseCompleted {
                        case: slot.fiber.label().to_owned(),
                        success: slot.fiber.report().success,
                    },
                );
                finished.push((
                    slot.index,
                    CaseOutcome {
                        label: slot.fiber.label().to_owned(),
                        report: slot.fiber.into_report(),
                        admitted_tick: Some(slot.admitted_tick),
                        finished_tick: tick,
                        blocked_ticks: slot.blocked_ticks,
                    },
                ));
            }

            // Drain the tick's reservations and remember which
            // containers freed capacity — next tick's wake signal.
            freed.clear();
            for (container, holders) in world.drain_reservations() {
                for case in holders {
                    self.trace.emit(
                        "engine",
                        TraceEvent::SlotReleased {
                            case,
                            container: container.clone(),
                        },
                    );
                }
                freed.push(container);
            }
            last_generation = world.generation();

            tick += 1;
            if tick >= self.config.max_ticks {
                for entry in live.drain(..) {
                    let mut slot = entry.slot;
                    slot.fiber.abort(format!(
                        "engine tick budget exhausted after {} ticks",
                        self.config.max_ticks
                    ));
                    self.trace.emit(
                        "engine",
                        TraceEvent::CaseCompleted {
                            case: slot.fiber.label().to_owned(),
                            success: false,
                        },
                    );
                    finished.push((
                        slot.index,
                        CaseOutcome {
                            label: slot.fiber.label().to_owned(),
                            report: slot.fiber.into_report(),
                            admitted_tick: Some(slot.admitted_tick),
                            finished_tick: tick,
                            blocked_ticks: slot.blocked_ticks,
                        },
                    ));
                }
                waiting.clear();
                break;
            }
        }

        world.enable_reservations(reservations_before);
        finished.sort_by_key(|(index, _)| *index);
        EngineOutcome {
            cases: finished.into_iter().map(|(_, c)| c).collect(),
            ticks: tick.max(1),
        }
    }

    /// The admission policy's next pick, removed from the waiting queue
    /// and returned with its admission reason.  `None` ends admission
    /// for the tick (queue empty, or the policy declined).
    fn pick_next(
        policy: &mut dyn AdmissionPolicy,
        waiting: &mut VecDeque<(usize, CaseSpec)>,
        tick: u64,
    ) -> Option<(usize, CaseSpec, Option<String>)> {
        let admission = {
            let view: Vec<WaitingCase<'_>> = waiting
                .iter()
                .map(|(index, spec)| WaitingCase {
                    submitted: *index,
                    label: &spec.label,
                    hints: &spec.hints,
                })
                .collect();
            policy.next(&view, tick)?
        };
        let (index, spec) = waiting
            .remove(admission.pos)
            .expect("policy picked an out-of-range waiting position");
        Some((index, spec, admission.reason))
    }

    /// `None` when matchmaking can place every end-user service of
    /// `graph` on a live container; otherwise the first gap found.
    fn admission_gap(&self, world: &GridWorld, graph: &ProcessGraph) -> Option<String> {
        for a in graph
            .activities()
            .iter()
            .filter(|a| a.kind == ActivityKind::EndUser)
        {
            let service = a.service.clone().unwrap_or_else(|| a.id.clone());
            match matchmake(world, &MatchRequest::for_service(&service)) {
                Ok(candidates) if !candidates.is_empty() => {}
                Ok(_) => {
                    return Some(format!(
                        "no live candidate container for service `{service}`"
                    ))
                }
                Err(e) => return Some(e.to_string()),
            }
        }
        None
    }

    /// A fiber whose trace events are scoped `case:<label>/…` in the
    /// merged log (no-op when the scheduler is untraced).
    fn spawn_fiber(&self, spec: &CaseSpec) -> CaseFiber {
        let trace = match &self.sink {
            Some(sink) => TraceHandle::from(Arc::new(ScopedSink::new(
                format!("case:{}", spec.label),
                sink.clone(),
            )) as Arc<dyn TraceSink>),
            None => TraceHandle::none(),
        };
        CaseFiber::new(
            spec.config.clone(),
            trace,
            &spec.graph,
            spec.case.clone(),
            spec.label.clone(),
        )
    }
}
