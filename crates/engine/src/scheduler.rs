//! The tick scheduler: admission, rotation-fair stepping, tick-scoped
//! reservations, and per-case scoped tracing.

use crate::policy::{AdmissionPolicy, CaseHints, PolicySpec, WaitingCase};
use crate::snapshot::{
    AdmissionRecord, BlueprintPool, EngineSnapshot, FinishedImage, SlotImage, WaitingImage,
};
use gridflow_process::{ActivityKind, CaseDescription, ProcessGraph};
use gridflow_services::matchmaking::{matchmake, MatchRequest, ShardedMatchIndex};
use gridflow_services::{
    CaseFiber, EnactmentConfig, EnactmentReport, FiberStatus, GridWorld, PlanCacheHandle,
    PreparedStep,
};
use gridflow_store::{SnapshotRecord, Store, StoreError, StoreResult};
use gridflow_telemetry::{ScopedSink, TraceEvent, TraceHandle, TraceLog, TraceSink};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The durable-store attachment for a run: where tick events and
/// snapshots go, and which journal they are read back out of.
///
/// `journal` **must** be the same [`TraceLog`] the scheduler records
/// into (wired via [`CaseScheduler::trace`]) — the event core flushes
/// `journal.records_from(..)` into `store` at every tick boundary, so a
/// different log would persist someone else's events.  For crash
/// recovery the caller reseeds the journal
/// ([`TraceLog::resuming`]) at the snapshot's `journal_seq` before
/// constructing the scheduler; the store then byte-verifies the
/// regenerated overlap instead of trusting it.
#[derive(Clone)]
pub struct StoreBinding {
    /// The durable backend (shared so tests and recovery can read it
    /// back after the run).
    pub store: Arc<Mutex<dyn Store>>,
    /// The trace log the engine journals into — the flush source.
    pub journal: TraceLog,
    /// Snapshot cadence: capture engine state every `snapshot_every`
    /// ticks.  `0` disables snapshots (the log still appends events,
    /// and recovery replays from the very beginning).
    pub snapshot_every: u64,
}

impl std::fmt::Debug for StoreBinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreBinding")
            .field("snapshot_every", &self.snapshot_every)
            .finish_non_exhaustive()
    }
}

impl PartialEq for StoreBinding {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.store, &other.store) && self.snapshot_every == other.snapshot_every
    }
}

/// Which execution core drives a run — the first-class core selection
/// that replaced the old `scan_core: bool` flag.
///
/// Every core emits byte-identical merged traces for a given `(seed,
/// workload, case count)`; the differential equivalence suite pins the
/// three-way agreement down.  They differ only in *how* they get
/// there:
///
/// - [`CoreSpec::Event`] (the default) classifies fibers into a ready
///   queue and capacity wait-sets so blocked fibers re-check
///   contention cheaply.
/// - [`CoreSpec::Scan`] re-derives every fiber's situation from
///   scratch each tick — the frozen differential oracle.
/// - [`CoreSpec::Sharded`] runs the event core's tick as two phases:
///   a parallel *prepare* phase where each shard speculatively works
///   out its fibers' next moves against a shard-partitioned match
///   index on real `std::thread::scope` workers, then a sequential
///   *commit* phase that resolves cross-shard reservations and
///   splices the shards' buffered emissions into the merged trace in
///   canonical order.  `shards: 1` degenerates to the event core plus
///   an inline prepare pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CoreSpec {
    /// The event-driven core — wait-sets, dispatch caching, match
    /// index.  The default.
    #[default]
    Event,
    /// The legacy every-tick-rescan loop, kept verbatim as the
    /// differential oracle.
    Scan,
    /// The two-phase sharded core: parallel per-shard prepare, ordered
    /// cross-shard commit.
    Sharded {
        /// How many shards containers and cases are partitioned into.
        /// Values are clamped to at least 1; shard count never changes
        /// the merged trace, only how much of the tick runs in
        /// parallel.
        shards: usize,
    },
}

impl CoreSpec {
    /// The shard count this core partitions the world into (1 for the
    /// unsharded cores).
    pub fn shards(&self) -> usize {
        match self {
            CoreSpec::Sharded { shards } => (*shards).max(1),
            _ => 1,
        }
    }

    /// Does this core run the two-phase prepare/commit tick?
    pub fn is_sharded(&self) -> bool {
        matches!(self, CoreSpec::Sharded { .. })
    }
}

/// Scheduler knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// How many `std::thread::scope` workers the sharded core's prepare
    /// phase fans shards across (clamped to the shard count).  The
    /// unsharded cores are single-threaded and ignore it.
    ///
    /// Commit stays sequential in canonical order under every setting,
    /// so this knob **cannot** change the merged trace: a seed yields
    /// byte-identical JSONL for any worker count.
    pub workers: usize,
    /// Cases enacting at once; the rest wait in the admission queue.
    pub max_in_flight: usize,
    /// Turn on the world's tick-scoped reservation protocol for the
    /// run, so concurrent cases contend for container capacity instead
    /// of double-booking it.  The world's previous setting is restored
    /// when the run ends.
    pub enforce_reservations: bool,
    /// Abort every still-running case once this many ticks have
    /// elapsed — the engine's defense against a live-locked schedule.
    pub max_ticks: u64,
    /// Which execution core drives the run.  See [`CoreSpec`]; every
    /// core emits byte-identical merged traces.
    pub core: CoreSpec,
    /// Which admission policy orders the waiting queue.  The default,
    /// [`PolicySpec::Fifo`], is byte-identical to the pre-policy
    /// engine; non-FIFO policies reorder admission only and stamp each
    /// `case.admitted` event with a `reason`.
    pub policy: PolicySpec,
    /// Durable store attachment.  `None` (the default) leaves the
    /// engine exactly as before — no I/O, no snapshots.  `Some` makes
    /// the event core flush the journal's new records into the store at
    /// every tick boundary and capture an [`EngineSnapshot`] every
    /// [`StoreBinding::snapshot_every`] ticks.  The legacy scan core
    /// ignores the binding entirely (it is a frozen differential
    /// oracle, not a feature surface).
    pub store: Option<StoreBinding>,
    /// Crash-injection knob: stop the event core dead at the top of
    /// this tick, *before* the tick's `TickStarted` is emitted and
    /// before any of its events reach the store.  The durable log is
    /// left holding exactly the ticks `< kill_at` — the state a real
    /// process death at that boundary would leave.  `None` (the
    /// default) never kills.  Ignored by the scan core.
    pub kill_at: Option<u64>,
    /// Fleet-shared, content-addressed plan cache.  `None` (the
    /// default) plans per-case exactly as before.  `Some` installs the
    /// handle into every fiber's planning service (fresh spawns and
    /// recovery rebuilds alike), so identical-key (re)plans across the
    /// fleet run GP once and reuse the byte-identical result.  Replans
    /// execute in the sequential commit path under every core, so the
    /// hit/miss pattern — and with it the merged trace — stays
    /// deterministic at any worker or shard count.
    ///
    /// Recovery note: re-execution regenerates the crashed run's
    /// events, so a store-verified recovery must be given the same (or
    /// an equally warmed) cache handle the crashed run used — or plan
    /// cache events in the journal will not reproduce.
    pub plan_cache: Option<PlanCacheHandle>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 1,
            max_in_flight: 16,
            enforce_reservations: true,
            max_ticks: 100_000,
            core: CoreSpec::Event,
            policy: PolicySpec::Fifo,
            store: None,
            kill_at: None,
            plan_cache: None,
        }
    }
}

/// One case submitted to the scheduler.
#[derive(Debug, Clone)]
pub struct CaseSpec {
    /// Unique name for the case; tags its trace events and reservation
    /// holds.  Submitting two cases with one label makes their
    /// reservation holds indistinguishable — keep labels unique.
    pub label: String,
    /// The workflow to enact.
    pub graph: ProcessGraph,
    /// The case description (initial data, goals, constraints).
    ///
    /// Shared, so a fleet of specs stamped from one workload holds one
    /// description between them and spawning a fiber never deep-copies
    /// the case's condition trees (`my_case.into()` converts an owned
    /// description).
    pub case: Arc<CaseDescription>,
    /// Per-case enactment configuration (recovery ladder included).
    pub config: EnactmentConfig,
    /// Scheduling hints the admission policy reads (priority, tenant,
    /// deadline).  Ignored by FIFO; defaults to neutral values.
    pub hints: CaseHints,
}

/// What became of one submitted case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseOutcome {
    /// The case's label, as submitted.
    pub label: String,
    /// The sealed enactment report.
    pub report: EnactmentReport,
    /// Tick at which the case was admitted; `None` if admission
    /// refused it (no live container could serve it).
    pub admitted_tick: Option<u64>,
    /// Tick at which the case finished (or was refused/aborted).
    pub finished_tick: u64,
    /// Ticks the case spent blocked on reserved-away containers.
    pub blocked_ticks: u64,
}

impl CaseOutcome {
    /// Virtual-tick makespan: admission to finish, inclusive of the
    /// finishing tick.
    ///
    /// **Refused cases return 0**, which is *not* a makespan — a
    /// refused case never ran.  Aggregations (percentiles, means) that
    /// feed zeros in would silently report refusals as instant
    /// completions; use [`CaseOutcome::admitted_makespan_ticks`] and
    /// filter its `None`s instead.
    pub fn makespan_ticks(&self) -> u64 {
        self.admitted_makespan_ticks().unwrap_or(0)
    }

    /// Virtual-tick makespan for cases that actually ran: admission to
    /// finish, inclusive of the finishing tick.  `None` when admission
    /// refused the case — the variant aggregations should filter out
    /// rather than count as zero.
    pub fn admitted_makespan_ticks(&self) -> Option<u64> {
        self.admitted_tick
            .map(|t| self.finished_tick.saturating_sub(t) + 1)
    }
}

/// The whole run's result.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineOutcome {
    /// One outcome per submitted case, in submission order.
    ///
    /// When [`EngineOutcome::killed`] is set, only cases that finished
    /// *before* the kill tick appear here — the rest died with the
    /// simulated process.
    pub cases: Vec<CaseOutcome>,
    /// Ticks the schedule took overall.
    pub ticks: u64,
    /// The run was stopped by [`EngineConfig::kill_at`] rather than
    /// running to completion — a simulated process death at a tick
    /// boundary.
    pub killed: bool,
}

impl EngineOutcome {
    /// Did every admitted case succeed?
    pub fn all_succeeded(&self) -> bool {
        self.cases.iter().all(|c| c.report.success)
    }
}

/// A fiber the scheduler is driving, with its accounting.
struct Slot {
    index: usize,
    fiber: CaseFiber,
    admitted_tick: u64,
    blocked_ticks: u64,
}

/// A live fiber's scheduling state in the event core.
enum WaitState {
    /// In the ready queue: stepped this tick.
    Ready,
    /// Parked on reserved-away capacity until one of its blockers frees
    /// a slot or the world's matchmaking generation changes (its
    /// candidate ranking may then differ).  Under tick-scoped
    /// reservations every hold drains at each tick boundary, so
    /// capacity waiters wake every tick by construction — the wait
    /// set's value is that a woken blocked fiber re-checks contention
    /// in O(candidates) instead of re-deriving its whole step.  An
    /// empty blocker set (recovery-ladder blocks, whose candidate list
    /// is not cacheable) always wakes.
    Capacity { blockers: Vec<String> },
}

/// A [`Slot`] plus its event-core scheduling state.
struct EventSlot {
    slot: Slot,
    wait: WaitState,
}

/// The event core's complete loop state, factored out of the loop so a
/// run can start fresh ([`CaseScheduler::run`]) or resume from a
/// restored [`EngineSnapshot`] ([`CaseScheduler::recover`]) through the
/// *same* code path — recovery re-executes the identical loop, which is
/// what makes the regenerated trace byte-verifiable.
struct EventState {
    waiting: VecDeque<(usize, CaseSpec)>,
    live: Vec<EventSlot>,
    finished: Vec<(usize, CaseOutcome)>,
    tick: u64,
    policy: Box<dyn AdmissionPolicy>,
    /// Committed admissions in order — serialized into snapshots so a
    /// restored run can rebuild the policy's history by replaying
    /// [`AdmissionPolicy::admitted`] calls.
    admissions: Vec<AdmissionRecord>,
    /// Containers whose tick-scoped holds drained at the previous tick
    /// boundary — the wake signal for capacity waiters.
    freed: Vec<String>,
    last_generation: u64,
}

/// The multi-case enactment engine.
///
/// Submit cases with [`CaseScheduler::submit`], then [`run`] them to
/// completion over a shared world.  Admission order is set by
/// [`EngineConfig::policy`] (FIFO in submission order by default); each
/// tick admits waiting cases up to [`EngineConfig::max_in_flight`],
/// steps every live case once in a rotated canonical order (rotation
/// index = tick mod live cases, so no case monopolizes first pick of
/// the tick's capacity), then releases all tick-scoped reservations.
///
/// [`run`]: CaseScheduler::run
pub struct CaseScheduler {
    config: EngineConfig,
    trace: TraceHandle,
    sink: Option<Arc<dyn TraceSink>>,
    pending: Vec<CaseSpec>,
}

impl std::fmt::Debug for CaseScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaseScheduler")
            .field("config", &self.config)
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl CaseScheduler {
    /// An empty scheduler (no tracing).
    pub fn new(config: EngineConfig) -> Self {
        CaseScheduler {
            config,
            trace: TraceHandle::none(),
            sink: None,
            pending: Vec::new(),
        }
    }

    /// Record the run into `sink`.  Engine events carry source
    /// `engine`; each case's enactor events are prefixed
    /// `case:<label>/`, so one merged log holds every case's story and
    /// [`gridflow_telemetry::TraceQuery`] can check cross-case
    /// invariants such as no-double-booking.
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = TraceHandle::from(sink.clone());
        self.sink = Some(sink);
        self
    }

    /// Queue a case for admission.  Order of submission is the default
    /// (FIFO) admission order, every policy's tie-breaker, and the
    /// canonical base order for stepping.
    pub fn submit(&mut self, spec: CaseSpec) {
        self.pending.push(spec);
    }

    /// Enact every submitted case to completion.
    pub fn run(&mut self, world: &mut GridWorld) -> EngineOutcome {
        self.run_with(world, |_, _| {})
    }

    /// Like [`run`](CaseScheduler::run), with a hook called at the top
    /// of every tick (after `TickStarted`, before admission) — the seam
    /// the harness uses to inject mid-schedule faults such as node
    /// loss.
    ///
    /// Dispatches on [`EngineConfig::core`]: the event-driven core
    /// (optionally sharded into a two-phase parallel tick) or the
    /// legacy scan core.  Every core emits byte-identical merged traces
    /// for every `(seed, workload, case count)` — the differential
    /// equivalence suite pins that down.
    pub fn run_with(
        &mut self,
        world: &mut GridWorld,
        on_tick: impl FnMut(u64, &mut GridWorld),
    ) -> EngineOutcome {
        match self.config.core {
            CoreSpec::Scan => self.run_scan(world, on_tick),
            CoreSpec::Event | CoreSpec::Sharded { .. } => self.run_event(world, on_tick),
        }
    }

    /// The legacy scan core: every tick re-derives every fiber's
    /// situation from scratch.  Kept verbatim as the differential
    /// oracle for the event core — do not "improve" it.
    fn run_scan(
        &mut self,
        world: &mut GridWorld,
        mut on_tick: impl FnMut(u64, &mut GridWorld),
    ) -> EngineOutcome {
        let reservations_before = world.reservations_enabled();
        world.enable_reservations(self.config.enforce_reservations);

        let specs = std::mem::take(&mut self.pending);
        let mut waiting: VecDeque<(usize, CaseSpec)> = specs.into_iter().enumerate().collect();
        let mut live: Vec<Slot> = Vec::new();
        let mut finished: Vec<(usize, CaseOutcome)> = Vec::new();
        let mut tick: u64 = 0;
        let mut policy = self.config.policy.build();

        loop {
            self.trace.emit("engine", TraceEvent::TickStarted { tick });
            on_tick(tick, world);

            // Policy-ordered admission, gated on matchmaking: a case
            // none of the live containers can serve is refused outright
            // instead of failing activity-by-activity later.
            while live.len() < self.config.max_in_flight.max(1) {
                let Some((index, spec, why)) = Self::pick_next(policy.as_mut(), &mut waiting, tick)
                else {
                    break;
                };
                match self.admission_gap(world, &spec.graph) {
                    None => {
                        self.trace.emit(
                            "engine",
                            TraceEvent::CaseAdmitted {
                                case: spec.label.clone(),
                                tick,
                                reason: why,
                            },
                        );
                        policy.admitted(&WaitingCase {
                            submitted: index,
                            label: &spec.label,
                            hints: &spec.hints,
                        });
                        let fiber = self.spawn_fiber(&spec);
                        live.push(Slot {
                            index,
                            fiber,
                            admitted_tick: tick,
                            blocked_ticks: 0,
                        });
                    }
                    Some(reason) => {
                        self.trace.emit(
                            "engine",
                            TraceEvent::CaseRejected {
                                case: spec.label.clone(),
                                reason: reason.clone(),
                            },
                        );
                        let mut fiber = self.spawn_fiber(&spec);
                        fiber.abort(format!("admission refused: {reason}"));
                        finished.push((
                            index,
                            CaseOutcome {
                                label: spec.label.clone(),
                                report: fiber.into_report(),
                                admitted_tick: None,
                                finished_tick: tick,
                                blocked_ticks: 0,
                            },
                        ));
                    }
                }
            }

            if live.is_empty() && waiting.is_empty() {
                break;
            }

            // Step every live case once, in canonical order rotated by
            // the tick so first pick of the tick's capacity circulates.
            // `workers` only chunks this already-ordered list — the
            // chunking is order-preserving, so the merged trace cannot
            // depend on it.
            let n = live.len();
            let rotation = (tick as usize) % n.max(1);
            let order: Vec<usize> = (0..n).map(|i| (i + rotation) % n).collect();
            let chunk = n.div_ceil(self.config.workers.max(1));
            let mut done: Vec<usize> = Vec::new();
            for worker_share in order.chunks(chunk.max(1)) {
                for &slot_idx in worker_share {
                    let slot = &mut live[slot_idx];
                    match slot.fiber.step(world) {
                        FiberStatus::Progressed => {}
                        FiberStatus::Blocked { .. } => slot.blocked_ticks += 1,
                        FiberStatus::Finished => done.push(slot_idx),
                    }
                }
            }

            // Retire finished cases (highest slot first so removals
            // don't shift pending indices).
            done.sort_unstable();
            for &slot_idx in done.iter().rev() {
                let slot = live.remove(slot_idx);
                self.trace.emit(
                    "engine",
                    TraceEvent::CaseCompleted {
                        case: slot.fiber.label().to_owned(),
                        success: slot.fiber.report().success,
                    },
                );
                finished.push((
                    slot.index,
                    CaseOutcome {
                        label: slot.fiber.label().to_owned(),
                        report: slot.fiber.into_report(),
                        admitted_tick: Some(slot.admitted_tick),
                        finished_tick: tick,
                        blocked_ticks: slot.blocked_ticks,
                    },
                ));
            }

            // Reservations are tick-scoped: release every hold, in
            // deterministic (container, holder) order.
            for (container, holders) in world.drain_reservations() {
                for case in holders {
                    self.trace.emit(
                        "engine",
                        TraceEvent::SlotReleased {
                            case,
                            container: container.clone(),
                        },
                    );
                }
            }

            tick += 1;
            if tick >= self.config.max_ticks {
                for mut slot in live.drain(..) {
                    slot.fiber.abort(format!(
                        "engine tick budget exhausted after {} ticks",
                        self.config.max_ticks
                    ));
                    self.trace.emit(
                        "engine",
                        TraceEvent::CaseCompleted {
                            case: slot.fiber.label().to_owned(),
                            success: false,
                        },
                    );
                    finished.push((
                        slot.index,
                        CaseOutcome {
                            label: slot.fiber.label().to_owned(),
                            report: slot.fiber.into_report(),
                            admitted_tick: Some(slot.admitted_tick),
                            finished_tick: tick,
                            blocked_ticks: slot.blocked_ticks,
                        },
                    ));
                }
                waiting.clear();
                break;
            }
        }

        world.enable_reservations(reservations_before);
        finished.sort_by_key(|(index, _)| *index);
        EngineOutcome {
            cases: finished.into_iter().map(|(_, c)| c).collect(),
            ticks: tick.max(1),
            killed: false,
        }
    }

    /// The event-driven core: live fibers are classified into a ready
    /// queue and capacity wait-sets.  A blocked fiber parks on the set
    /// of containers it found reserved away; the tick boundary's
    /// reservation drain is the wake signal.  Because reservations are
    /// tick-scoped, every blocker's hold drains every tick, so capacity
    /// waiters always wake — the trace stays byte-identical to the scan
    /// core's (one `CaseBlocked` per blocked tick) while the woken
    /// fiber's re-step is a cheap contention re-check instead of a full
    /// plan/matchmake re-derivation.
    fn run_event(
        &mut self,
        world: &mut GridWorld,
        on_tick: impl FnMut(u64, &mut GridWorld),
    ) -> EngineOutcome {
        let specs = std::mem::take(&mut self.pending);
        let last_generation = world.generation();
        let st = EventState {
            waiting: specs.into_iter().enumerate().collect(),
            live: Vec::new(),
            finished: Vec::new(),
            tick: 0,
            policy: self.config.policy.build(),
            admissions: Vec::new(),
            freed: Vec::new(),
            last_generation,
        };
        self.run_event_loop(world, on_tick, st)
    }

    /// Resume a crashed run from the durable store.
    ///
    /// Loads the latest valid snapshot (schema- and hash-checked — a
    /// future-version snapshot is refused with
    /// [`StoreError::UnsupportedSchema`], mirroring
    /// `EnactmentCheckpoint::validate`), restores the world image onto
    /// `world`, rebuilds every live fiber and the admission policy's
    /// history, and re-enters the event loop at the snapshot's tick.
    /// With no snapshot in the log the run restarts from the submitted
    /// specs (replay-only recovery).  Either way the suffix is
    /// *re-executed*, not skipped: the store byte-verifies every
    /// regenerated event against what it already holds, so a successful
    /// recovery is a proof the rebuilt state matches the crashed run's.
    ///
    /// The caller must have reseeded [`StoreBinding::journal`] at the
    /// snapshot's `journal_seq` (via [`TraceLog::resuming`] and a clock
    /// resumed at the snapshot's reading) — or at 0 for replay-only —
    /// before constructing the scheduler; a mismatch is reported as
    /// [`StoreError::Corrupt`].
    ///
    /// # Panics
    ///
    /// If [`EngineConfig::store`] is `None`.  Recovery runs the
    /// configured [`CoreSpec`] unless it is [`CoreSpec::Scan`] (the
    /// scan oracle has no store support), in which case the event core
    /// runs; traces are core-invariant, so a run snapshotted under one
    /// core recovers byte-identically under another.
    pub fn recover(
        &mut self,
        world: &mut GridWorld,
        on_tick: impl FnMut(u64, &mut GridWorld),
    ) -> StoreResult<EngineOutcome> {
        let binding = self
            .config
            .store
            .clone()
            .expect("CaseScheduler::recover requires EngineConfig::store");
        let snap = binding
            .store
            .lock()
            .expect("store mutex poisoned")
            .latest_snapshot()?;
        let Some(record) = snap else {
            // Replay-only recovery: no snapshot survived, so the run
            // restarts from scratch and the store verifies the whole
            // regenerated prefix against the stored events.
            if binding.journal.next_seq() != 0 {
                return Err(StoreError::Corrupt(format!(
                    "replay-only recovery needs a journal reseeded at 0, got {}",
                    binding.journal.next_seq()
                )));
            }
            let specs = std::mem::take(&mut self.pending);
            let last_generation = world.generation();
            let st = EventState {
                waiting: specs.into_iter().enumerate().collect(),
                live: Vec::new(),
                finished: Vec::new(),
                tick: 0,
                policy: self.config.policy.build(),
                admissions: Vec::new(),
                freed: Vec::new(),
                last_generation,
            };
            return Ok(self.run_event_loop(world, on_tick, st));
        };
        if binding.journal.next_seq() != record.journal_seq {
            return Err(StoreError::Corrupt(format!(
                "journal reseeded at {}, snapshot expects {}",
                binding.journal.next_seq(),
                record.journal_seq
            )));
        }
        let image = EngineSnapshot::from_bytes(&record.state)
            .map_err(|e| StoreError::Corrupt(format!("snapshot payload: {e}")))?;
        if let Err(index) = image.verify_shard_assignments() {
            return Err(StoreError::Corrupt(format!(
                "live case {index} carries a shard assignment inconsistent \
                 with the snapshot's core {:?}",
                image.core
            )));
        }
        if image.next_tick != record.next_tick {
            return Err(StoreError::Corrupt(format!(
                "snapshot payload resumes at tick {} but its record says {}",
                image.next_tick, record.next_tick
            )));
        }
        world
            .restore_image(&image.world)
            .map_err(|e| StoreError::Corrupt(format!("world restore: {e}")))?;
        // The snapshot, not the pending queue, is the truth now.
        self.pending.clear();
        let mut policy = self.config.policy.build();
        for a in &image.admissions {
            policy.admitted(&WaitingCase {
                submitted: a.submitted,
                label: &a.label,
                hints: &a.hints,
            });
        }
        let mut live = Vec::new();
        for slot in image.live {
            let index = slot.index;
            let Some(fiber_image) = slot.fiber.hydrate(&image.blueprints) else {
                return Err(StoreError::Corrupt(format!(
                    "live case {index} references a blueprint past the pool"
                )));
            };
            let trace = self.scoped_trace(&fiber_image.label);
            live.push(EventSlot {
                wait: match slot.blockers {
                    None => WaitState::Ready,
                    Some(blockers) => WaitState::Capacity { blockers },
                },
                slot: Slot {
                    index,
                    fiber: {
                        let mut fiber = CaseFiber::from_image(fiber_image, trace);
                        self.install_plan_cache(&mut fiber);
                        fiber
                    },
                    admitted_tick: slot.admitted_tick,
                    blocked_ticks: slot.blocked_ticks,
                },
            });
        }
        // Re-share each blueprint's description behind one Arc, as the
        // original submissions did.
        let shared: Vec<_> = image
            .blueprints
            .into_iter()
            .map(|b| (b.graph, Arc::new(b.case), b.config))
            .collect();
        let mut waiting = VecDeque::new();
        for w in image.waiting {
            let Some((graph, case, config)) = shared.get(w.blueprint) else {
                return Err(StoreError::Corrupt(format!(
                    "waiting case {} references blueprint {} of {}",
                    w.index,
                    w.blueprint,
                    shared.len()
                )));
            };
            waiting.push_back((
                w.index,
                CaseSpec {
                    label: w.label,
                    graph: graph.clone(),
                    case: case.clone(),
                    config: config.clone(),
                    hints: w.hints,
                },
            ));
        }
        let st = EventState {
            waiting,
            live,
            finished: image
                .finished
                .into_iter()
                .map(|f| (f.index, f.outcome))
                .collect(),
            tick: image.next_tick,
            policy,
            admissions: image.admissions,
            freed: image.freed,
            last_generation: image.last_generation,
        };
        Ok(self.run_event_loop(world, on_tick, st))
    }

    /// The event loop proper, driving an [`EventState`] that is either
    /// fresh or restored from a snapshot.  When a [`StoreBinding`] is
    /// configured, every tick boundary flushes the journal's new
    /// records into the store and every `snapshot_every` ticks captures
    /// an [`EngineSnapshot`]; [`EngineConfig::kill_at`] stops the loop
    /// dead at a tick boundary to simulate a crash.
    fn run_event_loop(
        &mut self,
        world: &mut GridWorld,
        mut on_tick: impl FnMut(u64, &mut GridWorld),
        mut st: EventState,
    ) -> EngineOutcome {
        let reservations_before = world.reservations_enabled();
        world.enable_reservations(self.config.enforce_reservations);

        let binding = self.config.store.clone();
        let mut flush_cursor = binding.as_ref().map_or(0, |b| b.journal.next_seq());
        let mut killed = false;
        // The sharded core's engine-owned match index, rebuilt lazily
        // whenever the world's matchmaking generation moves (container
        // up/down).  The unsharded cores never build it.
        let mut shard_index: Option<ShardedMatchIndex> = None;

        loop {
            // Simulated process death: stop before this tick emits
            // anything, so the durable log holds exactly the ticks
            // `< kill_at` — the state a real crash at the boundary
            // would leave behind.
            if self.config.kill_at == Some(st.tick) {
                killed = true;
                break;
            }

            self.trace
                .emit("engine", TraceEvent::TickStarted { tick: st.tick });
            on_tick(st.tick, world);

            // Policy-ordered admission, identical to the scan core;
            // fresh admissions enter the ready queue.
            while st.live.len() < self.config.max_in_flight.max(1) {
                let Some((index, spec, why)) =
                    Self::pick_next(st.policy.as_mut(), &mut st.waiting, st.tick)
                else {
                    break;
                };
                match self.admission_gap(world, &spec.graph) {
                    None => {
                        self.trace.emit(
                            "engine",
                            TraceEvent::CaseAdmitted {
                                case: spec.label.clone(),
                                tick: st.tick,
                                reason: why,
                            },
                        );
                        st.policy.admitted(&WaitingCase {
                            submitted: index,
                            label: &spec.label,
                            hints: &spec.hints,
                        });
                        st.admissions.push(AdmissionRecord {
                            submitted: index,
                            label: spec.label.clone(),
                            hints: spec.hints.clone(),
                        });
                        let fiber = self.spawn_fiber(&spec);
                        st.live.push(EventSlot {
                            slot: Slot {
                                index,
                                fiber,
                                admitted_tick: st.tick,
                                blocked_ticks: 0,
                            },
                            wait: WaitState::Ready,
                        });
                    }
                    Some(reason) => {
                        self.trace.emit(
                            "engine",
                            TraceEvent::CaseRejected {
                                case: spec.label.clone(),
                                reason: reason.clone(),
                            },
                        );
                        let mut fiber = self.spawn_fiber(&spec);
                        fiber.abort(format!("admission refused: {reason}"));
                        st.finished.push((
                            index,
                            CaseOutcome {
                                label: spec.label.clone(),
                                report: fiber.into_report(),
                                admitted_tick: None,
                                finished_tick: st.tick,
                                blocked_ticks: 0,
                            },
                        ));
                    }
                }
            }

            if st.live.is_empty() && st.waiting.is_empty() {
                break;
            }

            // Wake phase: move capacity waiters whose blockers freed a
            // slot (or whose candidate ranking may have changed) back to
            // the ready queue.
            let generation = world.generation();
            for entry in &mut st.live {
                let wake = match &entry.wait {
                    WaitState::Ready => true,
                    WaitState::Capacity { blockers } => {
                        blockers.is_empty()
                            || generation != st.last_generation
                            || blockers.iter().any(|b| st.freed.contains(b))
                    }
                };
                if wake {
                    entry.wait = WaitState::Ready;
                }
            }

            // Step the ready queue in the canonical order rotated by the
            // tick over the *full* live list, so rotation fairness (and
            // hence the trace) is independent of who happens to be
            // parked.  Worker chunking is order-preserving, as in the
            // scan core.
            let n = st.live.len();
            let rotation = (st.tick as usize) % n.max(1);
            let order: Vec<usize> = (0..n)
                .map(|i| (i + rotation) % n)
                .filter(|&i| matches!(st.live[i].wait, WaitState::Ready))
                .collect();

            // Sharded two-phase tick, phase 1: prepare every ready
            // fiber against the frozen world, shards fanned across
            // `std::thread::scope` workers.  Prepare is semantically
            // invisible — `step` *is* prepare + commit — so neither the
            // shard count, the worker count, nor the inline fallback
            // below can change a byte of the merged trace.
            let mut prepared: Vec<Option<PreparedStep>> = Vec::new();
            if self.config.core.is_sharded() && !order.is_empty() {
                let shards = self.config.core.shards();
                if shard_index.as_ref().map(ShardedMatchIndex::generation)
                    != Some(world.generation())
                {
                    shard_index = Some(ShardedMatchIndex::build(world, shards));
                }
                let index = shard_index.as_ref();
                prepared = (0..n).map(|_| None).collect();
                // Partition the ready fibers by shard — submission
                // index mod shard count, the same striping the match
                // index and snapshot images use — then fold shards onto
                // at most `workers` threads.  Fibers are disjoint
                // across shards, so each thread gets exclusive `&mut`
                // access to its own; the world is shared read-only.
                let mut parts: Vec<Vec<(usize, &mut CaseFiber)>> =
                    (0..shards).map(|_| Vec::new()).collect();
                for (slot_idx, entry) in st.live.iter_mut().enumerate() {
                    if matches!(entry.wait, WaitState::Ready) {
                        parts[entry.slot.index % shards].push((slot_idx, &mut entry.slot.fiber));
                    }
                }
                let busy = parts.iter().filter(|p| !p.is_empty()).count();
                // Below this many ready fibers the ~10-20µs per-thread
                // spawn cost outweighs the parallelism; prepare inline.
                const SPAWN_THRESHOLD: usize = 8;
                let threads = if order.len() < SPAWN_THRESHOLD {
                    1
                } else {
                    self.config.workers.max(1).min(busy.max(1))
                };
                let mut groups: Vec<Vec<(usize, &mut CaseFiber)>> =
                    (0..threads).map(|_| Vec::new()).collect();
                for (shard, part) in parts.into_iter().enumerate() {
                    groups[shard % threads].extend(part);
                }
                let world_ref: &GridWorld = world;
                let prep = |group: Vec<(usize, &mut CaseFiber)>| {
                    group
                        .into_iter()
                        .map(|(slot_idx, fiber)| (slot_idx, fiber.prepare(world_ref, index)))
                        .collect::<Vec<_>>()
                };
                let results: Vec<Vec<(usize, PreparedStep)>> = if threads <= 1 {
                    groups.into_iter().map(prep).collect()
                } else {
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = groups
                            .into_iter()
                            .map(|group| scope.spawn(|| prep(group)))
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("prepare worker panicked"))
                            .collect()
                    })
                };
                for (slot_idx, step) in results.into_iter().flatten() {
                    prepared[slot_idx] = Some(step);
                }
            }

            // Phase 2 (and the unsharded cores' whole step loop):
            // commit in the canonical rotated order, sequentially, so
            // the merged trace is independent of shard and worker
            // counts.
            let mut done: Vec<usize> = Vec::new();
            for &slot_idx in &order {
                let entry = &mut st.live[slot_idx];
                let status = match prepared.get_mut(slot_idx).and_then(Option::take) {
                    Some(step) => entry.slot.fiber.step_prepared(world, step),
                    None => entry.slot.fiber.step(world),
                };
                match status {
                    FiberStatus::Progressed => entry.wait = WaitState::Ready,
                    FiberStatus::Blocked { .. } => {
                        entry.slot.blocked_ticks += 1;
                        entry.wait = WaitState::Capacity {
                            blockers: entry
                                .slot
                                .fiber
                                .blocked_on()
                                .map(<[String]>::to_vec)
                                .unwrap_or_default(),
                        };
                    }
                    FiberStatus::Finished => done.push(slot_idx),
                }
            }

            // Retire finished cases (highest slot first so removals
            // don't shift pending indices).
            done.sort_unstable();
            for &slot_idx in done.iter().rev() {
                let slot = st.live.remove(slot_idx).slot;
                self.trace.emit(
                    "engine",
                    TraceEvent::CaseCompleted {
                        case: slot.fiber.label().to_owned(),
                        success: slot.fiber.report().success,
                    },
                );
                st.finished.push((
                    slot.index,
                    CaseOutcome {
                        label: slot.fiber.label().to_owned(),
                        report: slot.fiber.into_report(),
                        admitted_tick: Some(slot.admitted_tick),
                        finished_tick: st.tick,
                        blocked_ticks: slot.blocked_ticks,
                    },
                ));
            }

            // Drain the tick's reservations and remember which
            // containers freed capacity — next tick's wake signal.
            st.freed.clear();
            for (container, holders) in world.drain_reservations() {
                for case in holders {
                    self.trace.emit(
                        "engine",
                        TraceEvent::SlotReleased {
                            case,
                            container: container.clone(),
                        },
                    );
                }
                st.freed.push(container);
            }
            st.last_generation = world.generation();

            // Durable boundary: everything emitted through the end of
            // this tick reaches the store before the next tick starts.
            if let Some(b) = &binding {
                Self::flush_events(b, &mut flush_cursor);
            }

            st.tick += 1;
            if st.tick >= self.config.max_ticks {
                for entry in st.live.drain(..) {
                    let mut slot = entry.slot;
                    slot.fiber.abort(format!(
                        "engine tick budget exhausted after {} ticks",
                        self.config.max_ticks
                    ));
                    self.trace.emit(
                        "engine",
                        TraceEvent::CaseCompleted {
                            case: slot.fiber.label().to_owned(),
                            success: false,
                        },
                    );
                    st.finished.push((
                        slot.index,
                        CaseOutcome {
                            label: slot.fiber.label().to_owned(),
                            report: slot.fiber.into_report(),
                            admitted_tick: Some(slot.admitted_tick),
                            finished_tick: st.tick,
                            blocked_ticks: slot.blocked_ticks,
                        },
                    ));
                }
                st.waiting.clear();
                break;
            }

            // Snapshot cadence.  Placed after the budget check so a
            // snapshot never points a restored run at a tick the loop
            // would refuse to start; journal_seq equals the flush
            // cursor, so every event the snapshot assumes is already
            // durable.  During recovery the same snapshots are
            // regenerated and verified as duplicates — another equality
            // proof, this time over the full engine state.
            if let Some(b) = &binding {
                if b.snapshot_every > 0 && st.tick.is_multiple_of(b.snapshot_every) {
                    let (clock_ticks, clock_s) = b.journal.clock_now();
                    let image = Self::capture_snapshot(self.config.core, &st, world);
                    let record = SnapshotRecord::new(
                        st.tick,
                        flush_cursor,
                        clock_ticks,
                        clock_s,
                        image.to_bytes(),
                    );
                    b.store
                        .lock()
                        .expect("store mutex poisoned")
                        .snapshot(record)
                        .unwrap_or_else(|e| {
                            panic!("durable store rejected an engine snapshot: {e}")
                        });
                }
            }
        }

        // A killed run deliberately loses its unflushed tail — that is
        // the crash being simulated.  Every other exit flushes the
        // final events (completion or budget-abort records).
        if !killed {
            if let Some(b) = &binding {
                Self::flush_events(b, &mut flush_cursor);
            }
        }

        world.enable_reservations(reservations_before);
        st.finished.sort_by_key(|(index, _)| *index);
        EngineOutcome {
            cases: st.finished.into_iter().map(|(_, c)| c).collect(),
            ticks: st.tick.max(1),
            killed,
        }
    }

    /// Append every journal record at or past the cursor to the store,
    /// advancing the cursor.  Store rejections are programming errors
    /// (a divergence here means determinism itself broke), so they
    /// panic rather than limp on with a corrupt log.
    fn flush_events(binding: &StoreBinding, cursor: &mut u64) {
        let records = binding.journal.records_from(*cursor);
        let Some(last) = records.last() else {
            return;
        };
        *cursor = last.seq + 1;
        binding
            .store
            .lock()
            .expect("store mutex poisoned")
            .append(&records)
            .unwrap_or_else(|e| panic!("durable store rejected a journal flush: {e}"));
    }

    /// Freeze the loop state into its serializable image.  Waiting
    /// specs are interned through a [`BlueprintPool`] so the shared
    /// workload is stored once, not once per waiting case.  Under a
    /// sharded core each live slot records its shard assignment
    /// (`index mod shards`) so recovery can prove the assignment
    /// round-tripped.
    fn capture_snapshot(core: CoreSpec, st: &EventState, world: &GridWorld) -> EngineSnapshot {
        let mut pool = BlueprintPool::default();
        let waiting = st
            .waiting
            .iter()
            .map(|(index, spec)| WaitingImage {
                index: *index,
                label: spec.label.clone(),
                hints: spec.hints.clone(),
                blueprint: pool.intern(spec),
            })
            .collect();
        let live = st
            .live
            .iter()
            .map(|entry| SlotImage {
                index: entry.slot.index,
                admitted_tick: entry.slot.admitted_tick,
                blocked_ticks: entry.slot.blocked_ticks,
                blockers: match &entry.wait {
                    WaitState::Ready => None,
                    WaitState::Capacity { blockers } => Some(blockers.clone()),
                },
                shard: core.is_sharded().then(|| entry.slot.index % core.shards()),
                fiber: pool.slim(entry.slot.fiber.image()),
            })
            .collect();
        EngineSnapshot {
            version: crate::snapshot::ENGINE_SNAPSHOT_VERSION,
            core,
            next_tick: st.tick,
            blueprints: pool.into_entries(),
            waiting,
            live,
            finished: st
                .finished
                .iter()
                .map(|(index, outcome)| FinishedImage {
                    index: *index,
                    outcome: outcome.clone(),
                })
                .collect(),
            admissions: st.admissions.clone(),
            freed: st.freed.clone(),
            last_generation: st.last_generation,
            world: world.image(),
        }
    }

    /// The admission policy's next pick, removed from the waiting queue
    /// and returned with its admission reason.  `None` ends admission
    /// for the tick (queue empty, or the policy declined).
    fn pick_next(
        policy: &mut dyn AdmissionPolicy,
        waiting: &mut VecDeque<(usize, CaseSpec)>,
        tick: u64,
    ) -> Option<(usize, CaseSpec, Option<String>)> {
        // FIFO fast path: the default policy always takes the queue
        // head with no reason, so building the O(waiting) borrowed view
        // per admission — O(fleet²) over a large fleet's admission
        // phase — is pure waste.  Pop the head directly.
        if policy.is_fifo() {
            let (index, spec) = waiting.pop_front()?;
            return Some((index, spec, None));
        }
        let admission = {
            let view: Vec<WaitingCase<'_>> = waiting
                .iter()
                .map(|(index, spec)| WaitingCase {
                    submitted: *index,
                    label: &spec.label,
                    hints: &spec.hints,
                })
                .collect();
            policy.next(&view, tick)?
        };
        let (index, spec) = waiting
            .remove(admission.pos)
            .expect("policy picked an out-of-range waiting position");
        Some((index, spec, admission.reason))
    }

    /// `None` when matchmaking can place every end-user service of
    /// `graph` on a live container; otherwise the first gap found.
    fn admission_gap(&self, world: &GridWorld, graph: &ProcessGraph) -> Option<String> {
        for a in graph
            .activities()
            .iter()
            .filter(|a| a.kind == ActivityKind::EndUser)
        {
            let service = a.service.clone().unwrap_or_else(|| a.id.clone());
            match matchmake(world, &MatchRequest::for_service(&service)) {
                Ok(candidates) if !candidates.is_empty() => {}
                Ok(_) => {
                    return Some(format!(
                        "no live candidate container for service `{service}`"
                    ))
                }
                Err(e) => return Some(e.to_string()),
            }
        }
        None
    }

    /// A trace handle scoped `case:<label>/…` in the merged log (no-op
    /// when the scheduler is untraced).
    fn scoped_trace(&self, label: &str) -> TraceHandle {
        match &self.sink {
            Some(sink) => TraceHandle::from(Arc::new(ScopedSink::new(
                format!("case:{label}"),
                sink.clone(),
            )) as Arc<dyn TraceSink>),
            None => TraceHandle::none(),
        }
    }

    /// A fiber whose trace events are scoped `case:<label>/…` in the
    /// merged log (no-op when the scheduler is untraced).
    fn spawn_fiber(&self, spec: &CaseSpec) -> CaseFiber {
        let mut fiber = CaseFiber::new(
            spec.config.clone(),
            self.scoped_trace(&spec.label),
            &spec.graph,
            spec.case.clone(),
            spec.label.clone(),
        );
        self.install_plan_cache(&mut fiber);
        fiber
    }

    /// Hands the engine's shared plan cache (when configured) to a fiber so
    /// every replan across the fleet goes through the same content-addressed
    /// store and single-flight latch.
    fn install_plan_cache(&self, fiber: &mut CaseFiber) {
        if let Some(cache) = &self.config.plan_cache {
            fiber.set_plan_cache(cache.clone());
        }
    }
}
