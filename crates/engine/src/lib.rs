//! Concurrent multi-case enactment for the GridFlow stack.
//!
//! The paper's coordination services "act as proxies for the end-user"
//! — plural: a grid hosts many end-users at once, so many cases enact
//! concurrently over the *same* containers, competing for the same
//! capacity.  The seed repo's [`gridflow_services::Enactor`] drives one
//! case to completion; this crate adds the missing layer above it.
//!
//! [`CaseScheduler`] interleaves N resumable
//! [`gridflow_services::CaseFiber`]s over one shared
//! [`gridflow_services::GridWorld`] in discrete *virtual ticks*.  Each
//! tick every live case advances by at most one activity; tick-scoped
//! container reservations arbitrate contention (a case that finds every
//! candidate reserved is *blocked*, not failed, and retries next tick);
//! admission control re-uses the matchmaking service to refuse cases no
//! live container can serve.
//!
//! Determinism is the design constraint, not an afterthought: the
//! scheduler is logically single-threaded, cases step in a canonical
//! rotated order that is a pure function of the tick, and the
//! [`EngineConfig::workers`] knob only changes how the already-ordered
//! step list is chunked.  A given seed therefore produces a
//! byte-identical merged JSONL trace regardless of worker count — the
//! invariant the engine conformance suite pins.

#![warn(missing_docs)]

pub mod policy;
pub mod scheduler;
pub mod snapshot;

pub use policy::{
    Admission, AdmissionPolicy, CaseHints, Deadline, FairShare, Fifo, PolicySpec, Priority,
    WaitingCase,
};
pub use scheduler::{
    CaseOutcome, CaseScheduler, CaseSpec, EngineConfig, EngineOutcome, StoreBinding,
};
pub use snapshot::{
    AdmissionRecord, BlueprintPool, CaseBlueprint, EngineSnapshot, FinishedImage, SlotImage,
    WaitingImage,
};
