//! Concurrent multi-case enactment for the GridFlow stack.
//!
//! The paper's coordination services "act as proxies for the end-user"
//! — plural: a grid hosts many end-users at once, so many cases enact
//! concurrently over the *same* containers, competing for the same
//! capacity.  The seed repo's [`gridflow_services::Enactor`] drives one
//! case to completion; this crate adds the missing layer above it.
//!
//! [`CaseScheduler`] interleaves N resumable
//! [`gridflow_services::CaseFiber`]s over one shared
//! [`gridflow_services::GridWorld`] in discrete *virtual ticks*.  Each
//! tick every live case advances by at most one activity; tick-scoped
//! container reservations arbitrate contention (a case that finds every
//! candidate reserved is *blocked*, not failed, and retries next tick);
//! admission control re-uses the matchmaking service to refuse cases no
//! live container can serve.
//!
//! Determinism is the design constraint, not an afterthought: world
//! state always commits in a canonical rotated order that is a pure
//! function of the tick.  Under [`CoreSpec::Sharded`] each tick runs in
//! two phases — a parallel *prepare* over shard-partitioned fibers
//! against a read-only world snapshot, then a sequential *commit* in
//! canonical order that re-validates each speculation — so the
//! [`EngineConfig::workers`] knob changes wall-clock time only.  A
//! given seed therefore produces a byte-identical merged JSONL trace at
//! any `(shards, workers)` combination and on every core — the
//! invariant the engine conformance suite pins.

#![warn(missing_docs)]

pub mod policy;
pub mod scheduler;
pub mod snapshot;

pub use policy::{
    Admission, AdmissionPolicy, CaseHints, Deadline, FairShare, Fifo, PolicySpec, Priority,
    WaitingCase,
};
pub use scheduler::{
    CaseOutcome, CaseScheduler, CaseSpec, CoreSpec, EngineConfig, EngineOutcome, StoreBinding,
};
pub use snapshot::{
    AdmissionRecord, BlueprintPool, CaseBlueprint, EngineSnapshot, FinishedImage, SlotImage,
    WaitingImage, ENGINE_SNAPSHOT_VERSION,
};
