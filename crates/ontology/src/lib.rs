//! # gridflow-ontology
//!
//! A frame-based ontology / knowledge-base substrate, in the style of
//! Protégé-2000, as used by the GridFlow reproduction of *"Metainformation
//! and Workflow Management for Solving Complex Problems in Grid
//! Environments"* (Yu et al., IPDPS 2004).
//!
//! The paper keeps all metainformation manipulated by its agents in
//! **ontologies**: collections of *classes* with *slots* (typed, faceted
//! attributes) and *instances* that populate those classes.  The ontology
//! service of the paper distributes *ontology shells* (classes and slots but
//! no instances) as well as populated ontologies.  The original used the
//! Java-based Protégé tool; since no comparable frame-ontology ecosystem
//! exists in Rust, this crate provides the substrate from scratch:
//!
//! * [`Value`] — the dynamic value space slots range over;
//! * [`SlotDef`] / [`Facets`] — slot definitions with validation facets
//!   (value type, cardinality, required, allowed values, numeric bounds,
//!   instance-class ranges);
//! * [`ClassDef`] — classes with single inheritance;
//! * [`Instance`] — frames populating classes;
//! * [`KnowledgeBase`] — the store: class taxonomy, instance catalog,
//!   effective-slot resolution, validation, shells, JSON persistence;
//! * [`Query`] — a small conjunctive/disjunctive query engine over
//!   instances, used by the information and matchmaking services;
//! * [`schema`] — the concrete grid ontology of the paper's Figure 12
//!   (Task, ProcessDescription, CaseDescription, Activity, Transition,
//!   Data, Service, Resource, Hardware, Software).
//!
//! ## Example
//!
//! ```
//! use gridflow_ontology::{KnowledgeBase, ClassDef, SlotDef, ValueType, Value, Instance};
//!
//! let mut kb = KnowledgeBase::new("demo");
//! kb.add_class(
//!     ClassDef::new("Data")
//!         .with_slot(SlotDef::required("Name", ValueType::Str))
//!         .with_slot(SlotDef::optional("Size", ValueType::Int)),
//! ).unwrap();
//! let inst = Instance::new("D1", "Data")
//!     .with("Name", Value::str("2D image stack"))
//!     .with("Size", Value::Int(1_500_000_000));
//! kb.add_instance(inst).unwrap();
//! assert_eq!(kb.instances_of("Data").count(), 1);
//! ```

#![warn(missing_docs)]

pub mod class;
pub mod error;
pub mod facet;
pub mod instance;
pub mod kb;
pub mod query;
pub mod schema;
pub mod slot;
pub mod value;

pub use class::ClassDef;
pub use error::{OntologyError, Result};
pub use facet::{Cardinality, Facets};
pub use instance::Instance;
pub use kb::KnowledgeBase;
pub use query::{Query, SlotCond};
pub use slot::SlotDef;
pub use value::{Value, ValueType};
