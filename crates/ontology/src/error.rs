//! Error type shared by all knowledge-base operations.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, OntologyError>;

/// Errors raised by knowledge-base operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OntologyError {
    /// A class with the same name is already defined.
    DuplicateClass(String),
    /// The referenced class does not exist in the knowledge base.
    UnknownClass(String),
    /// An instance with the same identifier already exists.
    DuplicateInstance(String),
    /// The referenced instance does not exist in the knowledge base.
    UnknownInstance(String),
    /// A slot referenced by an instance is not defined on (or inherited by)
    /// its class.
    UnknownSlot {
        /// Class the lookup was performed on.
        class: String,
        /// Slot that could not be resolved.
        slot: String,
    },
    /// A required slot carries no value.
    MissingRequiredSlot {
        /// Instance that failed validation.
        instance: String,
        /// The required slot with no value.
        slot: String,
    },
    /// A value violates one of the facets of its slot.
    FacetViolation {
        /// Instance that failed validation.
        instance: String,
        /// Slot whose facet was violated.
        slot: String,
        /// Human-readable description of the violated facet.
        reason: String,
    },
    /// A cycle was detected in the class hierarchy.
    InheritanceCycle(String),
    /// The parent class referenced by a class definition does not exist.
    UnknownParent {
        /// Class whose parent is missing.
        class: String,
        /// The missing parent.
        parent: String,
    },
    /// An abstract class cannot be instantiated directly.
    AbstractClass(String),
    /// Attempted to remove a class that still has instances or subclasses.
    ClassInUse(String),
    /// Serialization / deserialization failure.
    Serde(String),
}

impl fmt::Display for OntologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateClass(c) => write!(f, "class `{c}` is already defined"),
            Self::UnknownClass(c) => write!(f, "unknown class `{c}`"),
            Self::DuplicateInstance(i) => write!(f, "instance `{i}` is already defined"),
            Self::UnknownInstance(i) => write!(f, "unknown instance `{i}`"),
            Self::UnknownSlot { class, slot } => {
                write!(f, "class `{class}` has no slot `{slot}`")
            }
            Self::MissingRequiredSlot { instance, slot } => {
                write!(f, "instance `{instance}` is missing required slot `{slot}`")
            }
            Self::FacetViolation {
                instance,
                slot,
                reason,
            } => write!(
                f,
                "instance `{instance}` slot `{slot}` violates facet: {reason}"
            ),
            Self::InheritanceCycle(c) => {
                write!(f, "inheritance cycle detected through class `{c}`")
            }
            Self::UnknownParent { class, parent } => {
                write!(f, "class `{class}` references unknown parent `{parent}`")
            }
            Self::AbstractClass(c) => {
                write!(f, "class `{c}` is abstract and cannot be instantiated")
            }
            Self::ClassInUse(c) => {
                write!(f, "class `{c}` still has instances or subclasses")
            }
            Self::Serde(msg) => write!(f, "serialization error: {msg}"),
        }
    }
}

impl std::error::Error for OntologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = OntologyError::UnknownSlot {
            class: "Data".into(),
            slot: "Sizee".into(),
        };
        assert_eq!(e.to_string(), "class `Data` has no slot `Sizee`");
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&OntologyError::UnknownClass("X".into()));
    }

    #[test]
    fn facet_violation_mentions_all_parts() {
        let e = OntologyError::FacetViolation {
            instance: "D1".into(),
            slot: "Size".into(),
            reason: "value 12 below minimum 100".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("D1"));
        assert!(msg.contains("Size"));
        assert!(msg.contains("below minimum"));
    }
}
