//! The knowledge base: class taxonomy plus instance catalog.
//!
//! The paper's ontology service "maintains and distributes ontology shells
//! (i.e., ontologies with classes and slots but without instances) as well
//! as ontologies populated with instances, global ontologies, and
//! user-specific ontologies".  [`KnowledgeBase`] is that artifact: it can be
//! a shell (no instances) or populated, it validates instances against the
//! faceted class definitions, resolves inherited slots, answers taxonomy
//! and membership queries, and round-trips through JSON for the persistent
//! storage service.

use crate::class::ClassDef;
use crate::error::{OntologyError, Result};
use crate::instance::Instance;
use crate::slot::SlotDef;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A named collection of classes and instances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnowledgeBase {
    /// Name of the ontology (e.g. `"grid-core"` or a user-specific name).
    pub name: String,
    classes: BTreeMap<String, ClassDef>,
    instances: BTreeMap<String, Instance>,
}

impl KnowledgeBase {
    /// An empty knowledge base.
    pub fn new(name: impl Into<String>) -> Self {
        KnowledgeBase {
            name: name.into(),
            classes: BTreeMap::new(),
            instances: BTreeMap::new(),
        }
    }

    // ------------------------------------------------------------------
    // Classes
    // ------------------------------------------------------------------

    /// Add a class definition.
    ///
    /// Fails if a class with the same name exists, if the declared parent is
    /// unknown, or if adding the class would create an inheritance cycle
    /// (impossible when the parent must pre-exist, but checked defensively
    /// for the benefit of [`Self::replace_class`]).
    pub fn add_class(&mut self, class: ClassDef) -> Result<()> {
        if self.classes.contains_key(&class.name) {
            return Err(OntologyError::DuplicateClass(class.name));
        }
        if let Some(parent) = &class.parent {
            if !self.classes.contains_key(parent) {
                return Err(OntologyError::UnknownParent {
                    class: class.name.clone(),
                    parent: parent.clone(),
                });
            }
        }
        self.classes.insert(class.name.clone(), class);
        Ok(())
    }

    /// Replace an existing class definition (e.g. to evolve an ontology).
    ///
    /// The parent must exist and the replacement must not introduce a cycle.
    /// Existing instances are *not* revalidated automatically; call
    /// [`Self::validate_all`] after a schema change.
    pub fn replace_class(&mut self, class: ClassDef) -> Result<()> {
        if !self.classes.contains_key(&class.name) {
            return Err(OntologyError::UnknownClass(class.name));
        }
        if let Some(parent) = &class.parent {
            if !self.classes.contains_key(parent) && parent != &class.name {
                return Err(OntologyError::UnknownParent {
                    class: class.name.clone(),
                    parent: parent.clone(),
                });
            }
        }
        let name = class.name.clone();
        let old = self.classes.insert(name.clone(), class);
        if self.has_cycle(&name) {
            // Roll back.
            match old {
                Some(old) => {
                    self.classes.insert(name.clone(), old);
                }
                None => {
                    self.classes.remove(&name);
                }
            }
            return Err(OntologyError::InheritanceCycle(name));
        }
        Ok(())
    }

    fn has_cycle(&self, start: &str) -> bool {
        let mut seen = vec![start.to_owned()];
        let mut current = start;
        while let Some(parent) = self.classes.get(current).and_then(|c| c.parent.as_deref()) {
            if seen.iter().any(|s| s == parent) {
                return true;
            }
            seen.push(parent.to_owned());
            current = parent;
        }
        false
    }

    /// Remove a class.  Fails if the class still has instances or
    /// subclasses.
    pub fn remove_class(&mut self, name: &str) -> Result<ClassDef> {
        if !self.classes.contains_key(name) {
            return Err(OntologyError::UnknownClass(name.to_owned()));
        }
        let has_subclass = self
            .classes
            .values()
            .any(|c| c.parent.as_deref() == Some(name));
        let has_instance = self.instances.values().any(|i| i.class == name);
        if has_subclass || has_instance {
            return Err(OntologyError::ClassInUse(name.to_owned()));
        }
        Ok(self.classes.remove(name).expect("checked above"))
    }

    /// Look up a class definition.
    pub fn class(&self, name: &str) -> Option<&ClassDef> {
        self.classes.get(name)
    }

    /// Iterate over all class definitions in name order.
    pub fn classes(&self) -> impl Iterator<Item = &ClassDef> {
        self.classes.values()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Is `class` equal to `ancestor` or a (transitive) subclass of it?
    pub fn is_subclass_of(&self, class: &str, ancestor: &str) -> bool {
        let mut current = Some(class);
        let mut hops = 0usize;
        while let Some(name) = current {
            if name == ancestor {
                return true;
            }
            current = self.classes.get(name).and_then(|c| c.parent.as_deref());
            hops += 1;
            if hops > self.classes.len() {
                return false; // defensive: corrupt hierarchy
            }
        }
        false
    }

    /// The effective slots of a class: inherited slots first (root-most
    /// ancestor first), overridden by name by more-derived declarations.
    pub fn effective_slots(&self, class: &str) -> Result<Vec<&SlotDef>> {
        if !self.classes.contains_key(class) {
            return Err(OntologyError::UnknownClass(class.to_owned()));
        }
        // Collect the ancestry chain from root to leaf.
        let mut chain = Vec::new();
        let mut current = Some(class);
        while let Some(name) = current {
            let def = self
                .classes
                .get(name)
                .ok_or_else(|| OntologyError::UnknownClass(name.to_owned()))?;
            chain.push(def);
            current = def.parent.as_deref();
            if chain.len() > self.classes.len() {
                return Err(OntologyError::InheritanceCycle(class.to_owned()));
            }
        }
        chain.reverse();
        let mut slots: Vec<&SlotDef> = Vec::new();
        for def in chain {
            for slot in &def.slots {
                if let Some(existing) = slots.iter_mut().find(|s| s.name == slot.name) {
                    *existing = slot; // derived class overrides
                } else {
                    slots.push(slot);
                }
            }
        }
        Ok(slots)
    }

    /// Find the effective slot `slot` on `class`, searching the ancestry.
    pub fn resolve_slot(&self, class: &str, slot: &str) -> Result<&SlotDef> {
        let slots = self.effective_slots(class)?;
        slots
            .into_iter()
            .find(|s| s.name == slot)
            .ok_or_else(|| OntologyError::UnknownSlot {
                class: class.to_owned(),
                slot: slot.to_owned(),
            })
    }

    // ------------------------------------------------------------------
    // Instances
    // ------------------------------------------------------------------

    /// Add an instance after validating it; slots with defaults that the
    /// instance omits are filled in from the class definition.
    pub fn add_instance(&mut self, mut instance: Instance) -> Result<()> {
        if self.instances.contains_key(&instance.id) {
            return Err(OntologyError::DuplicateInstance(instance.id));
        }
        self.apply_defaults(&mut instance)?;
        self.validate_instance(&instance)?;
        self.instances.insert(instance.id.clone(), instance);
        Ok(())
    }

    fn apply_defaults(&self, instance: &mut Instance) -> Result<()> {
        let defaults: Vec<(String, Value)> = self
            .effective_slots(&instance.class)?
            .into_iter()
            .filter(|s| !instance.values.contains_key(&s.name))
            .filter_map(|s| s.facets.default.clone().map(|d| (s.name.clone(), d)))
            .collect();
        for (name, value) in defaults {
            instance.values.insert(name, value);
        }
        Ok(())
    }

    /// Validate an instance against its class without storing it.
    pub fn validate_instance(&self, instance: &Instance) -> Result<()> {
        let class = self
            .classes
            .get(&instance.class)
            .ok_or_else(|| OntologyError::UnknownClass(instance.class.clone()))?;
        if class.is_abstract {
            return Err(OntologyError::AbstractClass(class.name.clone()));
        }
        let slots = self.effective_slots(&instance.class)?;
        // Required slots must be present.
        for slot in &slots {
            if slot.facets.required && !instance.values.contains_key(&slot.name) {
                return Err(OntologyError::MissingRequiredSlot {
                    instance: instance.id.clone(),
                    slot: slot.name.clone(),
                });
            }
        }
        // All present values must belong to a known slot and satisfy facets.
        for (name, value) in &instance.values {
            let slot = slots.iter().find(|s| &s.name == name).ok_or_else(|| {
                OntologyError::UnknownSlot {
                    class: instance.class.clone(),
                    slot: name.clone(),
                }
            })?;
            slot.facets
                .check(value)
                .map_err(|reason| OntologyError::FacetViolation {
                    instance: instance.id.clone(),
                    slot: name.clone(),
                    reason,
                })?;
            if let Some(ref_class) = &slot.facets.ref_class {
                self.check_ref_class(instance, &slot.name, value, ref_class)?;
            }
        }
        Ok(())
    }

    /// Reference-class facet check: every referenced instance that is
    /// *present in this KB* must belong to `ref_class` or a subclass.
    /// Dangling references are tolerated (ontologies are assembled
    /// piecewise and merged; see [`Self::dangling_refs`] to audit them).
    fn check_ref_class(
        &self,
        instance: &Instance,
        slot: &str,
        value: &Value,
        ref_class: &str,
    ) -> Result<()> {
        let ids: Vec<&str> = match value {
            Value::Ref(id) => vec![id.as_str()],
            Value::List(items) => items.iter().filter_map(Value::as_ref_id).collect(),
            _ => Vec::new(),
        };
        for id in ids {
            if let Some(target) = self.instances.get(id) {
                if !self.is_subclass_of(&target.class, ref_class) {
                    return Err(OntologyError::FacetViolation {
                        instance: instance.id.clone(),
                        slot: slot.to_owned(),
                        reason: format!(
                            "referenced instance `{id}` has class `{}`, expected `{ref_class}`",
                            target.class
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Re-validate every stored instance (e.g. after schema evolution).
    /// Returns all errors rather than stopping at the first.
    pub fn validate_all(&self) -> Vec<OntologyError> {
        self.instances
            .values()
            .filter_map(|i| self.validate_instance(i).err())
            .collect()
    }

    /// Instance ids referenced by some slot but absent from the KB.
    pub fn dangling_refs(&self) -> Vec<(String, String, String)> {
        let mut out = Vec::new();
        for inst in self.instances.values() {
            for (slot, value) in &inst.values {
                let ids: Vec<&str> = match value {
                    Value::Ref(id) => vec![id.as_str()],
                    Value::List(items) => items.iter().filter_map(Value::as_ref_id).collect(),
                    _ => Vec::new(),
                };
                for id in ids {
                    if !self.instances.contains_key(id) {
                        out.push((inst.id.clone(), slot.clone(), id.to_owned()));
                    }
                }
            }
        }
        out
    }

    /// Look up an instance by id.
    pub fn instance(&self, id: &str) -> Option<&Instance> {
        self.instances.get(id)
    }

    /// Mutably look up an instance by id.
    ///
    /// Mutations bypass validation for efficiency (the coordination service
    /// updates `Status` slots at every workflow step); call
    /// [`Self::validate_all`] to audit.
    pub fn instance_mut(&mut self, id: &str) -> Option<&mut Instance> {
        self.instances.get_mut(id)
    }

    /// Update a single slot of a stored instance, with validation.
    pub fn update_slot(&mut self, id: &str, slot: &str, value: Value) -> Result<()> {
        let inst = self
            .instances
            .get(id)
            .ok_or_else(|| OntologyError::UnknownInstance(id.to_owned()))?;
        let mut updated = inst.clone();
        updated.set(slot, value);
        self.validate_instance(&updated)?;
        self.instances.insert(id.to_owned(), updated);
        Ok(())
    }

    /// Remove an instance, returning it.
    pub fn remove_instance(&mut self, id: &str) -> Result<Instance> {
        self.instances
            .remove(id)
            .ok_or_else(|| OntologyError::UnknownInstance(id.to_owned()))
    }

    /// Iterate over all instances in id order.
    pub fn instances(&self) -> impl Iterator<Item = &Instance> {
        self.instances.values()
    }

    /// Iterate over the instances of `class` *or any of its subclasses*.
    pub fn instances_of<'a>(&'a self, class: &'a str) -> impl Iterator<Item = &'a Instance> + 'a {
        self.instances
            .values()
            .filter(move |i| self.is_subclass_of(&i.class, class))
    }

    /// Number of instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Is this a shell (classes and slots but no instances)?
    pub fn is_shell(&self) -> bool {
        self.instances.is_empty()
    }

    /// A shell copy: same classes, no instances.  This is what the ontology
    /// service hands out to end-users who then populate it.
    pub fn shell(&self) -> KnowledgeBase {
        KnowledgeBase {
            name: format!("{}-shell", self.name),
            classes: self.classes.clone(),
            instances: BTreeMap::new(),
        }
    }

    /// Merge another knowledge base into this one.
    ///
    /// Classes present in both must be identical; instances must not
    /// collide.  This is how a populated user ontology is combined with the
    /// global grid ontology.
    pub fn merge(&mut self, other: &KnowledgeBase) -> Result<()> {
        for class in other.classes.values() {
            match self.classes.get(&class.name) {
                None => {
                    self.classes.insert(class.name.clone(), class.clone());
                }
                Some(existing) if existing == class => {}
                Some(_) => return Err(OntologyError::DuplicateClass(class.name.clone())),
            }
        }
        for inst in other.instances.values() {
            if self.instances.contains_key(&inst.id) {
                return Err(OntologyError::DuplicateInstance(inst.id.clone()));
            }
        }
        for inst in other.instances.values() {
            self.instances.insert(inst.id.clone(), inst.clone());
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Persistence
    // ------------------------------------------------------------------

    /// Serialize to pretty JSON (persistent-storage wire format).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| OntologyError::Serde(e.to_string()))
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> Result<KnowledgeBase> {
        serde_json::from_str(json).map_err(|e| OntologyError::Serde(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slot::SlotDef;
    use crate::value::ValueType;

    fn kb_with_data_class() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new("test");
        kb.add_class(
            ClassDef::new("Data")
                .with_slot(SlotDef::required("Name", ValueType::Str))
                .with_slot(SlotDef::optional("Size", ValueType::Int).with_range(Some(0.0), None))
                .with_slot(
                    SlotDef::optional("Format", ValueType::Str).with_default(Value::str("Text")),
                ),
        )
        .unwrap();
        kb
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut kb = kb_with_data_class();
        let err = kb.add_class(ClassDef::new("Data")).unwrap_err();
        assert_eq!(err, OntologyError::DuplicateClass("Data".into()));
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut kb = KnowledgeBase::new("t");
        let err = kb
            .add_class(ClassDef::new("Child").with_parent("Nope"))
            .unwrap_err();
        assert!(matches!(err, OntologyError::UnknownParent { .. }));
    }

    #[test]
    fn instance_validation_happy_path_and_defaults() {
        let mut kb = kb_with_data_class();
        kb.add_instance(Instance::new("D1", "Data").with("Name", Value::str("img")))
            .unwrap();
        let d1 = kb.instance("D1").unwrap();
        assert_eq!(d1.get_str("Format"), Some("Text")); // default applied
    }

    #[test]
    fn missing_required_slot_rejected() {
        let mut kb = kb_with_data_class();
        let err = kb
            .add_instance(Instance::new("D1", "Data").with("Size", Value::Int(1)))
            .unwrap_err();
        assert!(matches!(err, OntologyError::MissingRequiredSlot { .. }));
    }

    #[test]
    fn facet_violation_rejected() {
        let mut kb = kb_with_data_class();
        let err = kb
            .add_instance(
                Instance::new("D1", "Data")
                    .with("Name", Value::str("x"))
                    .with("Size", Value::Int(-5)),
            )
            .unwrap_err();
        assert!(matches!(err, OntologyError::FacetViolation { .. }));
    }

    #[test]
    fn unknown_slot_rejected() {
        let mut kb = kb_with_data_class();
        let err = kb
            .add_instance(
                Instance::new("D1", "Data")
                    .with("Name", Value::str("x"))
                    .with("Sizee", Value::Int(5)),
            )
            .unwrap_err();
        assert!(matches!(err, OntologyError::UnknownSlot { .. }));
    }

    #[test]
    fn inheritance_resolves_effective_slots() {
        let mut kb = KnowledgeBase::new("t");
        kb.add_class(
            ClassDef::new("Resource")
                .with_slot(SlotDef::required("Name", ValueType::Str))
                .with_slot(SlotDef::optional("Location", ValueType::Str)),
        )
        .unwrap();
        kb.add_class(
            ClassDef::new("Cluster")
                .with_parent("Resource")
                .with_slot(SlotDef::optional("Number of Nodes", ValueType::Int)),
        )
        .unwrap();
        let names: Vec<&str> = kb
            .effective_slots("Cluster")
            .unwrap()
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(names, vec!["Name", "Location", "Number of Nodes"]);
        assert!(kb.is_subclass_of("Cluster", "Resource"));
        assert!(!kb.is_subclass_of("Resource", "Cluster"));
    }

    #[test]
    fn derived_class_overrides_slot_by_name() {
        let mut kb = KnowledgeBase::new("t");
        kb.add_class(ClassDef::new("Base").with_slot(SlotDef::optional("Speed", ValueType::Int)))
            .unwrap();
        kb.add_class(
            ClassDef::new("Derived")
                .with_parent("Base")
                .with_slot(SlotDef::required("Speed", ValueType::Float)),
        )
        .unwrap();
        let slot = kb.resolve_slot("Derived", "Speed").unwrap();
        assert!(slot.facets.required);
        assert_eq!(slot.facets.value_type, ValueType::Float);
    }

    #[test]
    fn abstract_class_cannot_be_instantiated() {
        let mut kb = KnowledgeBase::new("t");
        kb.add_class(ClassDef::new("Abstract").abstract_class())
            .unwrap();
        let err = kb.add_instance(Instance::new("x", "Abstract")).unwrap_err();
        assert_eq!(err, OntologyError::AbstractClass("Abstract".into()));
    }

    #[test]
    fn instances_of_includes_subclasses() {
        let mut kb = KnowledgeBase::new("t");
        kb.add_class(ClassDef::new("Resource")).unwrap();
        kb.add_class(ClassDef::new("Cluster").with_parent("Resource"))
            .unwrap();
        kb.add_instance(Instance::new("r1", "Resource")).unwrap();
        kb.add_instance(Instance::new("c1", "Cluster")).unwrap();
        assert_eq!(kb.instances_of("Resource").count(), 2);
        assert_eq!(kb.instances_of("Cluster").count(), 1);
    }

    #[test]
    fn ref_class_facet_enforced_for_present_targets() {
        let mut kb = KnowledgeBase::new("t");
        kb.add_class(ClassDef::new("Hardware")).unwrap();
        kb.add_class(ClassDef::new("Software")).unwrap();
        kb.add_class(
            ClassDef::new("Resource").with_slot(SlotDef::reference("Hardware", "Hardware")),
        )
        .unwrap();
        kb.add_instance(Instance::new("hw1", "Hardware")).unwrap();
        kb.add_instance(Instance::new("sw1", "Software")).unwrap();
        kb.add_instance(Instance::new("r1", "Resource").with("Hardware", Value::reference("hw1")))
            .unwrap();
        let err = kb
            .add_instance(Instance::new("r2", "Resource").with("Hardware", Value::reference("sw1")))
            .unwrap_err();
        assert!(matches!(err, OntologyError::FacetViolation { .. }));
    }

    #[test]
    fn dangling_refs_are_tolerated_and_reported() {
        let mut kb = KnowledgeBase::new("t");
        kb.add_class(ClassDef::new("Hardware")).unwrap();
        kb.add_class(
            ClassDef::new("Resource").with_slot(SlotDef::reference("Hardware", "Hardware")),
        )
        .unwrap();
        kb.add_instance(
            Instance::new("r1", "Resource").with("Hardware", Value::reference("missing")),
        )
        .unwrap();
        let dangling = kb.dangling_refs();
        assert_eq!(dangling.len(), 1);
        assert_eq!(dangling[0].2, "missing");
    }

    #[test]
    fn update_slot_validates() {
        let mut kb = kb_with_data_class();
        kb.add_instance(Instance::new("D1", "Data").with("Name", Value::str("x")))
            .unwrap();
        kb.update_slot("D1", "Size", Value::Int(10)).unwrap();
        assert_eq!(kb.instance("D1").unwrap().get_int("Size"), Some(10));
        assert!(kb.update_slot("D1", "Size", Value::Int(-1)).is_err());
        // Failed update must not corrupt the stored instance.
        assert_eq!(kb.instance("D1").unwrap().get_int("Size"), Some(10));
    }

    #[test]
    fn remove_class_guards() {
        let mut kb = KnowledgeBase::new("t");
        kb.add_class(ClassDef::new("A")).unwrap();
        kb.add_class(ClassDef::new("B").with_parent("A")).unwrap();
        assert_eq!(
            kb.remove_class("A").unwrap_err(),
            OntologyError::ClassInUse("A".into())
        );
        kb.remove_class("B").unwrap();
        kb.remove_class("A").unwrap();
        assert_eq!(kb.class_count(), 0);
    }

    #[test]
    fn shell_strips_instances() {
        let mut kb = kb_with_data_class();
        kb.add_instance(Instance::new("D1", "Data").with("Name", Value::str("x")))
            .unwrap();
        let shell = kb.shell();
        assert!(shell.is_shell());
        assert_eq!(shell.class_count(), 1);
        assert!(!kb.is_shell());
    }

    #[test]
    fn merge_combines_and_detects_conflicts() {
        let mut global = kb_with_data_class();
        let mut user = global.shell();
        user.add_instance(Instance::new("D1", "Data").with("Name", Value::str("x")))
            .unwrap();
        global.merge(&user).unwrap();
        assert_eq!(global.instance_count(), 1);
        // Second merge collides on D1.
        assert!(matches!(
            global.merge(&user).unwrap_err(),
            OntologyError::DuplicateInstance(_)
        ));
    }

    #[test]
    fn merge_rejects_conflicting_class_definitions() {
        let mut a = KnowledgeBase::new("a");
        a.add_class(ClassDef::new("C").with_slot(SlotDef::optional("X", ValueType::Int)))
            .unwrap();
        let mut b = KnowledgeBase::new("b");
        b.add_class(ClassDef::new("C").with_slot(SlotDef::optional("X", ValueType::Str)))
            .unwrap();
        assert!(matches!(
            a.merge(&b).unwrap_err(),
            OntologyError::DuplicateClass(_)
        ));
    }

    #[test]
    fn json_round_trip() {
        let mut kb = kb_with_data_class();
        kb.add_instance(Instance::new("D1", "Data").with("Name", Value::str("x")))
            .unwrap();
        let json = kb.to_json().unwrap();
        let back = KnowledgeBase::from_json(&json).unwrap();
        assert_eq!(kb, back);
    }

    #[test]
    fn replace_class_rejects_cycles() {
        let mut kb = KnowledgeBase::new("t");
        kb.add_class(ClassDef::new("A")).unwrap();
        kb.add_class(ClassDef::new("B").with_parent("A")).unwrap();
        let err = kb
            .replace_class(ClassDef::new("A").with_parent("B"))
            .unwrap_err();
        assert_eq!(err, OntologyError::InheritanceCycle("A".into()));
        // Rollback: A still has no parent.
        assert!(kb.class("A").unwrap().parent.is_none());
    }

    #[test]
    fn validate_all_reports_every_error() {
        let mut kb = kb_with_data_class();
        kb.add_instance(Instance::new("D1", "Data").with("Name", Value::str("x")))
            .unwrap();
        // Corrupt two instances through the unchecked mutable path.
        kb.add_instance(Instance::new("D2", "Data").with("Name", Value::str("y")))
            .unwrap();
        kb.instance_mut("D1").unwrap().set("Size", Value::Int(-1));
        kb.instance_mut("D2").unwrap().unset("Name");
        let errors = kb.validate_all();
        assert_eq!(errors.len(), 2);
    }
}
