//! Instances: frames populating the classes of a knowledge base.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An instance (frame) of a class: an identifier plus slot assignments.
///
/// Slot values are stored in a `BTreeMap` so that serialization and
/// iteration order are deterministic — figure-regeneration binaries print
/// instance tables and must produce stable output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Unique identifier (e.g. `"A5"`, `"D10"`, `"TR12"` in Fig. 13).
    pub id: String,
    /// Name of the class this instance populates.
    pub class: String,
    /// Slot-name → value assignments.
    pub values: BTreeMap<String, Value>,
}

impl Instance {
    /// A new instance of `class` with no slot values.
    pub fn new(id: impl Into<String>, class: impl Into<String>) -> Self {
        Instance {
            id: id.into(),
            class: class.into(),
            values: BTreeMap::new(),
        }
    }

    /// Assign a slot value (builder style).
    pub fn with(mut self, slot: impl Into<String>, value: Value) -> Self {
        self.values.insert(slot.into(), value);
        self
    }

    /// Assign a slot value in place.
    pub fn set(&mut self, slot: impl Into<String>, value: Value) {
        self.values.insert(slot.into(), value);
    }

    /// Remove a slot value, returning it if present.
    pub fn unset(&mut self, slot: &str) -> Option<Value> {
        self.values.remove(slot)
    }

    /// Borrow the value stored under `slot`, if any.
    pub fn get(&self, slot: &str) -> Option<&Value> {
        self.values.get(slot)
    }

    /// The string stored under `slot`, if present and a string.
    pub fn get_str(&self, slot: &str) -> Option<&str> {
        self.get(slot).and_then(Value::as_str)
    }

    /// The integer stored under `slot`, if present and an integer.
    pub fn get_int(&self, slot: &str) -> Option<i64> {
        self.get(slot).and_then(Value::as_int)
    }

    /// The float (or widened integer) stored under `slot`.
    pub fn get_float(&self, slot: &str) -> Option<f64> {
        self.get(slot).and_then(Value::as_float)
    }

    /// The list stored under `slot`, if present and a list.
    pub fn get_list(&self, slot: &str) -> Option<&[Value]> {
        self.get(slot).and_then(Value::as_list)
    }

    /// The referenced instance id stored under `slot`.
    pub fn get_ref(&self, slot: &str) -> Option<&str> {
        self.get(slot).and_then(Value::as_ref_id)
    }

    /// The ids referenced by a multi-valued reference slot, in order.
    pub fn get_ref_list(&self, slot: &str) -> Vec<&str> {
        self.get_list(slot)
            .map(|items| items.iter().filter_map(Value::as_ref_id).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let inst = Instance::new("D1", "Data")
            .with("Name", Value::str("parameters"))
            .with("Size", Value::Int(3_000))
            .with("Creator", Value::reference("User"))
            .with("Tags", Value::str_list(["pod", "input"]));
        assert_eq!(inst.get_str("Name"), Some("parameters"));
        assert_eq!(inst.get_int("Size"), Some(3_000));
        assert_eq!(inst.get_float("Size"), Some(3_000.0));
        assert_eq!(inst.get_ref("Creator"), Some("User"));
        assert_eq!(inst.get_list("Tags").map(|l| l.len()), Some(2));
        assert!(inst.get("Missing").is_none());
    }

    #[test]
    fn set_and_unset() {
        let mut inst = Instance::new("A1", "Activity");
        inst.set("Status", Value::str("Ready"));
        assert_eq!(inst.get_str("Status"), Some("Ready"));
        assert_eq!(inst.unset("Status"), Some(Value::str("Ready")));
        assert!(inst.get("Status").is_none());
        assert!(inst.unset("Status").is_none());
    }

    #[test]
    fn ref_list_extracts_ids_in_order() {
        let inst = Instance::new("PD", "ProcessDescription")
            .with("Activity Set", Value::ref_list(["BEGIN", "POD", "END"]));
        assert_eq!(
            inst.get_ref_list("Activity Set"),
            vec!["BEGIN", "POD", "END"]
        );
        assert!(inst.get_ref_list("Transition Set").is_empty());
    }

    #[test]
    fn mixed_list_skips_non_refs() {
        let inst = Instance::new("X", "C").with(
            "L",
            Value::List(vec![
                Value::reference("a"),
                Value::Int(1),
                Value::reference("b"),
            ]),
        );
        assert_eq!(inst.get_ref_list("L"), vec!["a", "b"]);
    }

    #[test]
    fn serde_round_trip() {
        let inst = Instance::new("D1", "Data").with("Size", Value::Int(1));
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(inst, back);
    }
}
