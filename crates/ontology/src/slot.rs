//! Slot definitions: named, faceted attributes of a class.

use crate::facet::{Cardinality, Facets};
use crate::value::{Value, ValueType};
use serde::{Deserialize, Serialize};

/// A named slot with its facets, as attached to a [`crate::ClassDef`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotDef {
    /// Slot name, unique within the effective slot set of a class.
    pub name: String,
    /// Human-readable documentation.
    pub doc: String,
    /// Constraints on values stored under this slot.
    pub facets: Facets,
}

impl SlotDef {
    /// A new optional, single-valued slot of the given type.
    pub fn optional(name: impl Into<String>, value_type: ValueType) -> Self {
        SlotDef {
            name: name.into(),
            doc: String::new(),
            facets: Facets::of_type(value_type),
        }
    }

    /// A new required, single-valued slot of the given type.
    pub fn required(name: impl Into<String>, value_type: ValueType) -> Self {
        let mut slot = Self::optional(name, value_type);
        slot.facets.required = true;
        slot
    }

    /// A new multi-valued slot whose elements have the given type.
    pub fn multi(name: impl Into<String>, value_type: ValueType) -> Self {
        let mut slot = Self::optional(name, value_type);
        slot.facets.cardinality = Cardinality::Multiple;
        slot
    }

    /// A new single-valued slot referencing instances of `class`.
    pub fn reference(name: impl Into<String>, class: impl Into<String>) -> Self {
        let mut slot = Self::optional(name, ValueType::Ref);
        slot.facets.ref_class = Some(class.into());
        slot
    }

    /// A new multi-valued slot whose elements reference instances of
    /// `class`.
    pub fn reference_multi(name: impl Into<String>, class: impl Into<String>) -> Self {
        let mut slot = Self::multi(name, ValueType::Ref);
        slot.facets.ref_class = Some(class.into());
        slot
    }

    /// Attach documentation (builder style).
    pub fn with_doc(mut self, doc: impl Into<String>) -> Self {
        self.doc = doc.into();
        self
    }

    /// Mark the slot required (builder style).
    pub fn require(mut self) -> Self {
        self.facets.required = true;
        self
    }

    /// Restrict the slot to an enumerated set of values (builder style).
    pub fn with_allowed<I>(mut self, allowed: I) -> Self
    where
        I: IntoIterator<Item = Value>,
    {
        self.facets.allowed = allowed.into_iter().collect();
        self
    }

    /// Set an inclusive numeric range (builder style).
    pub fn with_range(mut self, min: Option<f64>, max: Option<f64>) -> Self {
        self.facets.min = min;
        self.facets.max = max;
        self
    }

    /// Set a default value (builder style).
    pub fn with_default(mut self, default: Value) -> Self {
        self.facets.default = Some(default);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_expected_facets() {
        let s = SlotDef::required("Name", ValueType::Str);
        assert!(s.facets.required);
        assert_eq!(s.facets.cardinality, Cardinality::Single);

        let m = SlotDef::multi("Data Set", ValueType::Ref);
        assert_eq!(m.facets.cardinality, Cardinality::Multiple);
        assert!(!m.facets.required);

        let r = SlotDef::reference("Hardware", "Hardware");
        assert_eq!(r.facets.ref_class.as_deref(), Some("Hardware"));
        assert_eq!(r.facets.value_type, ValueType::Ref);

        let rm = SlotDef::reference_multi("Activity Set", "Activity");
        assert_eq!(rm.facets.cardinality, Cardinality::Multiple);
        assert_eq!(rm.facets.ref_class.as_deref(), Some("Activity"));
    }

    #[test]
    fn builder_methods_compose() {
        let s = SlotDef::optional("Type", ValueType::Str)
            .with_doc("Kind of resource")
            .require()
            .with_allowed([Value::str("Cluster"), Value::str("Workstation")])
            .with_default(Value::str("Workstation"));
        assert!(s.facets.required);
        assert_eq!(s.doc, "Kind of resource");
        assert_eq!(s.facets.allowed.len(), 2);
        assert_eq!(s.facets.default, Some(Value::str("Workstation")));
    }

    #[test]
    fn range_builder() {
        let s = SlotDef::optional("Speed", ValueType::Float).with_range(Some(0.0), None);
        assert_eq!(s.facets.min, Some(0.0));
        assert_eq!(s.facets.max, None);
    }
}
