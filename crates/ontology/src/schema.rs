//! The concrete grid ontology of the paper (Figure 12).
//!
//! Figure 12 of the paper gives the "logic view of the ontology structure
//! used by the framework": ten interlinked classes — Task,
//! ProcessDescription, CaseDescription, Activity, Transition, Data,
//! Service, Resource, Hardware, Software — each with the slots listed in
//! the figure.  [`grid_ontology_shell`] builds that shell; the case-study
//! module of the `gridflow` facade crate populates it with the instances of
//! Figure 13.

use crate::class::ClassDef;
use crate::kb::KnowledgeBase;
use crate::slot::SlotDef;
use crate::value::{Value, ValueType};

/// Class name constants, so call-sites don't scatter string literals.
pub mod classes {
    /// The `Task` class.
    pub const TASK: &str = "Task";
    /// The `ProcessDescription` class.
    pub const PROCESS_DESCRIPTION: &str = "ProcessDescription";
    /// The `CaseDescription` class.
    pub const CASE_DESCRIPTION: &str = "CaseDescription";
    /// The `Activity` class.
    pub const ACTIVITY: &str = "Activity";
    /// The `Transition` class.
    pub const TRANSITION: &str = "Transition";
    /// The `Data` class.
    pub const DATA: &str = "Data";
    /// The `Service` class.
    pub const SERVICE: &str = "Service";
    /// The `Resource` class.
    pub const RESOURCE: &str = "Resource";
    /// The `Hardware` class.
    pub const HARDWARE: &str = "Hardware";
    /// The `Software` class.
    pub const SOFTWARE: &str = "Software";
}

/// The activity `Type` values used in Figure 13.
pub const ACTIVITY_TYPES: [&str; 7] = [
    "Begin", "End", "End-user", "Fork", "Join", "Choice", "Merge",
];

/// Build the ontology shell of Figure 12: all ten classes with their slots,
/// no instances.
pub fn grid_ontology_shell() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new("grid-core");

    kb.add_class(
        ClassDef::new(classes::HARDWARE)
            .with_doc("Hardware characteristics of a resource")
            .with_slot(SlotDef::optional("Type", ValueType::Str))
            .with_slot(
                SlotDef::optional("Speed", ValueType::Float)
                    .with_doc("CPU speed in GHz")
                    .with_range(Some(0.0), None),
            )
            .with_slot(
                SlotDef::optional("Size", ValueType::Int)
                    .with_doc("Main memory in MBytes")
                    .with_range(Some(0.0), None),
            )
            .with_slot(
                SlotDef::optional("Bandwidth", ValueType::Float)
                    .with_doc("Interconnect bandwidth in Mbit/s")
                    .with_range(Some(0.0), None),
            )
            .with_slot(
                SlotDef::optional("Latency", ValueType::Float)
                    .with_doc("Interconnect latency in microseconds")
                    .with_range(Some(0.0), None),
            )
            .with_slot(SlotDef::optional("Manufacturer", ValueType::Str))
            .with_slot(SlotDef::optional("Model", ValueType::Str))
            .with_slot(SlotDef::optional("Comment", ValueType::Str)),
    )
    .expect("fresh KB");

    kb.add_class(
        ClassDef::new(classes::SOFTWARE)
            .with_doc("A software package installed on a resource")
            .with_slot(SlotDef::required("Name", ValueType::Str))
            .with_slot(SlotDef::optional("Type", ValueType::Str))
            .with_slot(SlotDef::optional("Manufacturer", ValueType::Str))
            .with_slot(SlotDef::optional("Version", ValueType::Str))
            .with_slot(SlotDef::optional("Distribution", ValueType::Str)),
    )
    .expect("fresh KB");

    kb.add_class(
        ClassDef::new(classes::RESOURCE)
            .with_doc("A computational resource (node, cluster, storage site)")
            .with_slot(SlotDef::required("Name", ValueType::Str))
            .with_slot(SlotDef::optional("Type", ValueType::Str))
            .with_slot(SlotDef::optional("Location", ValueType::Str))
            .with_slot(
                SlotDef::optional("Number of Nodes", ValueType::Int).with_range(Some(1.0), None),
            )
            .with_slot(SlotDef::optional("Administration Domain", ValueType::Str))
            .with_slot(SlotDef::reference("Hardware", classes::HARDWARE))
            .with_slot(SlotDef::reference_multi("Software", classes::SOFTWARE))
            .with_slot(SlotDef::multi("Access Set", ValueType::Str)),
    )
    .expect("fresh KB");

    kb.add_class(
        ClassDef::new(classes::DATA)
            .with_doc("A data item manipulated by activities")
            .with_slot(SlotDef::required("Name", ValueType::Str))
            .with_slot(SlotDef::optional("Location", ValueType::Str))
            .with_slot(SlotDef::optional("Time Stamp", ValueType::Int))
            .with_slot(SlotDef::optional("Value", ValueType::Any))
            .with_slot(SlotDef::optional("Category", ValueType::Str))
            .with_slot(SlotDef::optional("Format", ValueType::Str))
            .with_slot(SlotDef::optional("Owner", ValueType::Str))
            .with_slot(SlotDef::optional("Creator", ValueType::Str))
            .with_slot(SlotDef::optional("Size", ValueType::Int).with_range(Some(0.0), None))
            .with_slot(SlotDef::optional("Creation Date", ValueType::Str))
            .with_slot(SlotDef::optional("Description", ValueType::Str))
            .with_slot(SlotDef::optional("Latest Modified Date", ValueType::Str))
            .with_slot(
                SlotDef::optional("Classification", ValueType::Str)
                    .with_doc("Semantic kind of the data, e.g. \"2D Image\" or \"3D Model\""),
            )
            .with_slot(SlotDef::optional("Type", ValueType::Str))
            .with_slot(SlotDef::optional("Access Right", ValueType::Str)),
    )
    .expect("fresh KB");

    kb.add_class(
        ClassDef::new(classes::SERVICE)
            .with_doc("An end-user computing service offered by an application container")
            .with_slot(SlotDef::required("Name", ValueType::Str))
            .with_slot(SlotDef::optional("Type", ValueType::Str))
            .with_slot(SlotDef::optional("Time Stamp", ValueType::Int))
            .with_slot(SlotDef::multi("User Set", ValueType::Str))
            .with_slot(SlotDef::optional("Location", ValueType::Str))
            .with_slot(SlotDef::optional("Creation Date", ValueType::Str))
            .with_slot(SlotDef::optional("Version", ValueType::Str))
            .with_slot(SlotDef::optional("Description", ValueType::Str))
            .with_slot(SlotDef::multi("Command History", ValueType::Str))
            .with_slot(
                SlotDef::multi("Input Condition", ValueType::Str)
                    .with_doc("Preconditions C_i on the input data, in the condition language"),
            )
            .with_slot(
                SlotDef::multi("Output Condition", ValueType::Str)
                    .with_doc("Postconditions on the output data, in the condition language"),
            )
            .with_slot(SlotDef::multi("Input Data Set", ValueType::Str))
            .with_slot(SlotDef::multi("Output Data Set", ValueType::Str))
            .with_slot(SlotDef::multi("Input Data Order", ValueType::Str))
            .with_slot(SlotDef::multi("Output Data Order", ValueType::Str))
            .with_slot(SlotDef::optional("Cost", ValueType::Float).with_range(Some(0.0), None))
            .with_slot(SlotDef::reference("Resource", classes::RESOURCE)),
    )
    .expect("fresh KB");

    kb.add_class(
        ClassDef::new(classes::ACTIVITY)
            .with_doc("One activity of a process description")
            .with_slot(SlotDef::required("ID", ValueType::Str))
            .with_slot(SlotDef::required("Name", ValueType::Str))
            .with_slot(SlotDef::optional("Task ID", ValueType::Str))
            .with_slot(SlotDef::optional("Owner", ValueType::Str))
            .with_slot(SlotDef::optional("Service Name", ValueType::Str))
            .with_slot(
                SlotDef::required("Type", ValueType::Str)
                    .with_allowed(ACTIVITY_TYPES.iter().map(|t| Value::str(*t))),
            )
            .with_slot(SlotDef::optional("Execution Location", ValueType::Str))
            .with_slot(SlotDef::multi("Input Data Set", ValueType::Ref))
            .with_slot(SlotDef::multi("Output Data Set", ValueType::Ref))
            .with_slot(SlotDef::multi("Input Data Order", ValueType::Str))
            .with_slot(SlotDef::multi("Output Data Order", ValueType::Str))
            .with_slot(SlotDef::optional("Status", ValueType::Str))
            .with_slot(SlotDef::optional("Constraint", ValueType::Str))
            .with_slot(SlotDef::optional("Work Directory", ValueType::Str))
            .with_slot(SlotDef::multi("Direct Predecessor Set", ValueType::Ref))
            .with_slot(SlotDef::multi("Direct Successor Set", ValueType::Ref))
            .with_slot(
                SlotDef::optional("Retry Count", ValueType::Int)
                    .with_range(Some(0.0), None)
                    .with_default(Value::Int(0)),
            )
            .with_slot(SlotDef::optional("Dispatched By", ValueType::Str)),
    )
    .expect("fresh KB");

    kb.add_class(
        ClassDef::new(classes::TRANSITION)
            .with_doc("A directed edge between two activities")
            .with_slot(SlotDef::required("ID", ValueType::Str))
            .with_slot(SlotDef::reference("Source Activity", classes::ACTIVITY).require())
            .with_slot(SlotDef::reference("Destination Activity", classes::ACTIVITY).require()),
    )
    .expect("fresh KB");

    kb.add_class(
        ClassDef::new(classes::PROCESS_DESCRIPTION)
            .with_doc("A formal description of the complex problem to solve")
            .with_slot(SlotDef::optional("ID", ValueType::Str))
            .with_slot(SlotDef::required("Name", ValueType::Str))
            .with_slot(SlotDef::optional("Location", ValueType::Str))
            .with_slot(SlotDef::reference_multi("Activity Set", classes::ACTIVITY))
            .with_slot(SlotDef::reference_multi(
                "Transition Set",
                classes::TRANSITION,
            ))
            .with_slot(SlotDef::optional("Creator", ValueType::Str)),
    )
    .expect("fresh KB");

    kb.add_class(
        ClassDef::new(classes::CASE_DESCRIPTION)
            .with_doc("Instance information for one run of a process description")
            .with_slot(SlotDef::optional("ID", ValueType::Str))
            .with_slot(SlotDef::required("Name", ValueType::Str))
            .with_slot(SlotDef::reference_multi("Initial Data Set", classes::DATA))
            .with_slot(SlotDef::reference_multi("Result Set", classes::DATA))
            .with_slot(SlotDef::multi("Constraint", ValueType::Str))
            .with_slot(SlotDef::optional("Goal", ValueType::Str))
            .with_slot(SlotDef::multi("Condition", ValueType::Str)),
    )
    .expect("fresh KB");

    kb.add_class(
        ClassDef::new(classes::TASK)
            .with_doc("A top-level computing task submitted by an end user")
            .with_slot(SlotDef::required("ID", ValueType::Str))
            .with_slot(SlotDef::required("Name", ValueType::Str))
            .with_slot(SlotDef::optional("Owner", ValueType::Str))
            .with_slot(SlotDef::optional("Submit Location", ValueType::Str))
            .with_slot(SlotDef::optional("Status", ValueType::Str))
            .with_slot(SlotDef::reference_multi("Data Set", classes::DATA))
            .with_slot(SlotDef::reference_multi("Result Set", classes::DATA))
            .with_slot(SlotDef::reference(
                "Case Description",
                classes::CASE_DESCRIPTION,
            ))
            .with_slot(SlotDef::reference(
                "Process Description",
                classes::PROCESS_DESCRIPTION,
            ))
            .with_slot(
                SlotDef::optional("Need Planning", ValueType::Bool)
                    .with_default(Value::Bool(false)),
            ),
    )
    .expect("fresh KB");

    kb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;

    #[test]
    fn shell_has_the_ten_classes_of_figure_12() {
        let kb = grid_ontology_shell();
        assert!(kb.is_shell());
        assert_eq!(kb.class_count(), 10);
        for name in [
            classes::TASK,
            classes::PROCESS_DESCRIPTION,
            classes::CASE_DESCRIPTION,
            classes::ACTIVITY,
            classes::TRANSITION,
            classes::DATA,
            classes::SERVICE,
            classes::RESOURCE,
            classes::HARDWARE,
            classes::SOFTWARE,
        ] {
            assert!(kb.class(name).is_some(), "missing class {name}");
        }
    }

    #[test]
    fn activity_slots_match_figure_12() {
        let kb = grid_ontology_shell();
        let slots: Vec<&str> = kb
            .effective_slots(classes::ACTIVITY)
            .unwrap()
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        for expected in [
            "ID",
            "Name",
            "Task ID",
            "Owner",
            "Service Name",
            "Type",
            "Execution Location",
            "Input Data Set",
            "Output Data Set",
            "Input Data Order",
            "Output Data Order",
            "Status",
            "Constraint",
            "Work Directory",
            "Direct Predecessor Set",
            "Direct Successor Set",
            "Retry Count",
            "Dispatched By",
        ] {
            assert!(
                slots.contains(&expected),
                "missing Activity slot {expected}"
            );
        }
        assert_eq!(slots.len(), 18);
    }

    #[test]
    fn activity_type_is_restricted_to_the_seven_kinds() {
        let mut kb = grid_ontology_shell();
        kb.add_instance(
            Instance::new("A1", classes::ACTIVITY)
                .with("ID", Value::str("A1"))
                .with("Name", Value::str("BEGIN"))
                .with("Type", Value::str("Begin")),
        )
        .unwrap();
        let err = kb
            .add_instance(
                Instance::new("A2", classes::ACTIVITY)
                    .with("ID", Value::str("A2"))
                    .with("Name", Value::str("X"))
                    .with("Type", Value::str("Loop")),
            )
            .unwrap_err();
        assert!(err.to_string().contains("allowed set"));
    }

    #[test]
    fn retry_count_defaults_to_zero() {
        let mut kb = grid_ontology_shell();
        kb.add_instance(
            Instance::new("A1", classes::ACTIVITY)
                .with("ID", Value::str("A1"))
                .with("Name", Value::str("POD"))
                .with("Type", Value::str("End-user")),
        )
        .unwrap();
        assert_eq!(kb.instance("A1").unwrap().get_int("Retry Count"), Some(0));
    }

    #[test]
    fn transition_requires_endpoints() {
        let mut kb = grid_ontology_shell();
        let err = kb
            .add_instance(Instance::new("TR1", classes::TRANSITION).with("ID", Value::str("TR1")))
            .unwrap_err();
        assert!(matches!(
            err,
            crate::error::OntologyError::MissingRequiredSlot { .. }
        ));
    }

    #[test]
    fn hardware_speed_must_be_non_negative() {
        let mut kb = grid_ontology_shell();
        let err = kb
            .add_instance(Instance::new("hw", classes::HARDWARE).with("Speed", Value::Float(-2.0)))
            .unwrap_err();
        assert!(matches!(
            err,
            crate::error::OntologyError::FacetViolation { .. }
        ));
    }

    #[test]
    fn shell_round_trips_through_json() {
        let kb = grid_ontology_shell();
        let json = kb.to_json().unwrap();
        let back = KnowledgeBase::from_json(&json).unwrap();
        assert_eq!(kb, back);
    }
}
