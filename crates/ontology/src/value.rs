//! The dynamic value space that slots range over.
//!
//! The paper's ontology (Fig. 12) stores strings (names, locations,
//! classifications), integers (sizes, counts), floats (speeds, resolution
//! values), booleans (flags such as `Need Planning`), lists (activity sets,
//! transition sets, data sets) and references to other instances.  [`Value`]
//! models that space; [`ValueType`] is the corresponding type tag used by
//! slot facets.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A dynamically typed slot value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// UTF-8 string.
    Str(String),
    /// 64-bit signed integer (sizes, counts, versions).
    Int(i64),
    /// 64-bit float (speeds, bandwidth, resolution).
    Float(f64),
    /// Boolean flag.
    Bool(bool),
    /// Ordered list of values (activity sets, data sets, …).
    List(Vec<Value>),
    /// Reference to another instance by its identifier.
    Ref(String),
}

impl Value {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Convenience constructor for an instance reference.
    pub fn reference(id: impl Into<String>) -> Self {
        Value::Ref(id.into())
    }

    /// Convenience constructor for a list of string values.
    pub fn str_list<I, S>(items: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Value::List(items.into_iter().map(|s| Value::Str(s.into())).collect())
    }

    /// Convenience constructor for a list of instance references.
    pub fn ref_list<I, S>(items: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Value::List(items.into_iter().map(|s| Value::Ref(s.into())).collect())
    }

    /// The runtime type tag of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Str(_) => ValueType::Str,
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Bool(_) => ValueType::Bool,
            Value::List(_) => ValueType::List,
            Value::Ref(_) => ValueType::Ref,
        }
    }

    /// Borrow the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is a [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float payload; integers are widened so numeric slots can be
    /// compared uniformly.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow the list payload, if this is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow the referenced instance id, if this is a [`Value::Ref`].
    pub fn as_ref_id(&self) -> Option<&str> {
        match self {
            Value::Ref(r) => Some(r),
            _ => None,
        }
    }

    /// Ordered comparison used by the condition sub-language of the process
    /// description grammar (`<data>.<property> <op> <value>`).
    ///
    /// Numeric values compare numerically (with `Int` widened to `Float`),
    /// strings and references lexicographically, booleans with
    /// `false < true`.  Lists and mixed non-numeric types are unordered and
    /// return `None`.
    pub fn partial_cmp_value(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Ref(a), Ref(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (a, b) => {
                if let (Some(x), Some(y)) = (a.as_float(), b.as_float()) {
                    x.partial_cmp(&y)
                } else {
                    None
                }
            }
        }
    }

    /// Equality as used by the condition sub-language: numerically tolerant
    /// across `Int`/`Float`, structural otherwise.
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self.as_float(), other.as_float()) {
            (Some(a), Some(b)) => a == b,
            _ => self == other,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Int(i) => write!(f, "{i}"),
            // Keep whole-valued floats recognizably float ("8.0", not
            // "8") so printed conditions re-parse to the same variant.
            Value::Float(x) if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 => {
                write!(f, "{x:.1}")
            }
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Ref(r) => write!(f, "@{r}"),
            Value::List(items) => {
                write!(f, "{{")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

/// Type tag restricting what a slot may hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    /// Any value is admissible.
    Any,
    /// UTF-8 string.
    Str,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float (also admits integers, which widen losslessly enough
    /// for the metadata the paper stores).
    Float,
    /// Boolean.
    Bool,
    /// List of values.
    List,
    /// Reference to another instance.
    Ref,
}

impl ValueType {
    /// Does `value` conform to this type tag?
    pub fn admits(&self, value: &Value) -> bool {
        match self {
            ValueType::Any => true,
            ValueType::Float => matches!(value, Value::Float(_) | Value::Int(_)),
            other => value.value_type() == *other,
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ValueType::Any => "Any",
            ValueType::Str => "Str",
            ValueType::Int => "Int",
            ValueType::Float => "Float",
            ValueType::Bool => "Bool",
            ValueType::List => "List",
            ValueType::Ref => "Ref",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_return_expected_payloads() {
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::reference("D1").as_ref_id(), Some("D1"));
        assert_eq!(
            Value::str_list(["a", "b"]).as_list().map(|l| l.len()),
            Some(2)
        );
    }

    #[test]
    fn accessors_reject_wrong_variants() {
        assert_eq!(Value::Int(1).as_str(), None);
        assert_eq!(Value::str("x").as_int(), None);
        assert_eq!(Value::Bool(true).as_float(), None);
        assert_eq!(Value::str("x").as_bool(), None);
        assert_eq!(Value::Int(1).as_list(), None);
        assert_eq!(Value::str("x").as_ref_id(), None);
    }

    #[test]
    fn int_widens_to_float() {
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert!(ValueType::Float.admits(&Value::Int(3)));
        assert!(!ValueType::Int.admits(&Value::Float(3.0)));
    }

    #[test]
    fn numeric_comparison_is_cross_type() {
        assert_eq!(
            Value::Int(8).partial_cmp_value(&Value::Float(8.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(9.0).partial_cmp_value(&Value::Int(8)),
            Some(Ordering::Greater)
        );
        assert!(Value::Int(8).loose_eq(&Value::Float(8.0)));
    }

    #[test]
    fn strings_compare_lexicographically() {
        assert_eq!(
            Value::str("abc").partial_cmp_value(&Value::str("abd")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn mixed_types_are_unordered() {
        assert_eq!(Value::str("a").partial_cmp_value(&Value::Int(1)), None);
        assert_eq!(
            Value::List(vec![]).partial_cmp_value(&Value::List(vec![])),
            None
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::str("x").to_string(), "\"x\"");
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::reference("D1").to_string(), "@D1");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "{1, 2}"
        );
    }

    #[test]
    fn any_admits_everything() {
        for v in [
            Value::str("x"),
            Value::Int(1),
            Value::Float(1.0),
            Value::Bool(false),
            Value::List(vec![]),
            Value::reference("i"),
        ] {
            assert!(ValueType::Any.admits(&v));
        }
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from("a"), Value::str("a"));
        assert_eq!(Value::from(2i64), Value::Int(2));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn serde_round_trip() {
        let v = Value::List(vec![
            Value::str("a"),
            Value::Int(1),
            Value::reference("D1"),
            Value::Bool(true),
        ]);
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
