//! Class definitions with single inheritance.

use crate::slot::SlotDef;
use serde::{Deserialize, Serialize};

/// A frame class: a named collection of slot definitions, optionally
/// inheriting the slots of a parent class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassDef {
    /// Class name, unique in a knowledge base.
    pub name: String,
    /// Human-readable documentation.
    pub doc: String,
    /// Parent class, if any (single inheritance, as in Protégé's usual
    /// modelling style for this ontology).
    pub parent: Option<String>,
    /// Slots declared directly on this class.  Effective slots (including
    /// inherited ones) are resolved by the knowledge base.
    pub slots: Vec<SlotDef>,
    /// Abstract classes structure the taxonomy but cannot be instantiated.
    pub is_abstract: bool,
}

impl ClassDef {
    /// A new concrete class with no parent and no slots.
    pub fn new(name: impl Into<String>) -> Self {
        ClassDef {
            name: name.into(),
            doc: String::new(),
            parent: None,
            slots: Vec::new(),
            is_abstract: false,
        }
    }

    /// Attach documentation (builder style).
    pub fn with_doc(mut self, doc: impl Into<String>) -> Self {
        self.doc = doc.into();
        self
    }

    /// Set the parent class (builder style).
    pub fn with_parent(mut self, parent: impl Into<String>) -> Self {
        self.parent = Some(parent.into());
        self
    }

    /// Add a slot (builder style).
    pub fn with_slot(mut self, slot: SlotDef) -> Self {
        self.slots.push(slot);
        self
    }

    /// Mark the class abstract (builder style).
    pub fn abstract_class(mut self) -> Self {
        self.is_abstract = true;
        self
    }

    /// Find a slot declared *directly* on this class.
    pub fn own_slot(&self, name: &str) -> Option<&SlotDef> {
        self.slots.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueType;

    #[test]
    fn builder_composes() {
        let c = ClassDef::new("Resource")
            .with_doc("A grid resource")
            .with_slot(SlotDef::required("Name", ValueType::Str))
            .with_slot(SlotDef::optional("Location", ValueType::Str));
        assert_eq!(c.name, "Resource");
        assert_eq!(c.slots.len(), 2);
        assert!(c.own_slot("Name").is_some());
        assert!(c.own_slot("Missing").is_none());
        assert!(!c.is_abstract);
    }

    #[test]
    fn parent_and_abstract() {
        let c = ClassDef::new("ComputeResource")
            .with_parent("Resource")
            .abstract_class();
        assert_eq!(c.parent.as_deref(), Some("Resource"));
        assert!(c.is_abstract);
    }
}
