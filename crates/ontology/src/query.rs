//! A small query engine over instances.
//!
//! The information, brokerage, and matchmaking services of the paper locate
//! offerings "subject to a wide range of conditions".  [`Query`] expresses
//! those conditions as a tree of slot predicates combined with conjunction,
//! disjunction, and negation, evaluated against the instances of a
//! [`KnowledgeBase`].

use crate::instance::Instance;
use crate::kb::KnowledgeBase;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// A predicate on a single slot of an instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SlotCond {
    /// Slot value equals the operand (numerically tolerant).
    Eq(String, Value),
    /// Slot value differs from the operand (or slot is absent).
    Ne(String, Value),
    /// Slot value is strictly less than the operand.
    Lt(String, Value),
    /// Slot value is less than or equal to the operand.
    Le(String, Value),
    /// Slot value is strictly greater than the operand.
    Gt(String, Value),
    /// Slot value is greater than or equal to the operand.
    Ge(String, Value),
    /// Slot is a list containing the operand, or a string containing the
    /// operand substring.
    Contains(String, Value),
    /// Slot carries any value at all.
    Exists(String),
}

impl SlotCond {
    /// Evaluate the predicate on one instance.
    pub fn matches(&self, instance: &Instance) -> bool {
        match self {
            SlotCond::Eq(slot, operand) => instance
                .get(slot)
                .map(|v| v.loose_eq(operand))
                .unwrap_or(false),
            SlotCond::Ne(slot, operand) => instance
                .get(slot)
                .map(|v| !v.loose_eq(operand))
                .unwrap_or(true),
            SlotCond::Lt(slot, operand) => Self::cmp_is(instance, slot, operand, Ordering::Less),
            SlotCond::Gt(slot, operand) => Self::cmp_is(instance, slot, operand, Ordering::Greater),
            SlotCond::Le(slot, operand) => {
                Self::cmp_is(instance, slot, operand, Ordering::Less)
                    || SlotCond::Eq(slot.clone(), operand.clone()).matches(instance)
            }
            SlotCond::Ge(slot, operand) => {
                Self::cmp_is(instance, slot, operand, Ordering::Greater)
                    || SlotCond::Eq(slot.clone(), operand.clone()).matches(instance)
            }
            SlotCond::Contains(slot, operand) => match instance.get(slot) {
                Some(Value::List(items)) => items.iter().any(|v| v.loose_eq(operand)),
                Some(Value::Str(s)) => operand
                    .as_str()
                    .map(|needle| s.contains(needle))
                    .unwrap_or(false),
                _ => false,
            },
            SlotCond::Exists(slot) => instance.get(slot).is_some(),
        }
    }

    fn cmp_is(instance: &Instance, slot: &str, operand: &Value, expect: Ordering) -> bool {
        instance
            .get(slot)
            .and_then(|v| v.partial_cmp_value(operand))
            .map(|o| o == expect)
            .unwrap_or(false)
    }
}

/// A query: an instance-class filter plus a boolean combination of slot
/// predicates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// Matches every instance (optionally restricted by the class filter
    /// given to [`Query::run`]).
    All,
    /// A single slot predicate.
    Cond(SlotCond),
    /// All sub-queries must match.
    And(Vec<Query>),
    /// At least one sub-query must match.
    Or(Vec<Query>),
    /// The sub-query must not match.
    Not(Box<Query>),
}

impl Query {
    /// Convenience: a single-predicate query.
    pub fn cond(cond: SlotCond) -> Self {
        Query::Cond(cond)
    }

    /// Convenience: conjunction of predicates.
    pub fn all_of<I>(conds: I) -> Self
    where
        I: IntoIterator<Item = SlotCond>,
    {
        Query::And(conds.into_iter().map(Query::Cond).collect())
    }

    /// Convenience: disjunction of predicates.
    pub fn any_of<I>(conds: I) -> Self
    where
        I: IntoIterator<Item = SlotCond>,
    {
        Query::Or(conds.into_iter().map(Query::Cond).collect())
    }

    /// Evaluate the query on one instance.
    pub fn matches(&self, instance: &Instance) -> bool {
        match self {
            Query::All => true,
            Query::Cond(c) => c.matches(instance),
            Query::And(qs) => qs.iter().all(|q| q.matches(instance)),
            Query::Or(qs) => qs.iter().any(|q| q.matches(instance)),
            Query::Not(q) => !q.matches(instance),
        }
    }

    /// Run the query over a knowledge base, optionally restricted to the
    /// instances of `class` (including subclasses).  Results come back in
    /// deterministic id order.
    pub fn run<'a>(&self, kb: &'a KnowledgeBase, class: Option<&'a str>) -> Vec<&'a Instance> {
        let matches = |i: &&Instance| self.matches(i);
        match class {
            Some(c) => kb.instances_of(c).filter(|i| matches(i)).collect(),
            None => kb.instances().filter(matches).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassDef;
    use crate::slot::SlotDef;
    use crate::value::ValueType;

    fn sample_kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new("q");
        kb.add_class(
            ClassDef::new("Resource")
                .with_slot(SlotDef::required("Name", ValueType::Str))
                .with_slot(SlotDef::optional("Speed", ValueType::Float))
                .with_slot(SlotDef::optional("Domain", ValueType::Str))
                .with_slot(SlotDef::multi("Tags", ValueType::Str)),
        )
        .unwrap();
        kb.add_class(ClassDef::new("Cluster").with_parent("Resource"))
            .unwrap();
        kb.add_instance(
            Instance::new("r1", "Resource")
                .with("Name", Value::str("alpha"))
                .with("Speed", Value::Float(2.4))
                .with("Domain", Value::str("ucf.edu"))
                .with("Tags", Value::str_list(["reliable", "cheap"])),
        )
        .unwrap();
        kb.add_instance(
            Instance::new("r2", "Cluster")
                .with("Name", Value::str("beta"))
                .with("Speed", Value::Float(3.2))
                .with("Domain", Value::str("purdue.edu")),
        )
        .unwrap();
        kb.add_instance(
            Instance::new("r3", "Resource")
                .with("Name", Value::str("gamma"))
                .with("Speed", Value::Int(1)),
        )
        .unwrap();
        kb
    }

    #[test]
    fn eq_and_ne() {
        let kb = sample_kb();
        let q = Query::cond(SlotCond::Eq("Name".into(), Value::str("alpha")));
        assert_eq!(q.run(&kb, None).len(), 1);
        let q = Query::cond(SlotCond::Ne("Name".into(), Value::str("alpha")));
        assert_eq!(q.run(&kb, None).len(), 2);
    }

    #[test]
    fn ne_matches_absent_slot() {
        let kb = sample_kb();
        let q = Query::cond(SlotCond::Ne("Domain".into(), Value::str("x")));
        // r3 has no Domain: Ne treats absence as "differs".
        assert!(q.run(&kb, None).iter().any(|i| i.id == "r3"));
    }

    #[test]
    fn numeric_comparisons_cross_int_float() {
        let kb = sample_kb();
        let q = Query::cond(SlotCond::Gt("Speed".into(), Value::Float(2.0)));
        let ids: Vec<&str> = q.run(&kb, None).iter().map(|i| i.id.as_str()).collect();
        assert_eq!(ids, vec!["r1", "r2"]);
        let q = Query::cond(SlotCond::Le("Speed".into(), Value::Int(1)));
        assert_eq!(q.run(&kb, None).len(), 1);
        let q = Query::cond(SlotCond::Ge("Speed".into(), Value::Float(3.2)));
        assert_eq!(q.run(&kb, None).len(), 1);
        let q = Query::cond(SlotCond::Lt("Speed".into(), Value::Float(2.4)));
        assert_eq!(q.run(&kb, None).len(), 1);
    }

    #[test]
    fn contains_on_lists_and_strings() {
        let kb = sample_kb();
        let q = Query::cond(SlotCond::Contains("Tags".into(), Value::str("reliable")));
        assert_eq!(q.run(&kb, None).len(), 1);
        let q = Query::cond(SlotCond::Contains("Domain".into(), Value::str(".edu")));
        assert_eq!(q.run(&kb, None).len(), 2);
    }

    #[test]
    fn exists_predicate() {
        let kb = sample_kb();
        let q = Query::cond(SlotCond::Exists("Domain".into()));
        assert_eq!(q.run(&kb, None).len(), 2);
    }

    #[test]
    fn boolean_combinators() {
        let kb = sample_kb();
        let q = Query::And(vec![
            Query::cond(SlotCond::Gt("Speed".into(), Value::Float(2.0))),
            Query::cond(SlotCond::Contains("Domain".into(), Value::str("ucf"))),
        ]);
        assert_eq!(q.run(&kb, None).len(), 1);
        let q = Query::Or(vec![
            Query::cond(SlotCond::Eq("Name".into(), Value::str("alpha"))),
            Query::cond(SlotCond::Eq("Name".into(), Value::str("beta"))),
        ]);
        assert_eq!(q.run(&kb, None).len(), 2);
        let q = Query::Not(Box::new(Query::cond(SlotCond::Exists("Domain".into()))));
        assert_eq!(q.run(&kb, None).len(), 1);
    }

    #[test]
    fn class_filter_includes_subclasses() {
        let kb = sample_kb();
        assert_eq!(Query::All.run(&kb, Some("Resource")).len(), 3);
        assert_eq!(Query::All.run(&kb, Some("Cluster")).len(), 1);
        assert_eq!(Query::All.run(&kb, Some("Nonexistent")).len(), 0);
    }

    #[test]
    fn empty_and_matches_everything_empty_or_nothing() {
        let kb = sample_kb();
        assert_eq!(Query::And(vec![]).run(&kb, None).len(), 3);
        assert_eq!(Query::Or(vec![]).run(&kb, None).len(), 0);
    }

    #[test]
    fn helpers_all_of_any_of() {
        let kb = sample_kb();
        let q = Query::all_of([
            SlotCond::Exists("Domain".into()),
            SlotCond::Gt("Speed".into(), Value::Float(3.0)),
        ]);
        assert_eq!(q.run(&kb, None).len(), 1);
        let q = Query::any_of([
            SlotCond::Eq("Name".into(), Value::str("gamma")),
            SlotCond::Eq("Name".into(), Value::str("beta")),
        ]);
        assert_eq!(q.run(&kb, None).len(), 2);
    }
}
