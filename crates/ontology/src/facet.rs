//! Slot facets: constraints attached to slot definitions.
//!
//! Protégé slots carry *facets* — value type, cardinality, required flag,
//! allowed values, numeric ranges, and (for instance-typed slots) the class
//! the referenced instance must belong to.  The brokerage service of the
//! paper groups resources into "equivalence classes based upon different
//! sets of properties"; facets are what make those property sets
//! machine-checkable.

use crate::value::{Value, ValueType};
use serde::{Deserialize, Serialize};

/// How many values a slot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Cardinality {
    /// Exactly zero or one value.
    #[default]
    Single,
    /// A list of values (possibly empty); the facet checks apply to every
    /// element of the list.
    Multiple,
}

/// The set of constraints attached to a slot definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Facets {
    /// The admissible type of (each element of) the value.
    pub value_type: ValueType,
    /// Single- or multi-valued.
    pub cardinality: Cardinality,
    /// Must an instance provide a value for this slot to validate?
    pub required: bool,
    /// If non-empty, the value must be one of these (enumeration facet).
    pub allowed: Vec<Value>,
    /// Inclusive lower bound for numeric values.
    pub min: Option<f64>,
    /// Inclusive upper bound for numeric values.
    pub max: Option<f64>,
    /// For `Ref`-typed slots: the class (or a subclass) the referenced
    /// instance must belong to.  Checked by the knowledge base, which knows
    /// the taxonomy.
    pub ref_class: Option<String>,
    /// Default value used when an instance omits the slot.
    pub default: Option<Value>,
}

impl Default for Facets {
    fn default() -> Self {
        Facets {
            value_type: ValueType::Any,
            cardinality: Cardinality::Single,
            required: false,
            allowed: Vec::new(),
            min: None,
            max: None,
            ref_class: None,
            default: None,
        }
    }
}

impl Facets {
    /// A fresh facet set admitting a single optional value of `value_type`.
    pub fn of_type(value_type: ValueType) -> Self {
        Facets {
            value_type,
            ..Facets::default()
        }
    }

    /// Check a single (non-list) element against the element-level facets.
    ///
    /// Returns a human-readable reason on failure.  `Ref`-class conformance
    /// is *not* checked here (the facet set has no access to the taxonomy);
    /// the knowledge base layers that check on top.
    pub fn check_element(&self, value: &Value) -> std::result::Result<(), String> {
        if !self.value_type.admits(value) {
            return Err(format!(
                "expected {} but got {}",
                self.value_type,
                value.value_type()
            ));
        }
        if !self.allowed.is_empty() && !self.allowed.iter().any(|a| a.loose_eq(value)) {
            return Err(format!("value {value} is not in the allowed set"));
        }
        if let Some(min) = self.min {
            match value.as_float() {
                Some(x) if x < min => {
                    return Err(format!("value {x} below minimum {min}"));
                }
                None => {
                    return Err(format!("value {value} is not numeric but a minimum is set"));
                }
                _ => {}
            }
        }
        if let Some(max) = self.max {
            match value.as_float() {
                Some(x) if x > max => {
                    return Err(format!("value {x} above maximum {max}"));
                }
                None => {
                    return Err(format!("value {value} is not numeric but a maximum is set"));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Check a full slot value (which is a list when the cardinality is
    /// [`Cardinality::Multiple`]) against the facets.
    pub fn check(&self, value: &Value) -> std::result::Result<(), String> {
        match self.cardinality {
            Cardinality::Single => self.check_element(value),
            Cardinality::Multiple => {
                let items = value
                    .as_list()
                    .ok_or_else(|| format!("multi-valued slot expects a list, got {value}"))?;
                for (i, item) in items.iter().enumerate() {
                    self.check_element(item)
                        .map_err(|reason| format!("element {i}: {reason}"))?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_facet_rejects_mismatch() {
        let f = Facets::of_type(ValueType::Int);
        assert!(f.check(&Value::Int(5)).is_ok());
        let err = f.check(&Value::str("five")).unwrap_err();
        assert!(err.contains("expected Int"));
    }

    #[test]
    fn allowed_values_facet() {
        let mut f = Facets::of_type(ValueType::Str);
        f.allowed = vec![Value::str("Text"), Value::str("Binary")];
        assert!(f.check(&Value::str("Text")).is_ok());
        assert!(f.check(&Value::str("Csv")).is_err());
    }

    #[test]
    fn numeric_range_facet() {
        let mut f = Facets::of_type(ValueType::Float);
        f.min = Some(0.0);
        f.max = Some(1.0);
        assert!(f.check(&Value::Float(0.5)).is_ok());
        assert!(f.check(&Value::Int(1)).is_ok());
        assert!(f.check(&Value::Float(-0.1)).is_err());
        assert!(f.check(&Value::Float(1.1)).is_err());
    }

    #[test]
    fn range_on_non_numeric_value_is_an_error() {
        let mut f = Facets::of_type(ValueType::Any);
        f.min = Some(0.0);
        assert!(f.check(&Value::str("x")).is_err());
    }

    #[test]
    fn multivalued_slot_checks_each_element() {
        let mut f = Facets::of_type(ValueType::Int);
        f.cardinality = Cardinality::Multiple;
        f.min = Some(0.0);
        assert!(f
            .check(&Value::List(vec![Value::Int(1), Value::Int(2)]))
            .is_ok());
        let err = f
            .check(&Value::List(vec![Value::Int(1), Value::Int(-2)]))
            .unwrap_err();
        assert!(err.contains("element 1"));
    }

    #[test]
    fn multivalued_slot_rejects_scalar() {
        let mut f = Facets::of_type(ValueType::Int);
        f.cardinality = Cardinality::Multiple;
        assert!(f.check(&Value::Int(1)).is_err());
    }

    #[test]
    fn empty_list_is_valid_for_multivalued() {
        let mut f = Facets::of_type(ValueType::Str);
        f.cardinality = Cardinality::Multiple;
        assert!(f.check(&Value::List(vec![])).is_ok());
    }

    #[test]
    fn allowed_set_is_numerically_tolerant() {
        let mut f = Facets::of_type(ValueType::Float);
        f.allowed = vec![Value::Float(1.0), Value::Float(2.0)];
        assert!(f.check(&Value::Int(1)).is_ok());
    }
}
