//! Property-based tests for the ontology substrate.

use gridflow_ontology::{
    Cardinality, ClassDef, Instance, KnowledgeBase, Query, SlotCond, SlotDef, Value, ValueType,
};
use proptest::prelude::*;

/// Strategy producing scalar (non-list) values.
fn scalar_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::str),
        any::<i64>().prop_map(Value::Int),
        (-1.0e12f64..1.0e12).prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        "[a-z]{1,6}".prop_map(Value::reference),
    ]
}

/// Strategy producing arbitrary values including shallow lists.
fn any_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        scalar_value(),
        prop::collection::vec(scalar_value(), 0..5).prop_map(Value::List),
    ]
}

proptest! {
    /// Value serde round-trip is the identity.
    #[test]
    fn value_serde_round_trip(v in any_value()) {
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(v, back);
    }

    /// `loose_eq` is reflexive for every value except NaN floats.
    #[test]
    fn loose_eq_reflexive(v in any_value()) {
        let is_nan = matches!(&v, Value::Float(x) if x.is_nan());
        prop_assume!(!is_nan);
        prop_assert!(v.loose_eq(&v));
    }

    /// Comparison is antisymmetric: cmp(a,b) is the reverse of cmp(b,a).
    #[test]
    fn partial_cmp_antisymmetric(a in scalar_value(), b in scalar_value()) {
        let ab = a.partial_cmp_value(&b);
        let ba = b.partial_cmp_value(&a);
        prop_assert_eq!(ab.map(|o| o.reverse()), ba);
    }

    /// Every value admitted by a concrete type tag reports that tag (Float
    /// also admits Int by widening).
    #[test]
    fn type_tag_consistent(v in any_value()) {
        let tag = v.value_type();
        prop_assert!(tag.admits(&v));
        if ValueType::Int.admits(&v) {
            prop_assert!(ValueType::Float.admits(&v));
        }
    }

    /// A KB populated with arbitrary valid instances round-trips through
    /// JSON.
    #[test]
    fn kb_json_round_trip(names in prop::collection::btree_set("[a-z]{1,8}", 1..10),
                          sizes in prop::collection::vec(0i64..1_000_000, 10)) {
        let mut kb = KnowledgeBase::new("prop");
        kb.add_class(
            ClassDef::new("Data")
                .with_slot(SlotDef::required("Name", ValueType::Str))
                .with_slot(SlotDef::optional("Size", ValueType::Int).with_range(Some(0.0), None)),
        ).unwrap();
        for (i, name) in names.iter().enumerate() {
            kb.add_instance(
                Instance::new(format!("D{i}"), "Data")
                    .with("Name", Value::str(name.clone()))
                    .with("Size", Value::Int(sizes[i % sizes.len()])),
            ).unwrap();
        }
        let json = kb.to_json().unwrap();
        let back = KnowledgeBase::from_json(&json).unwrap();
        prop_assert_eq!(kb, back);
    }

    /// Double negation in the query algebra is the identity on results.
    #[test]
    fn query_double_negation(threshold in 0i64..100) {
        let mut kb = KnowledgeBase::new("q");
        kb.add_class(
            ClassDef::new("D").with_slot(SlotDef::optional("Size", ValueType::Int)),
        ).unwrap();
        for i in 0..50 {
            kb.add_instance(Instance::new(format!("d{i:02}"), "D").with("Size", Value::Int(i)))
                .unwrap();
        }
        let q = Query::cond(SlotCond::Lt("Size".into(), Value::Int(threshold)));
        let qnn = Query::Not(Box::new(Query::Not(Box::new(q.clone()))));
        let direct: Vec<&str> = q.run(&kb, None).iter().map(|i| i.id.as_str()).collect();
        let doubled: Vec<&str> = qnn.run(&kb, None).iter().map(|i| i.id.as_str()).collect();
        prop_assert_eq!(direct, doubled);
    }

    /// Lt and Ge partition the instances that carry the slot.
    #[test]
    fn lt_ge_partition(threshold in 0i64..100) {
        let mut kb = KnowledgeBase::new("q");
        kb.add_class(
            ClassDef::new("D").with_slot(SlotDef::optional("Size", ValueType::Int)),
        ).unwrap();
        for i in 0..50 {
            kb.add_instance(Instance::new(format!("d{i:02}"), "D").with("Size", Value::Int(i)))
                .unwrap();
        }
        let lt = Query::cond(SlotCond::Lt("Size".into(), Value::Int(threshold)))
            .run(&kb, None).len();
        let ge = Query::cond(SlotCond::Ge("Size".into(), Value::Int(threshold)))
            .run(&kb, None).len();
        prop_assert_eq!(lt + ge, 50);
    }

    /// Facet checks on multi-valued slots accept exactly the lists whose
    /// every element passes the element check.
    #[test]
    fn multivalue_facet_equiv_elementwise(values in prop::collection::vec(-50i64..50, 0..8)) {
        let slot = {
            let mut s = SlotDef::multi("Xs", ValueType::Int);
            s.facets.min = Some(0.0);
            s
        };
        assert_eq!(slot.facets.cardinality, Cardinality::Multiple);
        let list = Value::List(values.iter().map(|&v| Value::Int(v)).collect());
        let ok = slot.facets.check(&list).is_ok();
        let all_pass = values.iter().all(|&v| v >= 0);
        prop_assert_eq!(ok, all_pass);
    }

    /// Shell extraction never keeps instances, and merging a populated KB
    /// back into its shell restores the instance count.
    #[test]
    fn shell_then_merge_restores(count in 1usize..20) {
        let mut kb = KnowledgeBase::new("s");
        kb.add_class(ClassDef::new("D").with_slot(SlotDef::optional("Size", ValueType::Int)))
            .unwrap();
        for i in 0..count {
            kb.add_instance(Instance::new(format!("d{i}"), "D")).unwrap();
        }
        let mut shell = kb.shell();
        prop_assert!(shell.is_shell());
        shell.merge(&kb).unwrap();
        prop_assert_eq!(shell.instance_count(), count);
    }
}
