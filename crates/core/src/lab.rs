//! A high-level wrapper around the virtual laboratory: build the world,
//! plan, enact, and re-plan in a few calls.

use crate::casestudy;
use gridflow_planner::prelude::*;
use gridflow_process::{CaseDescription, ProcessGraph};
use gridflow_services::coordination::{EnactmentConfig, EnactmentReport, Enactor};
use gridflow_services::planning::{PlanRequest, PlanResponse, PlanningService};
use gridflow_services::world::GridWorld;

/// The virtual laboratory of §4, ready to use.
pub struct VirtualLab {
    /// The simulated grid.
    pub world: GridWorld,
    /// GP configuration used for planning and re-planning.
    pub gp: GpConfig,
    /// Enactment configuration.
    pub enactment: EnactmentConfig,
}

impl VirtualLab {
    /// A lab over the deterministic 5-site core plus `extra_sites`
    /// generated sites.
    pub fn new(extra_sites: usize, seed: u64) -> Self {
        let gp = GpConfig {
            seed,
            ..GpConfig::default()
        };
        VirtualLab {
            world: casestudy::virtual_lab_world(extra_sites, seed),
            enactment: EnactmentConfig {
                planning_goals: casestudy::planning_problem().goals,
                gp,
                ..EnactmentConfig::default()
            },
            gp,
        }
    }

    /// The Fig. 10 process description.
    pub fn figure_10(&self) -> ProcessGraph {
        casestudy::process_description()
    }

    /// The CD-3DSD case description.
    pub fn case(&self) -> CaseDescription {
        casestudy::case_description()
    }

    /// Ask the planning service for a fresh plan for the case-study
    /// problem (ab-initio generation, §3.3).
    pub fn plan(&self) -> gridflow_services::Result<PlanResponse> {
        let problem = casestudy::planning_problem();
        PlanningService::new(self.gp).plan(
            &self.world,
            &PlanRequest {
                initial: problem.initial,
                goals: problem.goals,
                produced: vec![],
                excluded: vec![],
            },
        )
    }

    /// Enact a process description under the CD-3DSD case.
    pub fn enact(&mut self, graph: &ProcessGraph) -> EnactmentReport {
        let case = self.case();
        Enactor::builder()
            .config(self.enactment.clone())
            .build()
            .enact(&mut self.world, graph, &case)
    }

    /// Plan, then enact the result (the coordination service's `solve`).
    ///
    /// The GP planner plans with *abstract* conditions — its winning plan
    /// produces the resolution file once.  The case description is what
    /// carries the refinement semantics (the paper: "the pair of Choice
    /// and Merge activities in this workflow is used to control the
    /// iterative execution for resolution refinement; the computation
    /// ends when the resolution is better than the one specified as
    /// computation goal").  `solve` therefore wraps the generated plan in
    /// an iterative node guarded by the case's `Cons1` before enactment —
    /// the same Merge…Choice loop shape Fig. 10 uses.
    pub fn solve(&mut self) -> gridflow_services::Result<(PlanResponse, EnactmentReport)> {
        let plan = self.plan()?;
        if !plan.viable {
            return Err(gridflow_services::ServiceError::NoViablePlan(format!(
                "best fitness {:?}",
                plan.fitness
            )));
        }
        let case = self.case();
        let graph = match case.constraints.get("Cons1") {
            Some(cons1) => {
                let refined = gridflow_plan::PlanNode::Iterative {
                    cond: cons1.clone(),
                    body: vec![plan.tree.clone()],
                };
                gridflow_plan::tree_to_graph("plan+refinement", &refined)?
            }
            None => plan.graph.clone(),
        };
        let report = self.enact(&graph);
        Ok((plan, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_lab() -> VirtualLab {
        // The paper's Table 1 settings (the GpConfig default) solve the
        // case study reliably; smaller populations occasionally return
        // near-miss plans.
        VirtualLab::new(0, 7)
    }

    #[test]
    fn enacting_figure_10_reaches_the_target_resolution() {
        let mut lab = quick_lab();
        let graph = lab.figure_10();
        let report = lab.enact(&graph);
        assert!(report.success, "abort: {:?}", report.abort_reason);
        // 12 Å start, 2 Å per pass, loop while > 8 Å ⇒ PSF runs at 12,
        // 10, 8 — two refinement iterations after the first pass.
        let psf_runs = report
            .executions
            .iter()
            .filter(|e| e.service == "PSF")
            .count();
        assert_eq!(psf_runs, 3);
        assert_eq!(
            lab.case().satisfied_goals(&report.final_state),
            2,
            "final state: {:?}",
            report.final_state.get("D12")
        );
        // Fig. 10 executes POD and P3DR1 once, then (POR, P3DR×3, PSF)
        // per iteration: 2 + 3×5 = 17 end-user executions.
        assert_eq!(report.executions.len(), 17);
    }

    #[test]
    fn solve_plans_and_enacts_to_the_target_resolution() {
        let mut lab = quick_lab();
        let (plan, report) = lab.solve().unwrap();
        assert!(plan.viable);
        assert!(plan.fitness.is_perfect());
        assert!(report.success, "abort: {:?}", report.abort_reason);
        // The refinement wrapper repeats the GP plan until Cons1
        // falsifies: 12 → 10 → 8 Å = three PSF passes.
        let psf_runs = report
            .executions
            .iter()
            .filter(|e| e.service == "PSF")
            .count();
        assert_eq!(psf_runs, 3);
        let resolution = report
            .final_state
            .property("D12", "Value")
            .and_then(|v| v.as_float())
            .unwrap();
        assert!(resolution <= 8.0);
    }

    #[test]
    fn planning_alone_is_perfect_and_small() {
        let lab = quick_lab();
        let plan = lab.plan().unwrap();
        assert!(plan.viable, "{:?}", plan.fitness);
        // Minimal valid plan: POD; P3DR; P3DR; PSF (+ sequential root).
        assert!(plan.tree.size() >= 5, "tree {:?}", plan.tree);
        assert!(plan.tree.size() <= 14, "tree {:?}", plan.tree);
        let acts = plan.tree.activities();
        assert!(acts.contains(&"POD"));
        assert!(acts.contains(&"PSF"));
        assert!(
            acts.iter().filter(|a| **a == "P3DR").count() >= 2,
            "PSF needs two independent models: {acts:?}"
        );
    }
}
