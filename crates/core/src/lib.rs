//! # gridflow
//!
//! Metainformation and workflow management for solving complex problems
//! in grid environments — a full reproduction of Yu, Bai, Wang, Ji &
//! Marinescu (IPDPS 2004) as a Rust library.
//!
//! The facade crate ties the substrates together and hosts:
//!
//! * [`casestudy`] — §4's virtual laboratory for computational biology:
//!   the POD/P3DR/POR/PSF service catalog (signatures C1–C8 of Fig. 13),
//!   the process description of Fig. 10, the plan tree of Fig. 11, the
//!   ontology instances of Fig. 13, and a simulated grid hosting it all;
//! * [`experiments`] — §5's experiment: the Table 1 parameter settings
//!   and the Table 2 ten-run planning study, plus reusable sweep helpers
//!   for the ablation benches;
//! * [`lab`] — a high-level `VirtualLab` wrapper: build the world, plan,
//!   enact, re-plan in a few calls (see `examples/quickstart.rs`).
//!
//! Layer map (one crate per substrate the paper relies on):
//!
//! | crate | role |
//! |---|---|
//! | `gridflow-ontology` | frame-based knowledge bases (Protégé substitute) |
//! | `gridflow-process`  | the ATN-style process-description language |
//! | `gridflow-plan`     | plan trees and the Fig. 4–7 conversions |
//! | `gridflow-planner`  | the GP planner (§3.4) |
//! | `gridflow-agents`   | the multi-agent substrate (Jade substitute) |
//! | `gridflow-grid`     | the simulated heterogeneous grid |
//! | `gridflow-services` | the eleven core services of Fig. 1 |

#![warn(missing_docs)]

pub mod casestudy;
pub mod experiments;
pub mod lab;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::casestudy;
    pub use crate::experiments;
    pub use crate::lab::VirtualLab;
    pub use gridflow_agents::{AgentRuntime, Performative};
    pub use gridflow_grid::{GridTopology, Resource, ResourceKind};
    pub use gridflow_ontology::{Instance, KnowledgeBase, Query, SlotCond, Value};
    pub use gridflow_plan::{ast_to_tree, graph_to_tree, tree_to_ast, tree_to_graph, PlanNode};
    pub use gridflow_planner::prelude::*;
    pub use gridflow_process::{
        lower::lower, parser::parse_process, printer, recover::recover, AtnMachine,
        CaseDescription, Condition, DataItem, DataState, ProcessGraph,
    };
    pub use gridflow_services::{
        agents::boot_stack, coordination::EnactmentConfig, coordination::Enactor,
        matchmaking::matchmake, matchmaking::MatchRequest, planning::PlanningService, world::share,
        EnactmentReport, GridWorld, OutputSpec, ServiceOffering,
    };
}

pub use gridflow_agents as agents;
pub use gridflow_grid as grid;
pub use gridflow_ontology as ontology;
pub use gridflow_plan as plan;
pub use gridflow_planner as planner;
pub use gridflow_process as process;
pub use gridflow_services as services;
