//! §4's case study: a virtual laboratory for computational biology —
//! 3D reconstruction of virus structures from electron-microscopy data.
//!
//! The computation (Fig. 10): extract 2D virus projections, determine
//! initial orientations ab initio (**POD**), then iterate 3D
//! reconstruction (**P3DR**) and orientation refinement (**POR**),
//! correlating two independently reconstructed models (odd/even
//! projection streams) with **PSF** to measure the resolution; the loop
//! repeats while the resolution is worse than the target (Cons1).
//!
//! ## A note on data ids
//!
//! The paper's Fig. 13 is internally inconsistent (likely an artifact of
//! the proceedings scan): the constraint `Cons1` references
//! `D10.Classification = "Resolution File"` while the figure's own data
//! table classifies `D10` as a `3D Model` and `D12` (the PSF output and
//! the case's result set) as the resolution file.  We normalize to the
//! data table: **D12 is the resolution file**, `Cons1` references `D12`,
//! and the executable case study refines `D12.Value` (the resolution in
//! Å) on every PSF pass.

use gridflow_grid::container::ApplicationContainer;
use gridflow_grid::resource::{Resource, ResourceKind};
use gridflow_grid::workload::TaskDemand;
use gridflow_grid::GridTopology;
use gridflow_ontology::{schema, Instance, KnowledgeBase, Value};
use gridflow_plan::PlanNode;
use gridflow_planner::{ActivitySpec, GoalSpec, PlanningProblem};
use gridflow_process::{
    ActivityDecl, ActivityKind, CaseDescription, CompareOp, Condition, DataItem, ProcessGraph,
};
use gridflow_services::{GridWorld, OutputSpec, ServiceOffering};

/// Data classifications of the case study.
pub mod classifications {
    /// POD input parameters.
    pub const POD_PARAMETER: &str = "POD-Parameter";
    /// P3DR input parameters.
    pub const P3DR_PARAMETER: &str = "P3DR-Parameter";
    /// POR input parameters.
    pub const POR_PARAMETER: &str = "POR-Parameter";
    /// PSF input parameters.
    pub const PSF_PARAMETER: &str = "PSF-Parameter";
    /// The experimental 2D projections.
    pub const IMAGE_2D: &str = "2D Image";
    /// Orientation files (POD / POR outputs).
    pub const ORIENTATION: &str = "Orientation File";
    /// Electron-density maps (P3DR outputs).
    pub const MODEL_3D: &str = "3D Model";
    /// Resolution files (PSF output).
    pub const RESOLUTION: &str = "Resolution File";
}

use classifications::*;

/// Resolution (Å) PSF reports on its first pass.
pub const INITIAL_RESOLUTION: f64 = 12.0;
/// Resolution improvement per refinement pass (Å).
pub const RESOLUTION_STEP: f64 = 2.0;
/// The computation goal: resolution no worse than this (Å).
pub const TARGET_RESOLUTION: f64 = 8.0;

/// The four end-user services with the signatures of Fig. 13 (C1–C8) and
/// computational profiles mirroring §1's discussion (the reconstruction
/// codes are fine-grain parallel; POD and PSF are coarse-grain).
pub fn offerings() -> Vec<ServiceOffering> {
    vec![
        // C1: A = POD-Parameter, B = 2D Image → C2: C = Orientation File.
        ServiceOffering::new(
            "POD",
            [POD_PARAMETER, IMAGE_2D],
            vec![OutputSpec::plain(ORIENTATION)],
        )
        .with_demand(TaskDemand::coarse("POD", 400.0, 1_500.0)),
        // C3: P3DR-Parameter + 2D Image + Orientation File → C4: 3D Model.
        ServiceOffering::new(
            "P3DR",
            [P3DR_PARAMETER, IMAGE_2D, ORIENTATION],
            vec![OutputSpec::plain(MODEL_3D)],
        )
        .with_demand(TaskDemand::fine("P3DR", 2_000.0, 1_500.0)),
        // C5: POR-Parameter + 2D Image + Orientation File + 3D Model →
        // C6: Orientation File.
        ServiceOffering::new(
            "POR",
            [POR_PARAMETER, IMAGE_2D, ORIENTATION, MODEL_3D],
            vec![OutputSpec::plain(ORIENTATION)],
        )
        .with_demand(TaskDemand::fine("POR", 1_200.0, 1_500.0)),
        // C7: PSF-Parameter + two independent 3D Models → C8: Resolution
        // File.  The resolution item lives at the fixed id D12 and
        // improves by RESOLUTION_STEP Å per pass.
        ServiceOffering::new(
            "PSF",
            [PSF_PARAMETER, MODEL_3D, MODEL_3D],
            vec![OutputSpec::refining(
                RESOLUTION,
                "D12",
                INITIAL_RESOLUTION,
                RESOLUTION_STEP,
            )],
        )
        .with_demand(TaskDemand::coarse("PSF", 150.0, 200.0)),
    ]
}

/// The service names, in catalog order.
pub fn service_names() -> Vec<String> {
    offerings().into_iter().map(|o| o.name).collect()
}

/// Classifications of the initial data D1–D7 of Fig. 13.
pub fn initial_classifications() -> Vec<String> {
    vec![
        POD_PARAMETER.into(),  // D1
        P3DR_PARAMETER.into(), // D2
        P3DR_PARAMETER.into(), // D3
        P3DR_PARAMETER.into(), // D4
        POR_PARAMETER.into(),  // D5
        PSF_PARAMETER.into(),  // D6
        IMAGE_2D.into(),       // D7
    ]
}

/// The planning problem `P = {S_init, G, T}` of the §5 experiment:
/// initial data D1–D7, goal "a resolution file exists", and the four
/// services as `T`.
pub fn planning_problem() -> PlanningProblem {
    PlanningProblem {
        initial: initial_classifications(),
        goals: vec![GoalSpec {
            classification: RESOLUTION.into(),
            min_count: 1,
        }],
        activities: offerings()
            .iter()
            .map(ServiceOffering::activity_spec)
            .collect(),
    }
}

/// The planner-facing activity specs (C1–C8 as classification multisets).
pub fn activity_specs() -> Vec<ActivitySpec> {
    offerings()
        .iter()
        .map(ServiceOffering::activity_spec)
        .collect()
}

/// Cons1, normalized to D12 (see the module docs): continue the
/// refinement loop while the resolution file reports worse than 8 Å.
pub fn cons1() -> Condition {
    Condition::classified("D12", RESOLUTION).and(Condition::compare(
        "D12",
        "Value",
        CompareOp::Gt,
        TARGET_RESOLUTION,
    ))
}

/// The process description of Fig. 10: 7 end-user + 6 flow-control
/// activities, transitions TR1–TR15, with Cons1 guarding the loop-back
/// transition of the CHOICE.
pub fn process_description() -> ProcessGraph {
    let mut g = ProcessGraph::new("PD-3DSD");
    let add = |g: &mut ProcessGraph, decl: ActivityDecl| {
        g.add_activity(decl).expect("unique ids");
    };
    add(&mut g, ActivityDecl::flow("BEGIN", ActivityKind::Begin));
    add(&mut g, ActivityDecl::end_user("POD"));
    add(&mut g, ActivityDecl::end_user_with_service("P3DR1", "P3DR"));
    add(&mut g, ActivityDecl::flow("MERGE", ActivityKind::Merge));
    add(&mut g, ActivityDecl::end_user("POR"));
    add(&mut g, ActivityDecl::flow("FORK", ActivityKind::Fork));
    add(&mut g, ActivityDecl::end_user_with_service("P3DR2", "P3DR"));
    add(&mut g, ActivityDecl::end_user_with_service("P3DR3", "P3DR"));
    add(&mut g, ActivityDecl::end_user_with_service("P3DR4", "P3DR"));
    add(&mut g, ActivityDecl::flow("JOIN", ActivityKind::Join));
    add(&mut g, ActivityDecl::end_user("PSF"));
    add(&mut g, ActivityDecl::flow("CHOICE", ActivityKind::Choice));
    add(&mut g, ActivityDecl::flow("END", ActivityKind::End));

    let edges: [(&str, &str, Option<Condition>); 15] = [
        ("BEGIN", "POD", None),             // TR1
        ("POD", "P3DR1", None),             // TR2
        ("P3DR1", "MERGE", None),           // TR3
        ("MERGE", "POR", None),             // TR4
        ("POR", "FORK", None),              // TR5
        ("FORK", "P3DR2", None),            // TR6
        ("FORK", "P3DR3", None),            // TR7
        ("FORK", "P3DR4", None),            // TR8
        ("P3DR2", "JOIN", None),            // TR9
        ("P3DR3", "JOIN", None),            // TR10
        ("P3DR4", "JOIN", None),            // TR11
        ("JOIN", "PSF", None),              // TR12
        ("PSF", "CHOICE", None),            // TR13
        ("CHOICE", "MERGE", Some(cons1())), // TR14: refine further
        ("CHOICE", "END", None),            // TR15: goal resolution reached
    ];
    for (i, (src, dst, cond)) in edges.into_iter().enumerate() {
        g.add_transition_with_id(format!("TR{}", i + 1), src, dst, cond)
            .expect("valid endpoints");
    }
    g.validate().expect("Fig. 10 is well-formed");
    g
}

/// The plan tree of Fig. 11 (the structured form of Fig. 10).
pub fn plan_tree() -> PlanNode {
    PlanNode::Sequential(vec![
        PlanNode::terminal("POD"),
        PlanNode::terminal("P3DR"),
        PlanNode::Iterative {
            cond: cons1(),
            body: vec![
                PlanNode::terminal("POR"),
                PlanNode::Concurrent(vec![
                    PlanNode::terminal("P3DR"),
                    PlanNode::terminal("P3DR"),
                    PlanNode::terminal("P3DR"),
                ]),
                PlanNode::terminal("PSF"),
            ],
        },
    ])
}

/// The case description CD-3DSD of Fig. 13: initial data D1–D7, the goal
/// resolution, constraint Cons1, result set {D12}.
pub fn case_description() -> CaseDescription {
    CaseDescription::new("CD-3DSD")
        .with_data(
            "D1",
            DataItem::classified(POD_PARAMETER)
                .with("Format", Value::str("Text"))
                .with("Size", Value::Int(3_000)),
        )
        .with_data(
            "D2",
            DataItem::classified(P3DR_PARAMETER).with("Format", Value::str("Text")),
        )
        .with_data(
            "D3",
            DataItem::classified(P3DR_PARAMETER).with("Format", Value::str("Text")),
        )
        .with_data(
            "D4",
            DataItem::classified(P3DR_PARAMETER).with("Format", Value::str("Text")),
        )
        .with_data(
            "D5",
            DataItem::classified(POR_PARAMETER).with("Format", Value::str("Text")),
        )
        .with_data(
            "D6",
            DataItem::classified(PSF_PARAMETER).with("Format", Value::str("Text")),
        )
        .with_data(
            "D7",
            DataItem::classified(IMAGE_2D).with("Size", Value::Int(1_500_000_000)),
        )
        .with_goal("G1", Condition::classified("D12", RESOLUTION))
        .with_goal(
            "G2",
            Condition::compare("D12", "Value", CompareOp::Le, TARGET_RESOLUTION),
        )
        .with_constraint("Cons1", cons1())
        .with_result("D12")
}

/// A simulated grid hosting the virtual laboratory.
///
/// Deterministic core: two UCF PC clusters host the coarse-grain codes
/// (POD, PSF), two supercomputers host the fine-grain reconstruction and
/// refinement codes (P3DR, POR) — plus one cross-trained backup site and
/// `extra_sites` randomly generated sites for scale.
pub fn virtual_lab_world(extra_sites: usize, seed: u64) -> GridWorld {
    let mut resources = vec![
        Resource::new("ucf-cluster-1", ResourceKind::PcCluster)
            .with_nodes(64)
            .at("Orlando", "ucf.edu")
            .with_software(["POD", "PSF"])
            .with_reliability(0.97)
            .with_cost(0.4),
        Resource::new("ucf-cluster-2", ResourceKind::PcCluster)
            .with_nodes(32)
            .at("Orlando", "ucf.edu")
            .with_software(["POD", "PSF"])
            .with_reliability(0.93)
            .with_cost(0.3),
        Resource::new("purdue-sp2", ResourceKind::Supercomputer)
            .with_nodes(128)
            .at("West Lafayette", "purdue.edu")
            .with_software(["P3DR", "POR"])
            .with_reliability(0.99)
            .with_cost(1.5),
        Resource::new("sdsc-sp3", ResourceKind::Supercomputer)
            .with_nodes(256)
            .at("San Diego", "sdsc.edu")
            .with_software(["P3DR", "POR"])
            .with_reliability(0.995)
            .with_cost(2.0),
        Resource::new("anl-backup", ResourceKind::Supercomputer)
            .with_nodes(64)
            .at("Argonne", "anl.gov")
            .with_software(["POD", "P3DR", "POR", "PSF"])
            .with_reliability(0.9)
            .with_cost(1.0),
    ];
    let mut containers: Vec<ApplicationContainer> = resources
        .iter()
        .map(|r| {
            ApplicationContainer::new(format!("ac-{}", r.id), r.id.clone())
                .hosting(r.software.clone())
        })
        .collect();

    if extra_sites > 0 {
        let extra = GridTopology::generate(extra_sites, &service_names(), seed);
        for (i, mut r) in extra.resources.into_iter().enumerate() {
            r.id = format!("extra-{i}");
            resources.push(r);
        }
        for (i, mut c) in extra.containers.into_iter().enumerate() {
            c.id = format!("ac-extra-{i}");
            c.resource_id = format!("extra-{i}");
            containers.push(c);
        }
    }

    let mut world = GridWorld::new(GridTopology {
        resources,
        containers,
    });
    for offering in offerings() {
        world.offer(offering);
    }
    world
}

/// The ontology instances of Fig. 13: task T1, process description
/// PD-3DSD, case description CD-3DSD, activities A1–A13, transitions
/// TR1–TR15, data D1–D12, and the four service descriptions with their
/// input/output conditions C1–C8.
pub fn ontology_instances() -> KnowledgeBase {
    let mut kb = schema::grid_ontology_shell();
    kb.name = "3DSD".into();
    let c = schema::classes::ACTIVITY;

    // --- Data D1..D12 ------------------------------------------------
    let data: [(&str, &str, &str, Option<i64>); 12] = [
        ("D1", POD_PARAMETER, "User", Some(3_000)),
        ("D2", P3DR_PARAMETER, "User", None),
        ("D3", P3DR_PARAMETER, "User", None),
        ("D4", P3DR_PARAMETER, "User", None),
        ("D5", POR_PARAMETER, "User", None),
        ("D6", PSF_PARAMETER, "User", None),
        ("D7", IMAGE_2D, "User", Some(1_500_000_000)),
        ("D8", ORIENTATION, "POD, POR", None),
        ("D9", MODEL_3D, "P3DR1, P3DR4", None),
        ("D10", MODEL_3D, "P3DR2", None),
        ("D11", MODEL_3D, "P3DR3", None),
        ("D12", RESOLUTION, "PSF", None),
    ];
    for (id, classification, creator, size) in data {
        let mut inst = Instance::new(id, schema::classes::DATA)
            .with("Name", Value::str(id))
            .with("Classification", Value::str(classification))
            .with("Creator", Value::str(creator))
            .with(
                "Format",
                Value::str(if creator == "User" && classification != IMAGE_2D {
                    "Text"
                } else {
                    "Binary"
                }),
            );
        if let Some(size) = size {
            inst.set("Size", Value::Int(size));
        }
        kb.add_instance(inst).expect("valid data instance");
    }

    // --- Activities A1..A13 ------------------------------------------
    struct A {
        id: &'static str,
        name: &'static str,
        kind: &'static str,
        service: Option<&'static str>,
        inputs: &'static [&'static str],
        outputs: &'static [&'static str],
        constraint: Option<&'static str>,
    }
    let activities = [
        A {
            id: "A1",
            name: "BEGIN",
            kind: "Begin",
            service: None,
            inputs: &[],
            outputs: &[],
            constraint: None,
        },
        A {
            id: "A2",
            name: "POD",
            kind: "End-user",
            service: Some("POD"),
            inputs: &["D1", "D7"],
            outputs: &["D8"],
            constraint: None,
        },
        A {
            id: "A3",
            name: "P3DR1",
            kind: "End-user",
            service: Some("P3DR"),
            inputs: &["D2", "D7", "D8"],
            outputs: &["D9"],
            constraint: None,
        },
        A {
            id: "A4",
            name: "MERGE",
            kind: "Merge",
            service: None,
            inputs: &[],
            outputs: &[],
            constraint: None,
        },
        A {
            id: "A5",
            name: "POR",
            kind: "End-user",
            service: Some("POR"),
            inputs: &["D5", "D7", "D8", "D9"],
            outputs: &["D8"],
            constraint: None,
        },
        A {
            id: "A6",
            name: "FORK",
            kind: "Fork",
            service: None,
            inputs: &[],
            outputs: &[],
            constraint: None,
        },
        A {
            id: "A7",
            name: "P3DR2",
            kind: "End-user",
            service: Some("P3DR"),
            inputs: &["D3", "D7", "D8"],
            outputs: &["D10"],
            constraint: None,
        },
        A {
            id: "A8",
            name: "P3DR3",
            kind: "End-user",
            service: Some("P3DR"),
            inputs: &["D4", "D7", "D8"],
            outputs: &["D11"],
            constraint: None,
        },
        A {
            id: "A9",
            name: "P3DR4",
            kind: "End-user",
            service: Some("P3DR"),
            inputs: &["D2", "D7", "D8"],
            outputs: &["D9"],
            constraint: None,
        },
        A {
            id: "A10",
            name: "JOIN",
            kind: "Join",
            service: None,
            inputs: &[],
            outputs: &[],
            constraint: None,
        },
        A {
            id: "A11",
            name: "PSF",
            kind: "End-user",
            service: Some("PSF"),
            inputs: &["D6", "D10", "D11"],
            outputs: &["D12"],
            constraint: None,
        },
        A {
            id: "A12",
            name: "CHOICE",
            kind: "Choice",
            service: None,
            inputs: &[],
            outputs: &[],
            constraint: Some("Cons1"),
        },
        A {
            id: "A13",
            name: "END",
            kind: "End",
            service: None,
            inputs: &[],
            outputs: &[],
            constraint: None,
        },
    ];
    for a in &activities {
        let mut inst = Instance::new(a.id, c)
            .with("ID", Value::str(a.id))
            .with("Name", Value::str(a.name))
            .with("Task ID", Value::str("T1"))
            .with("Type", Value::str(a.kind));
        if let Some(service) = a.service {
            inst.set("Service Name", Value::str(service));
        }
        if !a.inputs.is_empty() {
            inst.set("Input Data Set", Value::ref_list(a.inputs.iter().copied()));
        }
        if !a.outputs.is_empty() {
            inst.set(
                "Output Data Set",
                Value::ref_list(a.outputs.iter().copied()),
            );
        }
        if let Some(cons) = a.constraint {
            inst.set("Constraint", Value::str(cons));
        }
        kb.add_instance(inst).expect("valid activity instance");
    }

    // --- Transitions TR1..TR15 ---------------------------------------
    let graph = process_description();
    // The graph uses activity *names*; the ontology uses A-ids.
    let aid = |name: &str| -> String {
        activities
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.id.to_owned())
            .expect("known activity")
    };
    for t in graph.transitions() {
        kb.add_instance(
            Instance::new(t.id.clone(), schema::classes::TRANSITION)
                .with("ID", Value::str(t.id.clone()))
                .with("Source Activity", Value::reference(aid(&t.source)))
                .with("Destination Activity", Value::reference(aid(&t.dest))),
        )
        .expect("valid transition instance");
    }

    // --- Service descriptions with C1..C8 -----------------------------
    type ServiceRow = (
        &'static str,
        &'static [&'static str],
        &'static str,
        &'static [&'static str],
        &'static str,
    );
    let services: [ServiceRow; 4] = [
        (
            "POD",
            &["A", "B"],
            "C1: A.Classification = \"POD-Parameter\" and B.Classification = \"2D Image\"",
            &["C"],
            "C2: C.Classification = \"Orientation File\"",
        ),
        (
            "P3DR",
            &["A", "B", "C"],
            "C3: A.Classification = \"P3DR-Parameter\" and B.Classification = \"2D Image\" and C.Classification = \"Orientation File\"",
            &["D"],
            "C4: D.Classification = \"3D Model\"",
        ),
        (
            "POR",
            &["A", "B", "C", "D"],
            "C5: A.Classification = \"POR-Parameter\" and B.Classification = \"2D Image\" and C.Classification = \"Orientation File\" and D.Classification = \"3D Model\"",
            &["E"],
            "C6: E.Classification = \"Orientation File\"",
        ),
        (
            "PSF",
            &["A", "B", "C"],
            "C7: A.Classification = \"PSF-Parameter\" and B.Classification = \"3D Model\" and C.Classification = \"3D Model\"",
            &["D"],
            "C8: D.Classification = \"Resolution File\"",
        ),
    ];
    for (name, inputs, in_cond, outputs, out_cond) in services {
        kb.add_instance(
            Instance::new(name, schema::classes::SERVICE)
                .with("Name", Value::str(name))
                .with("Type", Value::str("End-user"))
                .with("Input Data Set", Value::str_list(inputs.iter().copied()))
                .with("Input Condition", Value::str_list([in_cond]))
                .with("Output Data Set", Value::str_list(outputs.iter().copied()))
                .with("Output Condition", Value::str_list([out_cond])),
        )
        .expect("valid service instance");
    }

    // --- Process description, case description, task ------------------
    kb.add_instance(
        Instance::new("PD-3DSD", schema::classes::PROCESS_DESCRIPTION)
            .with("Name", Value::str("PD-3DSD"))
            .with(
                "Activity Set",
                Value::ref_list(activities.iter().map(|a| a.id)),
            )
            .with(
                "Transition Set",
                Value::ref_list((1..=15).map(|i| format!("TR{i}"))),
            )
            .with("Creator", Value::str("Planning Service")),
    )
    .expect("valid PD instance");
    kb.add_instance(
        Instance::new("CD-3DSD", schema::classes::CASE_DESCRIPTION)
            .with("Name", Value::str("CD-3DSD"))
            .with(
                "Initial Data Set",
                Value::ref_list((1..=7).map(|i| format!("D{i}"))),
            )
            .with("Result Set", Value::ref_list(["D12"]))
            .with(
                "Goal",
                Value::str(format!("D12.Value <= {TARGET_RESOLUTION}")),
            )
            .with(
                "Constraint",
                Value::str_list([format!("Cons1: {}", cons1())]),
            ),
    )
    .expect("valid CD instance");
    kb.add_instance(
        Instance::new("T1", schema::classes::TASK)
            .with("ID", Value::str("T1"))
            .with("Name", Value::str("3DSD"))
            .with("Owner", Value::str("UCF"))
            .with("Status", Value::str("Submitted"))
            .with(
                "Data Set",
                Value::ref_list((1..=7).map(|i| format!("D{i}"))),
            )
            .with("Result Set", Value::ref_list(["D12"]))
            .with("Case Description", Value::reference("CD-3DSD"))
            .with("Process Description", Value::reference("PD-3DSD"))
            .with("Need Planning", Value::Bool(true)),
    )
    .expect("valid task instance");

    kb
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridflow_plan::{ast_to_tree, graph_to_tree};
    use gridflow_process::recover::recover;

    #[test]
    fn figure_10_has_13_activities_and_15_transitions() {
        let g = process_description();
        assert_eq!(g.activities().len(), 13);
        assert_eq!(g.transitions().len(), 15);
        assert_eq!(g.end_user_activities().count(), 7);
        // 6 flow-control activities.
        assert_eq!(
            g.activities()
                .iter()
                .filter(|a| a.kind.is_flow_control())
                .count(),
            6
        );
    }

    #[test]
    fn figure_10_recovers_to_figure_11_tree() {
        let g = process_description();
        let tree = graph_to_tree(&g).unwrap();
        assert_eq!(tree, plan_tree());
        assert_eq!(tree.size(), 10);
    }

    #[test]
    fn figure_11_tree_structure() {
        let tree = plan_tree();
        let (seq, con, sel, ite) = tree.controller_counts();
        assert_eq!((seq, con, sel, ite), (1, 1, 0, 1));
        assert_eq!(
            tree.activities(),
            vec!["POD", "P3DR", "POR", "P3DR", "P3DR", "P3DR", "PSF"]
        );
    }

    #[test]
    fn figure_10_structured_text_round_trips() {
        let g = process_description();
        let ast = recover(&g).unwrap();
        assert_eq!(ast_to_tree(&ast), plan_tree());
    }

    #[test]
    fn planning_problem_matches_the_paper() {
        let p = planning_problem();
        assert_eq!(p.initial.len(), 7);
        assert_eq!(p.activities.len(), 4);
        let psf = p.activity("PSF").unwrap();
        assert_eq!(
            psf.inputs.iter().filter(|c| *c == MODEL_3D).count(),
            2,
            "PSF correlates two independent models"
        );
    }

    #[test]
    fn figure_11_plan_is_perfect_under_the_fitness_of_section_3() {
        use gridflow_planner::{evaluate, FitnessWeights};
        let f = evaluate(
            &plan_tree(),
            &planning_problem(),
            40,
            FitnessWeights::default(),
            64,
        );
        assert_eq!(f.validity, 1.0, "{f:?}");
        assert_eq!(f.goal, 1.0, "{f:?}");
        assert_eq!(f.size, 10);
    }

    #[test]
    fn cons1_drives_the_refinement_loop() {
        let mut state = case_description().initial_data;
        assert!(!cons1().eval(&state), "no resolution file yet");
        state.insert(
            "D12",
            DataItem::classified(RESOLUTION).with("Value", Value::Float(12.0)),
        );
        assert!(cons1().eval(&state), "12 Å is worse than 8 Å → refine");
        state.set_property("D12", "Value", Value::Float(8.0));
        assert!(!cons1().eval(&state), "8 Å reaches the goal → stop");
    }

    #[test]
    fn case_description_fields() {
        let case = case_description();
        assert_eq!(case.initial_data.len(), 7);
        assert_eq!(case.goals.len(), 2);
        assert!(case.constraints.contains_key("Cons1"));
        assert_eq!(case.result_set, vec!["D12"]);
        assert!(!case.goals_met(&case.initial_data));
    }

    #[test]
    fn virtual_lab_hosts_every_service() {
        let world = virtual_lab_world(0, 1);
        for service in service_names() {
            assert!(
                !world.executable_containers(&service).is_empty(),
                "{service} unhosted"
            );
        }
        // Fine-grain codes run on fine-grain-capable interconnects.
        for container in world.executable_containers("P3DR") {
            let c = world.topology.container(&container).unwrap();
            let r = world.topology.resource(&c.resource_id).unwrap();
            assert!(
                r.hardware.suits_fine_grain() || r.id.starts_with("extra"),
                "P3DR on {}",
                r.id
            );
        }
    }

    #[test]
    fn virtual_lab_scales_with_extra_sites() {
        let small = virtual_lab_world(0, 1);
        let big = virtual_lab_world(10, 1);
        assert_eq!(
            big.topology.resources.len(),
            small.topology.resources.len() + 10
        );
        // Deterministic for a seed.
        let big2 = virtual_lab_world(10, 1);
        assert_eq!(big.topology, big2.topology);
    }

    #[test]
    fn figure_13_instances_validate_against_figure_12_schema() {
        let kb = ontology_instances();
        assert!(kb.validate_all().is_empty());
        // 12 data + 13 activities + 15 transitions + 4 services + PD + CD
        // + task = 47 instances.
        assert_eq!(kb.instance_count(), 47);
        assert!(kb.dangling_refs().is_empty(), "{:?}", kb.dangling_refs());
    }

    #[test]
    fn figure_13_key_instances() {
        let kb = ontology_instances();
        let t1 = kb.instance("T1").unwrap();
        assert_eq!(t1.get_ref("Process Description"), Some("PD-3DSD"));
        assert_eq!(t1.get_ref("Case Description"), Some("CD-3DSD"));
        let a12 = kb.instance("A12").unwrap();
        assert_eq!(a12.get_str("Constraint"), Some("Cons1"));
        assert_eq!(a12.get_str("Type"), Some("Choice"));
        let tr14 = kb.instance("TR14").unwrap();
        assert_eq!(tr14.get_ref("Source Activity"), Some("A12"));
        assert_eq!(tr14.get_ref("Destination Activity"), Some("A4"));
        let d12 = kb.instance("D12").unwrap();
        assert_eq!(d12.get_str("Classification"), Some(RESOLUTION));
        assert_eq!(kb.instances_of(schema::classes::SERVICE).count(), 4);
    }
}
