//! §5's experiment and reusable sweep helpers.
//!
//! "We test the planning algorithm using the computational biology
//! described in Section 4 as test case.  Table 1 shows the parameter
//! settings used in the experiment.  We test the algorithm ten times and
//! select the individual with the highest fitness in the final
//! generation as the solution.  Then we calculate the average fitness,
//! validity fitness, goal fitness, and the size of solutions over ten
//! runs, shown in Table 2."

use crate::casestudy;
use gridflow_planner::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's Table 1 parameter settings.
pub fn table1_config() -> GpConfig {
    GpConfig::default() // Table 1 *is* the default configuration.
}

/// Render Table 1 as the paper prints it.
pub fn table1() -> String {
    let c = table1_config();
    let rows = [
        ("Population Size", format!("{}", c.population_size)),
        ("Number of Generation", format!("{}", c.generations)),
        ("Crossover Rate", format!("{}", c.crossover_rate)),
        ("Mutation Rate", format!("{}", c.mutation_rate)),
        ("Smax", format!("{}", c.smax)),
        ("wv", format!("{}", c.weights.validity)),
        ("wg", format!("{}", c.weights.goal)),
    ];
    let mut out = String::from("Table 1. Parameter Settings in the experiments.\n");
    out.push_str(&format!("{:<24} {:>8}\n", "Parameters", "Values"));
    out.push_str(&format!("{:-<24} {:->8}\n", "", ""));
    for (name, value) in rows {
        out.push_str(&format!("{name:<24} {value:>8}\n"));
    }
    out
}

/// Statistics of one planning run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunStat {
    /// Seed used.
    pub seed: u64,
    /// Best-of-final-generation fitness.
    pub fitness: Fitness,
}

/// The Table 2 aggregate over N runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Result {
    /// Per-run best solutions.
    pub runs: Vec<RunStat>,
    /// Average overall fitness of the best solutions.
    pub avg_fitness: f64,
    /// Average validity fitness.
    pub avg_validity: f64,
    /// Average goal fitness.
    pub avg_goal: f64,
    /// Average plan-tree size.
    pub avg_size: f64,
}

impl Table2Result {
    /// Do all runs solve the problem (f_v = f_g = 1)?
    pub fn all_perfect(&self) -> bool {
        self.runs.iter().all(|r| r.fitness.is_perfect())
    }
}

impl fmt::Display for Table2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 2. Experiment results collected from the best solutions of {} runs.",
            self.runs.len()
        )?;
        writeln!(
            f,
            "{:<28} {:>8}",
            "Average Fitness",
            format_num(self.avg_fitness)
        )?;
        writeln!(
            f,
            "{:<28} {:>8}",
            "Average Validity Fitness",
            format_num(self.avg_validity)
        )?;
        writeln!(
            f,
            "{:<28} {:>8}",
            "Average Goal Fitness",
            format_num(self.avg_goal)
        )?;
        writeln!(
            f,
            "{:<28} {:>8}",
            "Average Size of solutions",
            format_num(self.avg_size)
        )
    }
}

fn format_num(x: f64) -> String {
    format!("{x:.3}")
}

/// Run the §5 experiment: `runs` seeded GP runs on the case-study
/// planning problem with `config` (seed is varied per run: `config.seed +
/// run index`).
pub fn table2(config: GpConfig, runs: usize) -> Table2Result {
    table2_on(&casestudy::planning_problem(), config, runs)
}

/// The same aggregation over an arbitrary problem (used by the ablation
/// benches).
pub fn table2_on(problem: &PlanningProblem, config: GpConfig, runs: usize) -> Table2Result {
    let runs: Vec<RunStat> = (0..runs.max(1) as u64)
        .map(|i| {
            let cfg = GpConfig {
                seed: config.seed.wrapping_add(i),
                ..config
            };
            let result = GpPlanner::new(cfg, problem.clone()).run();
            RunStat {
                seed: cfg.seed,
                fitness: result.best_fitness,
            }
        })
        .collect();
    let n = runs.len() as f64;
    Table2Result {
        avg_fitness: runs.iter().map(|r| r.fitness.overall).sum::<f64>() / n,
        avg_validity: runs.iter().map(|r| r.fitness.validity).sum::<f64>() / n,
        avg_goal: runs.iter().map(|r| r.fitness.goal).sum::<f64>() / n,
        avg_size: runs.iter().map(|r| r.fitness.size as f64).sum::<f64>() / n,
        runs,
    }
}

/// One point of a parameter sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter's value, as a label.
    pub label: String,
    /// Aggregate over the runs at this point.
    pub result: Table2Result,
}

/// Sweep a GP parameter: for each `(label, config)` pair run the Table-2
/// aggregation and collect the series (the ablation benches print these
/// as the paper would a figure).
pub fn sweep<I>(problem: &PlanningProblem, points: I, runs: usize) -> Vec<SweepPoint>
where
    I: IntoIterator<Item = (String, GpConfig)>,
{
    points
        .into_iter()
        .map(|(label, config)| SweepPoint {
            label,
            result: table2_on(problem, config, runs),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_prints_the_papers_settings() {
        let t = table1();
        assert!(t.contains("Population Size"));
        assert!(t.contains("200"));
        assert!(t.contains("0.7"));
        assert!(t.contains("0.001"));
        assert!(t.contains("40"));
        assert!(t.contains("0.2"));
        assert!(t.contains("0.5"));
    }

    /// A scaled-down Table 2 (3 runs, smaller population) — the full-size
    /// reproduction runs in the bench harness.
    #[test]
    fn table2_small_scale_solves_the_case_study() {
        let config = GpConfig {
            population_size: 100,
            generations: 20,
            seed: 40,
            ..GpConfig::default()
        };
        let result = table2(config, 3);
        assert_eq!(result.runs.len(), 3);
        assert!(
            result.avg_goal > 0.99,
            "expected consistently solved runs: {result}"
        );
        assert!(result.avg_validity > 0.99, "{result}");
        assert!(result.avg_size < 20.0, "{result}");
        assert!(
            result.avg_fitness > 0.85 && result.avg_fitness < 1.0,
            "{result}"
        );
        let rendered = result.to_string();
        assert!(rendered.contains("Average Fitness"));
        assert!(rendered.contains("Average Size of solutions"));
    }

    #[test]
    fn table2_is_deterministic() {
        let config = GpConfig {
            population_size: 40,
            generations: 5,
            seed: 9,
            ..GpConfig::default()
        };
        assert_eq!(table2(config, 2), table2(config, 2));
    }

    #[test]
    fn sweep_produces_one_point_per_config() {
        let problem = casestudy::planning_problem();
        let base = GpConfig {
            population_size: 30,
            generations: 5,
            ..GpConfig::default()
        };
        let points = sweep(
            &problem,
            [10usize, 20].into_iter().map(|smax| {
                (
                    format!("smax={smax}"),
                    GpConfig {
                        smax,
                        init_max_size: smax.min(base.init_max_size),
                        ..base
                    },
                )
            }),
            2,
        );
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].label, "smax=10");
    }
}
