//! `gridflow` — command-line front end to the GridFlow library.
//!
//! ```text
//! gridflow parse <file.pdl>         validate a process description
//! gridflow print <file.pdl>         canonical (pretty-printed) form
//! gridflow dot <file.pdl>           Graphviz DOT of the workflow graph
//! gridflow tree <file.pdl>          the corresponding plan tree
//! gridflow plan [seed]              GP-plan the virus case study
//! gridflow enact [<file.pdl>]       enact on the virtual laboratory
//!                                   (defaults to the Fig. 10 workflow)
//! gridflow table2 [runs]            run the §5 experiment
//! ```
//!
//! Files use the process-description language documented in
//! `gridflow_process::parser`; `-` reads from stdin.

use gridflow::experiments;
use gridflow::prelude::*;
use gridflow_process::dot;
use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command {
        "parse" => cmd_parse(rest),
        "print" => cmd_print(rest),
        "dot" => cmd_dot(rest),
        "tree" => cmd_tree(rest),
        "plan" => cmd_plan(rest),
        "enact" => cmd_enact(rest),
        "table2" => cmd_table2(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: gridflow <parse|print|dot|tree|plan|enact|table2|help> [args]
  parse <file.pdl>    validate a process description (`-` = stdin)
  print <file.pdl>    canonical pretty-printed form
  dot <file.pdl>      Graphviz DOT of the workflow graph
  tree <file.pdl>     the corresponding plan tree
  plan [seed]         GP-plan the virus case study (default seed 1)
  enact [file.pdl]    enact on the virtual lab (default: Fig. 10)
  table2 [runs]       run the §5 experiment (default 10 runs)";

fn read_source(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("missing <file.pdl> argument")?;
    if path == "-" {
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(buffer)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    }
}

fn parse_and_lower(
    args: &[String],
) -> Result<(gridflow_process::ProcessAst, ProcessGraph), String> {
    let source = read_source(args)?;
    let ast = parse_process(&source).map_err(|e| e.with_position(&source))?;
    let graph = lower("cli", &ast).map_err(|e| e.to_string())?;
    graph.validate().map_err(|e| e.to_string())?;
    Ok((ast, graph))
}

fn cmd_parse(args: &[String]) -> Result<(), String> {
    let (ast, graph) = parse_and_lower(args)?;
    println!(
        "valid: {} statements, {} AST nodes, depth {}",
        ast.body.len(),
        ast.node_count(),
        ast.depth()
    );
    println!(
        "graph: {} activities ({} end-user), {} transitions",
        graph.activities().len(),
        graph.end_user_activities().count(),
        graph.transitions().len()
    );
    Ok(())
}

fn cmd_print(args: &[String]) -> Result<(), String> {
    let (ast, _) = parse_and_lower(args)?;
    print!("{}", printer::print(&ast));
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let (_, graph) = parse_and_lower(args)?;
    print!("{}", dot::to_dot(&graph));
    Ok(())
}

fn cmd_tree(args: &[String]) -> Result<(), String> {
    let (ast, _) = parse_and_lower(args)?;
    let tree = ast_to_tree(&ast);
    fn show(node: &PlanNode, depth: usize) {
        let pad = "  ".repeat(depth);
        match node {
            PlanNode::Terminal(name) => println!("{pad}{name}"),
            PlanNode::Sequential(c) => {
                println!("{pad}Sequential");
                c.iter().for_each(|n| show(n, depth + 1));
            }
            PlanNode::Concurrent(c) => {
                println!("{pad}Concurrent");
                c.iter().for_each(|n| show(n, depth + 1));
            }
            PlanNode::Selective(c) => {
                println!("{pad}Selective");
                for (cond, n) in c {
                    println!("{pad}  [{cond}]");
                    show(n, depth + 2);
                }
            }
            PlanNode::Iterative { cond, body } => {
                println!("{pad}Iterative [{cond}]");
                body.iter().for_each(|n| show(n, depth + 1));
            }
        }
    }
    show(&tree, 0);
    println!("\nsize {} / depth {}", tree.size(), tree.depth());
    Ok(())
}

fn cmd_plan(args: &[String]) -> Result<(), String> {
    let seed: u64 = args
        .first()
        .map(|s| s.parse().map_err(|_| format!("bad seed `{s}`")))
        .transpose()?
        .unwrap_or(1);
    let lab = VirtualLab::new(0, seed);
    let plan = lab.plan().map_err(|e| e.to_string())?;
    println!(
        "fitness: overall {:.3} (validity {:.2}, goal {:.2}, size {})",
        plan.fitness.overall, plan.fitness.validity, plan.fitness.goal, plan.fitness.size
    );
    println!("viable: {}", plan.viable);
    print!("\n{}", printer::print(&tree_to_ast(&plan.tree)));
    Ok(())
}

fn cmd_enact(args: &[String]) -> Result<(), String> {
    let mut lab = VirtualLab::new(0, 1);
    let graph = if args.is_empty() {
        lab.figure_10()
    } else {
        let (_, graph) = parse_and_lower(args)?;
        graph
    };
    let report = lab.enact(&graph);
    println!("success: {}", report.success);
    if let Some(reason) = &report.abort_reason {
        println!("abort: {reason}");
    }
    for e in &report.executions {
        println!(
            "  {:<8} via {:<10} on {:<20} {:>8.1}s  {:>7.2}",
            e.service, e.activity, e.container, e.duration_s, e.cost
        );
    }
    println!(
        "total: {} executions, {:.1}s, cost {:.2}",
        report.executions.len(),
        report.total_duration_s,
        report.total_cost
    );
    if report.success {
        Ok(())
    } else {
        Err("enactment did not reach the case goals".into())
    }
}

fn cmd_table2(args: &[String]) -> Result<(), String> {
    let runs: usize = args
        .first()
        .map(|s| s.parse().map_err(|_| format!("bad run count `{s}`")))
        .transpose()?
        .unwrap_or(10);
    let config = GpConfig {
        seed: 1,
        ..experiments::table1_config()
    };
    let result = experiments::table2(config, runs);
    print!("{result}");
    println!(
        "(paper: fitness 0.928, validity 1.0, goal 1.0, size 9.7; all runs perfect: {})",
        result.all_perfect()
    );
    Ok(())
}
