//! Golden conformance for the workload families.
//!
//! Two claims are pinned here:
//!
//! 1. **The virus-reconstruction case study enacts like the paper says
//!    it does.**  The Figs. 10–13 workflow's trace must show the
//!    happens-before edges of the pipeline (`POD` before `P3DR1`,
//!    `POR` before `PSF`), no double dispatch, the three-pass
//!    refinement trajectory (12.0 → 10.0 → 8.0 Å), and the `P3DR`
//!    fan-out actually fanning out — the three branches dispatch in
//!    the same tick when the virtual laboratory has three live `P3DR`
//!    hosts.
//! 2. **The generator is seed-deterministic.**  The same knobs produce
//!    a byte-identical [`Workload`] (via [`Workload::fingerprint`]),
//!    and under FIFO admission a byte-identical merged JSONL trace at
//!    workers 1, 2, and 8.
//!
//! [`Workload`]: gridflow_harness::workload::Workload
//! [`Workload::fingerprint`]: gridflow_harness::workload::Workload::fingerprint

use gridflow_harness::workload::{
    virus_reconstruction_workload, DurationProfile, GraphShape, Workload, WorkloadGen,
};
use gridflow_harness::{FaultPlan, MultiCaseScenario, TraceEvent, TraceQuery};

fn traced_run(wl: &Workload, cases: usize, workers: usize) -> (TraceQuery, String) {
    let outcome = MultiCaseScenario::new(&FaultPlan::default(), wl, cases)
        .workers(workers)
        .traced()
        .run();
    assert!(
        outcome.engine.all_succeeded(),
        "{}: fleet did not succeed: {:?}",
        wl.name,
        outcome
            .engine
            .cases
            .iter()
            .map(|c| c.report.abort_reason.clone())
            .collect::<Vec<_>>()
    );
    let log = outcome.trace.expect("traced");
    (TraceQuery::new(log.records()), log.to_jsonl())
}

fn dispatched(activity: &'static str) -> impl FnMut(&TraceEvent) -> bool {
    move |e| matches!(e, TraceEvent::ActivityDispatched { activity: a, .. } if a == activity)
}

// ------------------------------------------------------- virus golden

#[test]
fn virus_trace_respects_the_pipelines_happens_before_edges() {
    let wl = virus_reconstruction_workload();
    let (q, _) = traced_run(&wl, 1, 1);
    // The one-shot prefix runs exactly once; only the refinement loop's
    // body (POR, P3DR2/3/4, PSF) may legitimately re-dispatch, once per
    // pass.  (`check_no_double_dispatch` is the crash/resume invariant
    // and would flag the loop itself, so the claim is made per activity.)
    for activity in ["POD", "P3DR1"] {
        assert_eq!(
            q.count(|e| matches!(e,
                TraceEvent::ActivityDispatched { activity: a, .. } if a == activity)),
            1,
            "{activity} is outside the loop and must dispatch exactly once"
        );
    }
    q.assert_happens_before(
        "POD dispatched",
        dispatched("POD"),
        "P3DR1 dispatched",
        dispatched("P3DR1"),
    );
    q.assert_happens_before(
        "POR dispatched",
        dispatched("POR"),
        "PSF dispatched",
        dispatched("PSF"),
    );
    // The refinement loop drives resolution 12.0 → 10.0 → 8.0 Å: three
    // PSF passes, and (per loop pass) a full P3DR2/3/4 fan-out.
    let psf = q.count(
        |e| matches!(e, TraceEvent::ActivityCompleted { activity, .. } if activity == "PSF"),
    );
    assert_eq!(psf, 3, "12.0 → 8.0 Å at 2.0 Å per pass is three passes");
}

#[test]
fn virus_p3dr_fan_out_branches_dispatch_concurrently() {
    let wl = virus_reconstruction_workload();
    let outcome = MultiCaseScenario::new(&FaultPlan::default(), &wl, 1)
        .traced()
        .run();
    assert!(outcome.engine.all_succeeded());
    let log = outcome.trace.expect("traced");
    // First dispatch tick of each fan-out branch.  The virtual lab has
    // three live P3DR hosts (purdue-sp2, sdsc-sp3, anl-backup), so the
    // FORK's branches must all go out in the same tick — serialized
    // branches would mean the engine ignored available capacity.
    let first_tick = |activity: &str| {
        log.records()
            .iter()
            .find(|r| {
                matches!(&r.event,
                    TraceEvent::ActivityDispatched { activity: a, .. } if a == activity)
            })
            .map(|r| r.tick)
            .unwrap_or_else(|| panic!("{activity} never dispatched"))
    };
    let (t2, t3, t4) = (
        first_tick("P3DR2"),
        first_tick("P3DR3"),
        first_tick("P3DR4"),
    );
    assert_eq!(t2, t3, "P3DR2 and P3DR3 should fan out in the same tick");
    assert_eq!(t2, t4, "P3DR2 and P3DR4 should fan out in the same tick");
}

#[test]
fn virus_trace_is_identical_across_worker_counts() {
    let wl = virus_reconstruction_workload();
    let (_, w1) = traced_run(&wl, 2, 1);
    let (_, w2) = traced_run(&wl, 2, 2);
    let (_, w8) = traced_run(&wl, 2, 8);
    assert!(!w1.is_empty());
    assert_eq!(w1, w2, "virus fleet diverged at workers=2");
    assert_eq!(w1, w8, "virus fleet diverged at workers=8");
}

// ------------------------------------------- generator determinism

#[test]
fn same_knobs_build_byte_identical_workloads() {
    for shape in GraphShape::ALL {
        for duration in [DurationProfile::DataStaged, DurationProfile::ComputeBound] {
            let build = || {
                WorkloadGen::new(42)
                    .shape(shape)
                    .width(3)
                    .depth(2)
                    .duration(duration)
                    .heterogeneous_capacity(true)
                    .build()
            };
            assert_eq!(
                build().fingerprint(),
                build().fingerprint(),
                "shape {shape:?} / {duration:?} not seed-deterministic"
            );
        }
    }
}

#[test]
fn generated_workloads_trace_identically_across_worker_counts() {
    for shape in GraphShape::ALL {
        let wl = WorkloadGen::new(19).shape(shape).width(2).depth(2).build();
        let (_, w1) = traced_run(&wl, 3, 1);
        let (_, w2) = traced_run(&wl, 3, 2);
        let (_, w8) = traced_run(&wl, 3, 8);
        assert!(!w1.is_empty(), "{}: empty trace", wl.name);
        assert_eq!(w1, w2, "{} diverged at workers=2", wl.name);
        assert_eq!(w1, w8, "{} diverged at workers=8", wl.name);
    }
}

#[test]
fn distinct_seeds_reach_distinct_workloads() {
    let a = WorkloadGen::new(1).shape(GraphShape::ChoiceDense).build();
    let b = WorkloadGen::new(2).shape(GraphShape::ChoiceDense).build();
    assert_ne!(a.fingerprint(), b.fingerprint());
}
