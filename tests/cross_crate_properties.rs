//! Cross-crate property tests: invariants that only hold when the
//! representations (tree / AST / text / graph), the enactment machine,
//! and the planner agree with each other.

use gridflow::prelude::*;
use gridflow_grid::container::ApplicationContainer;
use gridflow_grid::resource::{Resource, ResourceKind};
use gridflow_grid::GridTopology;
use proptest::prelude::*;

fn activity_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("alpha".to_owned()),
        Just("beta".to_owned()),
        Just("gamma".to_owned()),
        Just("delta".to_owned()),
    ]
}

/// Loop-free plan trees over a fixed 4-service vocabulary.
fn loop_free_tree() -> impl Strategy<Value = PlanNode> {
    let leaf = activity_name().prop_map(PlanNode::Terminal);
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(PlanNode::Sequential),
            prop::collection::vec(inner.clone(), 2..4).prop_map(PlanNode::Concurrent),
            prop::collection::vec(inner, 2..4).prop_map(PlanNode::selective_unguarded),
        ]
    })
}

/// A world where every generated service is hosted and has no inputs, so
/// every enactment step is executable.
fn permissive_world() -> GridWorld {
    let names = ["alpha", "beta", "gamma", "delta"];
    let resources: Vec<Resource> = names
        .iter()
        .map(|n| {
            Resource::new(format!("r-{n}"), ResourceKind::PcCluster)
                .with_nodes(8)
                .with_software([n.to_string()])
        })
        .collect();
    let containers: Vec<ApplicationContainer> = names
        .iter()
        .map(|n| {
            ApplicationContainer::new(format!("ac-{n}"), format!("r-{n}")).hosting([n.to_string()])
        })
        .collect();
    let mut world = GridWorld::new(GridTopology {
        resources,
        containers,
    });
    for n in names {
        world.offer(ServiceOffering::new(
            n,
            Vec::<String>::new(),
            vec![OutputSpec::plain(format!("{n}-out"))],
        ));
    }
    world
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any loop-free tree, lowered to a graph, enacts to completion on a
    /// permissive world, and the number of executions never exceeds the
    /// tree's terminals (selective branches execute once).
    #[test]
    fn random_plans_enact_to_completion(tree in loop_free_tree()) {
        let graph = tree_to_graph("prop", &tree).unwrap();
        let mut world = permissive_world();
        let case = CaseDescription::new("prop")
            .with_data("D1", DataItem::classified("seed"));
        let report = Enactor::default().enact(&mut world, &graph, &case);
        prop_assert!(report.success, "abort: {:?}", report.abort_reason);
        prop_assert!(report.executions.len() <= tree.activities().len());
        prop_assert!(report.failed_attempts.is_empty());
        // World accounting matches the report.
        let total: f64 = world.history.iter().map(|r| r.duration_s).sum();
        prop_assert!((total - report.total_duration_s).abs() < 1e-6);
    }

    /// Text → AST → tree → graph → tree → AST → text is a fixed point
    /// after one round (canonical form), for arbitrary loop-free trees.
    #[test]
    fn representation_pipeline_reaches_a_fixed_point(tree in loop_free_tree()) {
        let text1 = printer::print(&tree_to_ast(&tree));
        let ast1 = parse_process(&text1).unwrap();
        let tree1 = ast_to_tree(&ast1);
        let graph = tree_to_graph("prop", &tree1).unwrap();
        let tree2 = graph_to_tree(&graph).unwrap();
        prop_assert_eq!(&tree1, &tree2);
        let text2 = printer::print(&tree_to_ast(&tree2));
        prop_assert_eq!(text1, text2);
    }

    /// The simulation service's parallel makespan never exceeds the
    /// serial enactor's total duration, and both execute the same count
    /// on a deterministic (selective-free) tree.
    #[test]
    fn prediction_lower_bounds_serial_enactment(
        branches in prop::collection::vec(
            prop::collection::vec(activity_name().prop_map(PlanNode::Terminal), 1..3),
            2..4
        )
    ) {
        let tree = PlanNode::Sequential(vec![PlanNode::Concurrent(
            branches.into_iter().map(PlanNode::Sequential).collect(),
        )]);
        let graph = tree_to_graph("prop", &tree).unwrap();
        let world = permissive_world();
        let case = CaseDescription::new("prop").with_data("D1", DataItem::classified("x"));
        let prediction =
            gridflow_services::simulation::predict(&world, &graph, &case, 10_000).unwrap();
        let mut world2 = permissive_world();
        let report = Enactor::default().enact(&mut world2, &graph, &case);
        prop_assert!(report.success);
        prop_assert_eq!(prediction.executions, report.executions.len());
        prop_assert!(prediction.makespan_s <= report.total_duration_s + 1e-9);
    }

    /// Fitness evaluation agrees between a tree and its canonical form on
    /// validity and goal components (size may legitimately differ).
    #[test]
    fn canonicalization_preserves_semantic_fitness(tree in loop_free_tree()) {
        let problem = PlanningProblem::builder()
            .initial(["seed"])
            .goal("alpha-out", 1)
            .activity(ActivitySpec::new("alpha", Vec::<String>::new(), ["alpha-out"]))
            .activity(ActivitySpec::new("beta", Vec::<String>::new(), ["beta-out"]))
            .activity(ActivitySpec::new("gamma", Vec::<String>::new(), ["gamma-out"]))
            .activity(ActivitySpec::new("delta", Vec::<String>::new(), ["delta-out"]))
            .build();
        let canon = gridflow_plan::canonicalize(&tree);
        let f1 = gridflow_planner::evaluate(&tree, &problem, 100, FitnessWeights::default(), 64);
        let f2 = gridflow_planner::evaluate(&canon, &problem, 100, FitnessWeights::default(), 64);
        prop_assert_eq!(f1.validity, f2.validity);
        prop_assert_eq!(f1.goal, f2.goal);
    }

    /// Ontology round trip: any loop-free graph serialized into ontology
    /// transition instances reconstructs the same edge set.
    #[test]
    fn graph_edges_survive_the_ontology(tree in loop_free_tree()) {
        use gridflow_ontology::schema;
        let graph = tree_to_graph("prop", &tree).unwrap();
        let mut kb = schema::grid_ontology_shell();
        for a in graph.activities() {
            kb.add_instance(
                Instance::new(a.id.clone(), schema::classes::ACTIVITY)
                    .with("ID", Value::str(a.id.clone()))
                    .with("Name", Value::str(a.id.clone()))
                    .with("Type", Value::str(a.kind.ontology_type())),
            ).unwrap();
        }
        for t in graph.transitions() {
            kb.add_instance(
                Instance::new(t.id.clone(), schema::classes::TRANSITION)
                    .with("ID", Value::str(t.id.clone()))
                    .with("Source Activity", Value::reference(t.source.clone()))
                    .with("Destination Activity", Value::reference(t.dest.clone())),
            ).unwrap();
        }
        prop_assert!(kb.validate_all().is_empty());
        prop_assert!(kb.dangling_refs().is_empty());
        // Reconstruct the edges from the KB and compare.
        let mut edges_kb: Vec<(String, String)> = kb
            .instances_of(schema::classes::TRANSITION)
            .map(|t| {
                (
                    t.get_ref("Source Activity").unwrap().to_owned(),
                    t.get_ref("Destination Activity").unwrap().to_owned(),
                )
            })
            .collect();
        let mut edges_graph: Vec<(String, String)> = graph
            .transitions()
            .iter()
            .map(|t| (t.source.clone(), t.dest.clone()))
            .collect();
        edges_kb.sort();
        edges_graph.sort();
        prop_assert_eq!(edges_kb, edges_graph);
    }
}
