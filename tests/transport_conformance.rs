//! Transport-selection conformance suite (hosted by `gridflow-harness`).
//!
//! The contract of the pluggable delivery substrate:
//!
//! 1. the in-proc default is the legacy behavior, byte-identical to
//!    runs that never heard of transport selection;
//! 2. the loopback-TCP mirror plane is a pure observer — primary trace
//!    bytes and scenario outcomes are identical with it on or off,
//!    while every record really crosses a socket;
//! 3. a cold mirror node wakes exactly once no matter how many
//!    emissions race for it (wake coalescing);
//! 4. health probes walk the node's circuit breaker open → half-open →
//!    closed across a partition-and-heal cycle, in the documented
//!    happens-before order;
//! 5. engine-plane partition windows cut the named containers for
//!    exactly `[from_tick, heal_tick)`, emit their boundary events
//!    once, and stay invariant under worker count.

use gridflow_harness::workload::{dinner_recovery_workload, dinner_workload};
use gridflow_harness::{
    outcome_fingerprint, BreakerConfig, FaultPlan, MultiCaseScenario, RemoteMirror, Scenario,
    TcpMirrorConfig, TraceEvent, TraceQuery, TransportSpec,
};
use gridflow_services::WakeOutcome;
use std::time::Duration;

fn quick_tcp() -> TcpMirrorConfig {
    TcpMirrorConfig {
        deadline: Duration::from_millis(800),
        ..TcpMirrorConfig::default()
    }
}

// ------------------------------------------------------------- 1 & 2

#[test]
fn explicit_in_proc_is_byte_identical_to_the_default() {
    let plan = FaultPlan::seeded(7)
        .failing_activities(0.2)
        .crashing_after(0);
    let wl = dinner_workload();
    let default_run = Scenario::new(&plan, &wl).traced().run();
    let explicit = Scenario::new(&plan, &wl)
        .transport(TransportSpec::InProc)
        .traced()
        .run();
    assert_eq!(default_run, explicit);
    assert!(explicit.remote.is_none(), "in-proc has no remote plane");
    assert_eq!(
        default_run.trace.unwrap().to_jsonl(),
        explicit.trace.unwrap().to_jsonl()
    );

    let fleet_default = MultiCaseScenario::new(&plan, &wl, 3).traced().run();
    let fleet_explicit = MultiCaseScenario::new(&plan, &wl, 3)
        .transport(TransportSpec::InProc)
        .traced()
        .run();
    assert_eq!(
        fleet_default.trace.unwrap().to_jsonl(),
        fleet_explicit.trace.unwrap().to_jsonl()
    );
    assert!(fleet_explicit.remote.is_none());
}

#[test]
fn tcp_mirror_preserves_primary_trace_bytes_and_outcome() {
    let plan = FaultPlan::seeded(11).crashing_after(0);
    let wl = dinner_workload();
    let baseline = Scenario::new(&plan, &wl).traced().run();
    let mirrored = Scenario::new(&plan, &wl)
        .transport(TransportSpec::Tcp(quick_tcp()))
        .traced()
        .run();

    // The engine plane cannot tell the transports apart.
    assert_eq!(baseline, mirrored);
    assert_eq!(
        outcome_fingerprint(&baseline),
        outcome_fingerprint(&mirrored)
    );
    let baseline_jsonl = baseline.trace.unwrap().to_jsonl();
    let mirrored_log = mirrored.trace.unwrap();
    assert_eq!(baseline_jsonl, mirrored_log.to_jsonl());

    // …while the mirror really carried every record over TCP.
    let report = mirrored.remote.expect("tcp run returns a remote report");
    assert_eq!(report.mirrored, mirrored_log.len() as u64);
    assert_eq!(report.failed, 0, "loopback delivery must not drop");
    assert_eq!(report.wakes, 1, "one cold period, one wake");
    assert!(report.endpoint.is_some());
    assert_eq!(report.probes_ok, quick_tcp().probes);
    assert_eq!(report.probes_failed, 0);
    assert!(report.slept, "finish reaps the idle node");
}

#[test]
fn tcp_fleet_mirrors_the_merged_trace_without_perturbing_it() {
    let plan = FaultPlan::seeded(3).failing_activities(0.1);
    let wl = dinner_workload();
    let baseline = MultiCaseScenario::new(&plan, &wl, 2).traced().run();
    let mirrored = MultiCaseScenario::new(&plan, &wl, 2)
        .transport(TransportSpec::Tcp(quick_tcp()))
        .traced()
        .run();
    assert_eq!(
        baseline.trace.unwrap().to_jsonl(),
        mirrored.trace.as_ref().unwrap().to_jsonl()
    );
    let report = mirrored.remote.expect("tcp fleet reports");
    assert_eq!(report.mirrored, mirrored.trace.unwrap().len() as u64);
    assert_eq!(report.failed, 0);
    assert_eq!(report.wakes, 1);
}

// ----------------------------------------------------------------- 3

#[test]
fn cold_mirror_coalesces_concurrent_emissions_into_one_wake() {
    let mirror = RemoteMirror::new(quick_tcp());
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let sink = mirror.sink();
            std::thread::spawn(move || {
                sink.emit(
                    "t",
                    TraceEvent::Custom {
                        label: "race".into(),
                        detail: format!("emitter-{i}"),
                    },
                );
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(mirror.wake_count(), 1, "racing emissions coalesce");
    assert_eq!(mirror.mirrored(), 8, "every emission still delivered");
}

// ----------------------------------------------------------------- 4

#[test]
fn partition_heal_walks_the_breaker_open_half_open_closed() {
    let mirror = RemoteMirror::new(TcpMirrorConfig {
        deadline: Duration::from_millis(500),
        probes: 0,
        breaker: BreakerConfig {
            failure_threshold: 2,
            open_ticks: 3,
        },
        ..TcpMirrorConfig::default()
    });
    assert_eq!(mirror.ensure_awake(), WakeOutcome::Woke);
    assert_eq!(mirror.probe(2), (2, 0), "healthy node answers pings");
    assert!(mirror.node_admitted());

    // Partition: the node drops off the network mid-run.
    mirror.note(TraceEvent::PartitionStarted {
        a: "harness".into(),
        b: "remote-mirror".into(),
        heal_tick: 0,
    });
    mirror.sleep_now();
    mirror.probe(2);
    assert!(
        !mirror.node_admitted(),
        "failed probes must open the breaker"
    );

    // Heal: the node comes back; once the cooldown elapses the next
    // probe is the half-open trial and readmits it.
    assert_eq!(mirror.ensure_awake(), WakeOutcome::Woke);
    mirror.note(TraceEvent::PartitionHealed {
        a: "harness".into(),
        b: "remote-mirror".into(),
    });
    mirror.probe(4);
    assert!(mirror.node_admitted(), "healed node is readmitted");

    let q = TraceQuery::new(mirror.mirror_log().records());
    q.assert_partition_discipline();
    q.assert_breaker_discipline();
    q.assert_happens_before(
        "transport.partitioned",
        |e| e.label() == "transport.partitioned",
        "breaker.opened",
        |e| e.label() == "breaker.opened",
    );
    q.assert_happens_before(
        "breaker.opened",
        |e| e.label() == "breaker.opened",
        "transport.healed",
        |e| e.label() == "transport.healed",
    );
    q.assert_happens_before(
        "transport.healed",
        |e| e.label() == "transport.healed",
        "breaker.closed",
        |e| e.label() == "breaker.closed",
    );
}

// ----------------------------------------------------------------- 5

#[test]
fn engine_partition_window_emits_boundaries_and_stays_worker_invariant() {
    // `ac-h4` hosts only `nuke`, the unused alternative cooker, so the
    // fleet's outcome is untouched — what's under test is the window's
    // bookkeeping.
    let plan = FaultPlan::seeded(5).partitioning("coordinator", "ac-h4", 1, 3);
    let wl = dinner_workload();
    let reference = MultiCaseScenario::new(&plan, &wl, 3).traced().run();
    assert!(reference.engine.all_succeeded());
    let log = reference.trace.expect("traced");
    let q = TraceQuery::new(log.records());
    q.assert_partition_discipline();
    assert_eq!(q.count(|e| e.label() == "transport.partitioned"), 1);
    assert_eq!(q.count(|e| e.label() == "transport.healed"), 1);
    q.assert_happens_before(
        "transport.partitioned",
        |e| e.label() == "transport.partitioned",
        "transport.healed",
        |e| e.label() == "transport.healed",
    );

    // The merged trace is a pure function of the plan — worker count
    // cannot move a partition boundary by one byte.
    for workers in [2, 8] {
        let again = MultiCaseScenario::new(&plan, &wl, 3)
            .workers(workers)
            .traced()
            .run();
        assert_eq!(
            log.to_jsonl(),
            again.trace.unwrap().to_jsonl(),
            "partition trace diverged at {workers} workers"
        );
    }
}

#[test]
fn recovery_fleet_completes_across_a_partition_heal_window_over_tcp() {
    // The acceptance scenario: a recovery-ladder fleet rides out
    // message chaos plus a partition of one `prep` host that heals
    // mid-run, with every trace record really crossing loopback TCP.
    let plan = FaultPlan::seeded(0)
        .failing_activities(0.1)
        .dropping(0.2)
        .delaying(0.2, 2)
        .duplicating(0.1)
        .reordering(0.15)
        .partitioning("coordinator", "ac-h0", 2, 5);
    let wl = dinner_recovery_workload();
    let baseline = MultiCaseScenario::new(&plan, &wl, 3).traced().run();
    let mirrored = MultiCaseScenario::new(&plan, &wl, 3)
        .transport(TransportSpec::Tcp(quick_tcp()))
        .traced()
        .run();

    assert!(
        mirrored.engine.all_succeeded(),
        "recovery fleet must complete across the partition window"
    );
    assert_eq!(
        baseline.trace.unwrap().to_jsonl(),
        mirrored.trace.as_ref().unwrap().to_jsonl(),
        "transport selection must not change engine semantics"
    );
    let q = TraceQuery::new(mirrored.trace.unwrap().records());
    q.assert_partition_discipline();
    let report = mirrored.remote.expect("tcp fleet reports");
    assert!(report.mirrored > 0);
    assert_eq!(report.failed, 0);
}

// ------------------------------------------------------------ nightly

/// 32-seed partition/chaos sweep: replay byte-identity, partition
/// discipline and worker invariance across randomized windows.  Run
/// with `cargo test -- --ignored nightly_partition_chaos_seed_sweep`.
#[test]
#[ignore = "nightly: 32-seed partition/chaos sweep"]
fn nightly_partition_chaos_seed_sweep() {
    let wl = dinner_recovery_workload();
    for seed in 0..32u64 {
        let from = seed % 5;
        let heal = from + 2 + seed % 3;
        let side = ["ac-h0", "ac-h4", "ac-h6"][(seed % 3) as usize];
        let plan = FaultPlan::seeded(seed)
            .failing_activities(0.15)
            .dropping(0.2)
            .delaying(0.15, 2)
            .reordering(0.1)
            .partitioning("coordinator", side, from, heal);
        let first = MultiCaseScenario::new(&plan, &wl, 3).traced().run();
        let log = first.trace.expect("traced");
        // A fleet whose cases all abort before `heal` legitimately ends
        // with the window open; discipline is only assertable when the
        // run lived to see the heal tick.
        if first.engine.ticks > heal {
            TraceQuery::new(log.records()).assert_partition_discipline();
        }
        let replay = MultiCaseScenario::new(&plan, &wl, 3).traced().run();
        assert_eq!(
            log.to_jsonl(),
            replay.trace.unwrap().to_jsonl(),
            "seed {seed}: replay diverged"
        );
        let wide = MultiCaseScenario::new(&plan, &wl, 3)
            .workers(4)
            .traced()
            .run();
        assert_eq!(
            log.to_jsonl(),
            wide.trace.unwrap().to_jsonl(),
            "seed {seed}: worker count perturbed the trace"
        );
    }
}
