//! Integration of failure handling: container loss, stochastic failures,
//! retry fallbacks, and the §3.3 re-planning escalation, on the
//! case-study workflow.

use gridflow::casestudy;
use gridflow::prelude::*;
use gridflow_grid::failure::FailureModel;

fn enactment_config(seed: u64) -> EnactmentConfig {
    EnactmentConfig {
        replan: true,
        planning_goals: casestudy::planning_problem().goals,
        // Fresh GP plans are loop-free; re-attach the case's refinement
        // loop so the resolution goal stays reachable after a re-plan.
        wrap_replans_with_constraint: Some("Cons1".into()),
        gp: GpConfig {
            seed,
            ..GpConfig::default()
        },
        ..EnactmentConfig::default()
    }
}

#[test]
fn retry_uses_backup_containers() {
    let mut world = casestudy::virtual_lab_world(0, 1);
    // The primary P3DR hosts die; anl-backup keeps the service alive.
    world.set_container_up("ac-purdue-sp2", false).unwrap();
    world.set_container_up("ac-sdsc-sp3", false).unwrap();
    let graph = casestudy::process_description();
    let case = casestudy::case_description();
    let report = Enactor::default().enact(&mut world, &graph, &case);
    assert!(report.success, "abort: {:?}", report.abort_reason);
    assert!(report
        .executions
        .iter()
        .filter(|e| e.service == "P3DR")
        .all(|e| e.container == "ac-anl-backup"));
}

#[test]
fn losing_every_host_of_a_required_service_fails_without_replanning() {
    let mut world = casestudy::virtual_lab_world(0, 2);
    for c in world.hosting_containers("P3DR") {
        world.set_container_up(&c, false).unwrap();
    }
    let graph = casestudy::process_description();
    let case = casestudy::case_description();
    let report = Enactor::default().enact(&mut world, &graph, &case);
    assert!(!report.success);
    assert!(report.abort_reason.is_some());
    assert_eq!(report.replans, 0);
}

#[test]
fn replanning_cannot_save_an_irreplaceable_service() {
    // P3DR is the only producer of 3D models: re-planning must try and
    // honestly fail.
    let mut world = casestudy::virtual_lab_world(0, 3);
    for c in world.hosting_containers("P3DR") {
        world.set_container_up(&c, false).unwrap();
    }
    let graph = casestudy::process_description();
    let case = casestudy::case_description();
    let report = Enactor::builder()
        .config(enactment_config(3))
        .build()
        .enact(&mut world, &graph, &case);
    assert!(!report.success);
    assert!(report.replans >= 1, "re-planning was attempted");
    assert!(report
        .abort_reason
        .as_deref()
        .unwrap()
        .contains("no viable plan"));
}

#[test]
fn replanning_routes_around_a_replaceable_service() {
    // Add an alternative reconstruction service, then kill P3DR: the
    // re-planner must switch to the alternative.
    let mut world = casestudy::virtual_lab_world(0, 4);
    world.offer(ServiceOffering::new(
        "P3DR-GPU",
        ["P3DR-Parameter", "2D Image", "Orientation File"],
        vec![OutputSpec::plain("3D Model")],
    ));
    // Host it on the UCF clusters.
    for (resource, container) in [
        ("ucf-cluster-1", "ac-ucf-cluster-1"),
        ("ucf-cluster-2", "ac-ucf-cluster-2"),
    ] {
        world
            .topology
            .resources
            .iter_mut()
            .find(|r| r.id == resource)
            .unwrap()
            .software
            .push("P3DR-GPU".into());
        world
            .topology
            .containers
            .iter_mut()
            .find(|c| c.id == container)
            .unwrap()
            .services
            .push("P3DR-GPU".into());
    }
    for c in world.hosting_containers("P3DR") {
        world.set_container_up(&c, false).unwrap();
    }
    let graph = casestudy::process_description();
    let case = casestudy::case_description();
    let report = Enactor::builder()
        .config(enactment_config(4))
        .build()
        .enact(&mut world, &graph, &case);
    assert!(report.success, "abort: {:?}", report.abort_reason);
    assert!(report.replans >= 1);
    assert!(report.executions.iter().any(|e| e.service == "P3DR-GPU"));
    assert!(
        report
            .executions
            .iter()
            .filter(|e| e.service == "P3DR")
            .count()
            <= 1,
        "dead service must not be re-dispatched after the re-plan"
    );
}

#[test]
fn stochastic_failures_degrade_success_without_retries() {
    // Sweep the per-execution failure probability; success of a
    // no-retry enactor should fall as failures rise, and a retrying
    // enactor should dominate it.
    let run = |failure_prob: f64, retries: usize, seed: u64| -> usize {
        let mut successes = 0;
        for trial in 0..10u64 {
            let mut world = casestudy::virtual_lab_world(0, 5);
            world.failure = if failure_prob == 0.0 {
                FailureModel::none()
            } else {
                FailureModel::new(seed * 100 + trial, failure_prob)
            };
            world.failures_are_persistent = false;
            let config = EnactmentConfig {
                max_candidates: retries,
                ..EnactmentConfig::default()
            };
            let report = Enactor::builder().config(config).build().enact(
                &mut world,
                &casestudy::process_description(),
                &casestudy::case_description(),
            );
            if report.success {
                successes += 1;
            }
        }
        successes
    };
    let clean = run(0.0, 1, 1);
    assert_eq!(clean, 10, "no failures ⇒ always succeeds");
    let flaky_no_retry = run(0.30, 1, 2);
    let flaky_retry = run(0.30, 3, 2);
    assert!(
        flaky_no_retry < 10,
        "30% failure must sink some no-retry runs"
    );
    assert!(
        flaky_retry >= flaky_no_retry,
        "retries must not hurt: {flaky_retry} vs {flaky_no_retry}"
    );
}

#[test]
fn failed_attempts_are_recorded_for_the_brokerage_history() {
    let mut world = casestudy::virtual_lab_world(0, 6);
    world.set_container_up("ac-purdue-sp2", false).unwrap();
    world.set_container_up("ac-sdsc-sp3", false).unwrap();
    let report = Enactor::default().enact(
        &mut world,
        &casestudy::process_description(),
        &casestudy::case_description(),
    );
    assert!(report.success);
    // Matchmaking filters downed containers, so no failed attempts are
    // logged here — but the broker still learns from world history.
    use gridflow_services::brokerage::BrokerageService;
    let mut broker = BrokerageService::new();
    broker.refresh(&world);
    assert!(broker.expected_duration("P3DR").is_some());
    let stats = broker.performance("P3DR", "ac-anl-backup");
    assert!(stats.successes > 0);
}
