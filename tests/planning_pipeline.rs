//! Integration of the planning pipeline: the GP planner against the
//! case-study problem under catalog growth, distractors, credit for
//! produced data, and conversion consistency of its outputs.

use gridflow::casestudy;
use gridflow::prelude::*;

fn base_config(seed: u64) -> GpConfig {
    GpConfig {
        seed,
        ..GpConfig::default() // Table 1 settings
    }
}

#[test]
fn solves_the_case_study_from_scratch() {
    let result = GpPlanner::new(base_config(100), casestudy::planning_problem()).run();
    assert!(
        result.best_fitness.is_perfect(),
        "fitness {:?}",
        result.best_fitness
    );
    let acts = result.best.activities();
    // Dependency chain forces POD before any P3DR, and PSF last.
    assert!(acts.contains(&"POD"));
    assert!(acts.iter().filter(|a| **a == "P3DR").count() >= 2);
    assert!(acts.contains(&"PSF"));
}

#[test]
fn distractor_activities_do_not_break_planning() {
    // Grow T with useless services; the planner must still solve and must
    // not include activities that never fire validly toward the goal.
    let mut problem = casestudy::planning_problem();
    for i in 0..6 {
        problem.activities.push(ActivitySpec::new(
            format!("distractor-{i}"),
            [format!("Nonexistent-{i}")],
            [format!("Noise-{i}")],
        ));
    }
    // A larger T makes the search stochastic: with the Table 1 budget a
    // single seed often stalls in the trivially-valid single-activity
    // local optimum (the A5 ablation bench charts this).  Retry seeds
    // until one run is perfect; the window is sized so the suite stays
    // deterministic-pass while tolerating per-seed stalls.
    let result = (200..232)
        .map(|seed| GpPlanner::new(base_config(seed), problem.clone()).run())
        .find(|r| r.best_fitness.is_perfect())
        .expect("no perfect plan found in 32 seeds");
    for a in result.best.activities() {
        assert!(
            !a.starts_with("distractor"),
            "invalid distractor survived in a perfect plan: {a}"
        );
    }
}

#[test]
fn produced_data_shrinks_the_plan() {
    // Re-planning after POD and both P3DRs already ran: only PSF remains.
    let request_full = gridflow_services::planning::PlanRequest {
        initial: casestudy::initial_classifications(),
        goals: casestudy::planning_problem().goals,
        produced: vec![],
        excluded: vec![],
    };
    let request_resumed = gridflow_services::planning::PlanRequest {
        produced: vec![
            "Orientation File".into(),
            "3D Model".into(),
            "3D Model".into(),
        ],
        ..request_full.clone()
    };
    let world = casestudy::virtual_lab_world(0, 1);
    let service = PlanningService::new(base_config(300));
    let full = service.plan(&world, &request_full).unwrap();
    let resumed = service.plan(&world, &request_resumed).unwrap();
    assert!(full.viable && resumed.viable);
    assert!(
        resumed.tree.size() < full.tree.size(),
        "resumed {:?} vs full {:?}",
        resumed.tree,
        full.tree
    );
}

#[test]
fn convergence_improves_over_generations() {
    let result = GpPlanner::new(base_config(400), casestudy::planning_problem()).run();
    let first = result.history.first().unwrap();
    let last = result.history.last().unwrap();
    assert!(
        last.best.overall >= first.best.overall,
        "final best {:?} worse than initial {:?}",
        last.best,
        first.best
    );
    // Mean fitness also trends upward (allow slack for drift).
    assert!(last.mean_overall > first.mean_overall - 0.05);
}

#[test]
fn planner_output_converts_cleanly_through_every_representation() {
    let world = casestudy::virtual_lab_world(0, 2);
    let service = PlanningService::new(base_config(500));
    let problem = casestudy::planning_problem();
    let plan = service
        .plan(
            &world,
            &gridflow_services::planning::PlanRequest {
                initial: problem.initial,
                goals: problem.goals,
                produced: vec![],
                excluded: vec![],
            },
        )
        .unwrap();
    // tree → text → AST → tree → graph → tree all agree.
    let text = printer::print(&tree_to_ast(&plan.tree));
    let ast = parse_process(&text).unwrap();
    assert_eq!(ast_to_tree(&ast), plan.tree);
    let tree_from_graph = graph_to_tree(&plan.graph).unwrap();
    assert_eq!(tree_from_graph, plan.tree);
}

#[test]
fn excluding_the_reconstruction_code_makes_the_goal_unreachable() {
    let problem = casestudy::planning_problem().without_activities(["P3DR"]);
    let result = GpPlanner::new(base_config(600), problem).run();
    assert!(
        result.best_fitness.goal < 1.0,
        "no resolution file without 3D models: {:?}",
        result.best_fitness
    );
}

#[test]
fn figure_11_tree_beats_random_trees_under_the_fitness() {
    use gridflow_planner::genetic::random_tree;
    use gridflow_planner::{evaluate, FitnessWeights};
    use rand::SeedableRng;

    let problem = casestudy::planning_problem();
    let fig11 = evaluate(
        &casestudy::plan_tree(),
        &problem,
        40,
        FitnessWeights::default(),
        64,
    );
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    let names: Vec<String> = problem.activities.iter().map(|a| a.name.clone()).collect();
    let mut beaten = 0;
    for _ in 0..50 {
        let t = random_tree(&mut rng, 10, &names);
        let f = evaluate(&t, &problem, 40, FitnessWeights::default(), 64);
        if f.overall > fig11.overall {
            beaten += 1;
        }
    }
    // The expert workflow should beat the overwhelming majority of
    // random same-size trees.
    assert!(beaten <= 5, "fig11 beaten by {beaten}/50 random trees");
}
