//! Trace-based conformance suite (hosted by `gridflow-harness`).
//!
//! Where `fault_conformance.rs` asserts over final *reports*, this suite
//! asserts over the *event trace* a run emits: the ordered, virtually
//! timestamped record of every dispatch, fault, checkpoint, resume and
//! replan.  The invariants:
//!
//! 1. a clean run produces a coherent span structure — one dispatch per
//!    activity, sequential ordering, zero retries;
//! 2. identical seeds produce **byte-identical JSONL event logs**;
//!    differing seeds produce differing ones;
//! 3. across crash/resume no activity is ever dispatched again after it
//!    completed ([`TraceQuery::assert_no_double_dispatch`]);
//! 4. every message dropped by a faulty transport is followed by a
//!    timeout or a retry — never by a wrong answer
//!    ([`TraceQuery::assert_drops_resolved`]);
//! 5. replanning, node loss and coordinator crashes appear in the trace
//!    in causal order;
//! 6. the metrics registry folded from a trace agrees with the
//!    enactment report's own accounting.

use gridflow_agents::{AgentError, AgentRuntime};
use gridflow_harness::workload::{
    dinner_recovery_workload, dinner_replan_workload, dinner_workload,
};
use gridflow_harness::{
    outcome_fingerprint, run_scenario, FaultPlan, FaultyTransport, MetricsRegistry, Scenario,
    TraceEvent, TraceHandle, TraceLog, TraceQuery, TraceSink, VirtualClock,
};
use gridflow_planner::prelude::GpConfig;
use gridflow_services::agents::{boot_stack, GRIDFLOW_ONTOLOGY};
use gridflow_services::coordination::EnactmentConfig;
use gridflow_services::monitoring::MonitoringService;
use gridflow_services::planning::PlanningService;
use gridflow_services::world::share;
use serde_json::json;
use std::sync::Arc;
use std::time::Duration;

fn query(log: &TraceLog) -> TraceQuery {
    TraceQuery::new(log.records())
}

/// Distinct activity ids that were dispatched, in first-dispatch order.
fn dispatched_activities(q: &TraceQuery) -> Vec<String> {
    let mut seen = Vec::new();
    for r in q.records() {
        if let TraceEvent::ActivityDispatched { activity, .. } = &r.event {
            if !seen.contains(activity) {
                seen.push(activity.clone());
            }
        }
    }
    seen
}

// -------------------------------------------------------------------- 1

#[test]
fn clean_run_emits_a_coherent_span_structure() {
    let outcome = Scenario::new(&FaultPlan::default(), &dinner_workload())
        .traced()
        .run();
    let log = outcome.trace.clone().expect("traced run keeps its log");
    assert!(outcome.completed);
    let q = query(&log);

    // Bracketing: the enactment starts before any dispatch and finishes
    // successfully.
    q.assert_happens_before(
        "enactment start",
        |e| matches!(e, TraceEvent::EnactmentStarted { resumed: false, .. }),
        "first dispatch",
        |e| matches!(e, TraceEvent::ActivityDispatched { .. }),
    );
    assert_eq!(
        q.count(|e| matches!(e, TraceEvent::EnactmentFinished { success: true, .. })),
        1
    );

    // No faults were injected, none may appear.
    assert_eq!(q.count(|e| e.is_fault()), 0);

    // One span per activity, zero retries, no double dispatch.
    let activities = dispatched_activities(&q);
    assert_eq!(activities.len(), 3, "dinner has three steps");
    q.assert_no_double_dispatch();
    for a in &activities {
        q.span(a).expect("every activity has a full span");
        q.assert_retry_count(a, 0);
    }

    // The linear dinner order holds in the trace: each step completes
    // before the next is dispatched.
    for pair in ["prep", "cook", "plate"].windows(2) {
        let (earlier, later) = (pair[0].to_string(), pair[1].to_string());
        q.assert_happens_before(
            "earlier step completes",
            |e| matches!(e, TraceEvent::ActivityCompleted { service, .. } if *service == earlier),
            "later step dispatches",
            |e| matches!(e, TraceEvent::ActivityDispatched { service, .. } if *service == later),
        );
    }

    // Sequence numbers and virtual time are monotonically nondecreasing,
    // and the trace clock accumulated exactly the simulated duration.
    let records = q.records();
    for pair in records.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
        assert!(pair[0].at_s <= pair[1].at_s);
    }
    let total = outcome.final_report().total_duration_s;
    assert!(
        (records.last().unwrap().at_s - total).abs() < 1e-9,
        "trace clock {} != report duration {}",
        records.last().unwrap().at_s,
        total
    );
}

// -------------------------------------------------------------------- 2

#[test]
fn identical_seeds_produce_byte_identical_event_logs() {
    for seed in [0, 7, 42] {
        let plan = FaultPlan::seeded(seed)
            .failing_activities(0.25)
            .crashing_after(0);
        let wl = dinner_workload();
        let log_a = Scenario::new(&plan, &wl)
            .traced()
            .run()
            .trace
            .expect("traced run keeps its log");
        let log_b = Scenario::new(&plan, &wl)
            .traced()
            .run()
            .trace
            .expect("traced run keeps its log");
        assert!(!log_a.is_empty());
        assert_eq!(
            log_a.to_jsonl(),
            log_b.to_jsonl(),
            "seed {seed}: event logs must replay byte-identically"
        );
        assert_eq!(log_a.fingerprint(), log_a.to_jsonl());
        // And the JSONL round-trips to the same records.
        let parsed = TraceLog::from_jsonl(&log_a.to_jsonl()).expect("jsonl parses");
        assert_eq!(parsed, log_a.records());
    }
}

#[test]
fn differing_seeds_produce_differing_event_logs() {
    let wl = dinner_workload();
    let a = Scenario::new(&FaultPlan::seeded(100).failing_activities(0.5), &wl)
        .traced()
        .run()
        .trace
        .expect("traced run keeps its log");
    let b = Scenario::new(&FaultPlan::seeded(101).failing_activities(0.5), &wl)
        .traced()
        .run()
        .trace
        .expect("traced run keeps its log");
    assert_ne!(a.to_jsonl(), b.to_jsonl());
}

#[test]
fn tracing_does_not_perturb_the_run() {
    // Observation must be free: the traced and untraced runners unfold
    // the same plan to byte-identical outcomes.
    let plan = FaultPlan::seeded(21)
        .failing_activities(0.3)
        .crashing_after(1);
    let wl = dinner_workload();
    let untraced = run_scenario(&plan, &wl);
    let traced = Scenario::new(&plan, &wl).traced().run();
    let _ = traced.trace.clone().expect("traced run keeps its log");
    assert_eq!(outcome_fingerprint(&untraced), outcome_fingerprint(&traced));
}

// -------------------------------------------------------------------- 3

#[test]
fn crash_resume_traces_never_double_dispatch() {
    let mut resumed_at_least_once = false;
    for seed in 0..12 {
        let plan = FaultPlan::seeded(seed)
            .failing_activities(0.2)
            .crashing_after(1);
        let outcome = Scenario::new(&plan, &dinner_workload()).traced().run();
        let log = outcome.trace.clone().expect("traced run keeps its log");
        let q = query(&log);
        q.assert_no_double_dispatch();
        if outcome.resumes > 0 {
            resumed_at_least_once = true;
            q.assert_happens_before(
                "coordinator crash",
                |e| matches!(e, TraceEvent::CoordinatorCrashed { .. }),
                "resume",
                |e| matches!(e, TraceEvent::ResumeStarted { .. }),
            );
            // Resumed phases announce themselves as such.
            assert!(
                q.count(|e| matches!(e, TraceEvent::EnactmentStarted { resumed: true, .. })) > 0,
                "seed {seed}: no resumed enactment event"
            );
        }
    }
    assert!(resumed_at_least_once, "sweep never exercised a resume");
}

#[test]
fn resume_trace_reports_the_completed_prefix() {
    // Crash right after the first checkpoint (`prep` done): the resume
    // must announce exactly one completed execution, and the phase
    // structure must match the report list.
    let plan = FaultPlan::seeded(11).crashing_after(0);
    let outcome = Scenario::new(&plan, &dinner_workload()).traced().run();
    let log = outcome.trace.clone().expect("traced run keeps its log");
    assert!(outcome.completed);
    assert_eq!(outcome.resumes, 1);
    let q = query(&log);
    assert_eq!(
        q.count(|e| matches!(e, TraceEvent::PhaseStarted { .. })),
        outcome.reports.len()
    );
    assert_eq!(
        q.count(|e| matches!(
            e,
            TraceEvent::ResumeStarted {
                phase: 1,
                completed_executions: 1
            }
        )),
        1
    );
    q.assert_no_double_dispatch();
}

// -------------------------------------------------------------------- 6

#[test]
fn retry_counts_match_the_report_accounting() {
    // Single phase (budget 0), no crash: every `ActivityFailed` in the
    // trace corresponds to one `failed_attempts` entry in the report.
    let plan = FaultPlan::seeded(4).failing_activities(0.35);
    let wl = dinner_workload();
    let log = TraceLog::new();
    let outcome = Scenario::new(&plan, &wl)
        .budget(0)
        .trace_handle(TraceHandle::from(log.clone()))
        .run();
    let report = outcome.final_report();
    let q = query(&log);
    for activity in dispatched_activities(&q) {
        let expected = report
            .failed_attempts
            .iter()
            .filter(|(a, _)| *a == activity)
            .count();
        q.assert_retry_count(&activity, expected);
    }
    assert_eq!(
        q.count(|e| matches!(e, TraceEvent::ActivityCompleted { .. })),
        report.executions.len()
    );
}

// -------------------------------------------------------------------- 5

#[test]
fn node_loss_and_abort_appear_in_the_trace() {
    // Both `cook` hosts lost before the run, no replanning: the trace
    // must record the losses and a failed enactment with a reason.
    let plan = FaultPlan::seeded(3)
        .losing_node("ac-h2", 0)
        .losing_node("ac-h3", 0);
    let log = TraceLog::new();
    let outcome = Scenario::new(&plan, &dinner_workload())
        .budget(1)
        .trace_handle(TraceHandle::from(log.clone()))
        .run();
    assert!(!outcome.completed);
    let q = query(&log);
    assert!(q.count(|e| matches!(e, TraceEvent::NodeLost { .. })) >= 2);
    assert!(
        q.count(|e| matches!(
            e,
            TraceEvent::EnactmentFinished {
                success: false,
                abort_reason: Some(_)
            }
        )) >= 1
    );
    q.assert_happens_before(
        "node loss",
        |e| matches!(e, TraceEvent::NodeLost { .. }),
        "failed finish",
        |e| matches!(e, TraceEvent::EnactmentFinished { success: false, .. }),
    );
}

#[test]
fn replanning_emits_generations_and_causally_ordered_replan_events() {
    let plan = FaultPlan::seeded(1)
        .losing_node("ac-h2", 0)
        .losing_node("ac-h3", 0);
    let outcome = Scenario::new(&plan, &dinner_replan_workload(11))
        .traced()
        .run();
    let log = outcome.trace.clone().expect("traced run keeps its log");
    assert!(outcome.completed);
    assert!(outcome.final_report().replans >= 1);
    let q = query(&log);
    // The GP left its per-generation statistics in the trace…
    assert!(q.count(|e| matches!(e, TraceEvent::PlanGeneration { .. })) > 0);
    // …the replan names the service it routes around…
    assert!(q
        .filter(|e| matches!(e, TraceEvent::ReplanTriggered { .. }))
        .any(|r| matches!(
            &r.event,
            TraceEvent::ReplanTriggered { excluded, .. } if excluded.iter().any(|s| s == "cook")
        )));
    // …and a viable plan is installed after the trigger, never before.
    q.assert_happens_before(
        "replan trigger",
        |e| matches!(e, TraceEvent::ReplanTriggered { .. }),
        "viable plan installed",
        |e| matches!(e, TraceEvent::ReplanInstalled { viable: true }),
    );
    q.assert_no_double_dispatch();
}

#[test]
fn recovery_events_satisfy_breaker_and_lease_discipline() {
    // One slow `prep` host, no other faults: the escalation ladder
    // leases out all three tries on the slow container, opens its
    // breaker, and fails over — and the trace must show exactly that.
    let plan = FaultPlan::seeded(3).slowing_container("ac-h1", 50.0);
    let outcome = Scenario::new(&plan, &dinner_recovery_workload())
        .traced()
        .run();
    let log = outcome.trace.clone().expect("traced run keeps its log");
    assert!(outcome.completed);
    let q = query(&log);

    // Three leases granted and expired on the slow host, with a retry
    // scheduled between consecutive tries.
    assert_eq!(q.lease_expiry_count("prep"), 3);
    assert_eq!(q.retry_schedule_count("prep"), 2);
    assert!(q.count(|e| matches!(e, TraceEvent::LeaseGranted { .. })) >= 4);

    // The breaker opens exactly once, for the slow container only.
    assert_eq!(
        q.count(|e| matches!(
            e,
            TraceEvent::BreakerOpened { container, .. } if container == "ac-h1"
        )),
        1
    );
    assert_eq!(
        q.count(|e| matches!(e, TraceEvent::BreakerOpened { .. })),
        1
    );

    // Causality: the first lease expiry precedes the breaker opening,
    // which precedes the successful finish on the healthy host.
    q.assert_happens_before(
        "first lease expiry",
        |e| matches!(e, TraceEvent::LeaseExpired { .. }),
        "breaker opens",
        |e| matches!(e, TraceEvent::BreakerOpened { .. }),
    );
    q.assert_happens_before(
        "breaker opens",
        |e| matches!(e, TraceEvent::BreakerOpened { .. }),
        "successful finish",
        |e| matches!(e, TraceEvent::EnactmentFinished { success: true, .. }),
    );

    // And the quarantine invariants hold on the whole trace.
    q.assert_breaker_discipline();
    q.assert_no_dispatch_while_open();
    q.assert_no_double_dispatch();
}

// -------------------------------------------------------------------- 6

#[test]
fn metrics_registry_agrees_with_the_trace_and_the_report() {
    let outcome = Scenario::new(&FaultPlan::default(), &dinner_workload())
        .traced()
        .run();
    let log = outcome.trace.clone().expect("traced run keeps its log");
    let report = outcome.final_report();
    let records = log.records();
    let m = MetricsRegistry::from_trace(&records);
    assert_eq!(
        m.counter("activity.completed") as usize,
        report.executions.len()
    );
    assert_eq!(m.counter("activity.failed"), 0);
    assert_eq!(m.message_fault_ratio(), 0.0);
    for service in ["prep", "cook", "plate"] {
        let h = m
            .latency(service)
            .unwrap_or_else(|| panic!("no latency histogram for {service}"));
        assert_eq!(h.count, 1);
    }
    // The monitoring service surfaces the same registry next to live
    // availability.
    let world = dinner_workload().fresh_world(&FaultPlan::default(), 0);
    let summary = MonitoringService.summary(&world, &records);
    assert_eq!(summary.availability, 1.0);
    assert_eq!(summary.metrics, m);
    assert!(m.render().contains("activity.completed"));
}

// -------------------------------------------------------------------- 4

#[test]
fn live_stack_drops_resolve_to_timeouts_or_retries_never_wrong_answers() {
    // The live multi-threaded stack cannot promise byte-identical traces
    // (thread interleaving orders the log), but the *invariants* must
    // still hold on whatever trace a run produces.
    let mut rt = AgentRuntime::new();
    let wl = dinner_workload();
    let world = share(wl.fresh_world(&FaultPlan::default(), 0));
    let gp = GpConfig {
        population_size: 60,
        generations: 20,
        seed: 2,
        ..GpConfig::default()
    };
    let stack = boot_stack(
        &mut rt,
        world,
        PlanningService::new(gp),
        EnactmentConfig::default(),
    )
    .expect("stack boots");

    let log = TraceLog::new();
    let sink: Arc<dyn TraceSink> = Arc::new(log.clone());
    rt.set_trace_sink(sink.clone());
    let transport = Arc::new(
        FaultyTransport::new(
            FaultPlan::seeded(5).dropping(0.15).duplicating(0.2),
            VirtualClock::new(),
        )
        .with_trace(sink),
    );
    rt.set_transport(transport.clone());

    let enact = json!({"action": "enact", "graph": wl.graph, "case": wl.case});
    for _ in 0..6 {
        match stack.client.request(
            &stack.coordination,
            GRIDFLOW_ONTOLOGY,
            enact.clone(),
            Duration::from_secs(5),
        ) {
            Ok(reply) => log.emit(
                "client",
                TraceEvent::RequestAnswered {
                    agent: stack.coordination.clone(),
                    correct: reply.content["report"]["success"] == json!(true),
                },
            ),
            Err(AgentError::Timeout { .. }) => log.emit(
                "client",
                TraceEvent::RequestTimedOut {
                    agent: stack.coordination.clone(),
                },
            ),
            Err(other) => panic!("unexpected failure under faults: {other}"),
        }
    }
    rt.directory().clear_transport();
    rt.shutdown();

    let q = query(&log);
    assert!(
        q.count(|e| matches!(e, TraceEvent::MessageSent { .. })) > 0,
        "directory emitted no traffic"
    );
    // Every drop the transport recorded is resolved later in the trace,
    // and no request was ever answered incorrectly.
    q.assert_drops_resolved();
}
