//! Integration of the agent layer: boot the full Fig. 1 stack over the
//! virtual laboratory and drive the Fig. 2 / Fig. 3 message flows plus a
//! complete solve through the coordination agent.

use gridflow::casestudy;
use gridflow::prelude::*;
use gridflow_services::agents::GRIDFLOW_ONTOLOGY;
use gridflow_services::planning::PlanRequest;
use serde_json::json;
use std::time::Duration;

fn lab_stack(
    seed: u64,
) -> (
    AgentRuntime,
    gridflow_services::agents::StackHandles,
    gridflow_services::world::SharedWorld,
) {
    let world = share(casestudy::virtual_lab_world(0, seed));
    let mut rt = AgentRuntime::new();
    let gp = GpConfig {
        seed,
        ..GpConfig::default()
    };
    let stack = boot_stack(
        &mut rt,
        world.clone(),
        PlanningService::new(gp),
        EnactmentConfig {
            planning_goals: casestudy::planning_problem().goals,
            gp,
            ..EnactmentConfig::default()
        },
    )
    .expect("stack boots");
    (rt, stack, world)
}

fn case_request() -> PlanRequest {
    let problem = casestudy::planning_problem();
    PlanRequest {
        initial: problem.initial,
        goals: problem.goals,
        produced: vec![],
        excluded: vec![],
    }
}

#[test]
fn figure_1_stack_registers_all_core_services() {
    let (mut rt, stack, _world) = lab_stack(1);
    let reply = stack
        .client
        .request(
            &stack.information,
            GRIDFLOW_ONTOLOGY,
            json!({"action": "list"}),
            Duration::from_secs(10),
        )
        .expect("list replies");
    let services = reply.content["services"].as_array().unwrap();
    let types: Vec<&str> = services
        .iter()
        .filter_map(|s| s["service_type"].as_str())
        .collect();
    for expected in ["brokerage", "planning", "coordination"] {
        assert!(types.contains(&expected), "missing {expected}");
    }
    assert!(
        types
            .iter()
            .filter(|t| **t == "application-container")
            .count()
            >= 5,
        "containers registered"
    );
    rt.shutdown();
}

#[test]
fn figure_2_flow_plans_the_case_study() {
    let (mut rt, stack, _world) = lab_stack(2);
    let reply = stack
        .client
        .request(
            &stack.coordination,
            GRIDFLOW_ONTOLOGY,
            json!({"action": "plan_request", "request": case_request()}),
            Duration::from_secs(120),
        )
        .expect("plan arrives");
    assert_eq!(reply.content["viable"], json!(true));
    let text = reply.content["process_text"].as_str().unwrap();
    for service in ["POD", "P3DR", "PSF"] {
        assert!(
            text.contains(service),
            "plan text missing {service}: {text}"
        );
    }
    rt.shutdown();
}

#[test]
fn figure_3_flow_probes_and_excludes_dead_services() {
    let (mut rt, stack, world) = lab_stack(3);
    // POR dies everywhere.
    {
        let mut w = world.write();
        for c in w.hosting_containers("POR") {
            w.set_container_up(&c, false).unwrap();
        }
    }
    let reply = stack
        .client
        .request(
            &stack.planning,
            GRIDFLOW_ONTOLOGY,
            json!({
                "action": "replan",
                "request": case_request(),
                "nonexecutable": ["POR", "PSF"],
            }),
            Duration::from_secs(120),
        )
        .expect("replan replies");
    let excluded: Vec<String> = serde_json::from_value(reply.content["excluded"].clone()).unwrap();
    assert_eq!(excluded, vec!["POR".to_owned()], "only POR is dead");
    // POR is not needed for the minimal plan, so the re-plan stays viable.
    assert_eq!(reply.content["viable"], json!(true));
    let trace: Vec<String> = serde_json::from_value(reply.content["probe_trace"].clone()).unwrap();
    assert!(trace.iter().any(|l| l.contains("not executable")));
    assert!(trace.iter().any(|l| l.contains("executable")));
    rt.shutdown();
}

#[test]
fn coordination_agent_solves_end_to_end() {
    let (mut rt, stack, _world) = lab_stack(4);
    let case = casestudy::case_description();
    let reply = stack
        .client
        .request(
            &stack.coordination,
            GRIDFLOW_ONTOLOGY,
            json!({"action": "solve", "request": case_request(), "case": case}),
            Duration::from_secs(180),
        )
        .expect("solve replies");
    let report = &reply.content["report"];
    // The GP plan (no refinement loop attached at the agent layer) runs
    // each activity once; PSF writes the initial 12 Å resolution, which
    // misses the ≤ 8 Å case goal — the agent reports that honestly.
    assert!(report["executions"].as_array().unwrap().len() >= 4);
    assert_eq!(reply.content["plan"]["viable"], json!(true));
    rt.shutdown();
}

#[test]
fn disconnected_user_submits_and_fetches_later() {
    // §2: "Individual users may only be intermittently connected to the
    // network."  Submit, receive an immediate acknowledgement, come back
    // for the result, and find the report + ontology record archived.
    let (mut rt, stack, _world) = lab_stack(6);
    let graph = casestudy::process_description();
    let case = casestudy::case_description();
    let reply = stack
        .client
        .request(
            &stack.coordination,
            GRIDFLOW_ONTOLOGY,
            json!({"action": "submit", "graph": graph, "case": case}),
            Duration::from_secs(10),
        )
        .expect("submit acknowledged");
    assert_eq!(reply.performative, gridflow::prelude::Performative::Agree);
    let task_id = reply.content["task_id"].as_str().unwrap().to_owned();

    // The user "reconnects": the fetch queues behind the running task and
    // answers once it completes.
    let reply = stack
        .client
        .request(
            &stack.coordination,
            GRIDFLOW_ONTOLOGY,
            json!({"action": "fetch_result", "task_id": task_id}),
            Duration::from_secs(120),
        )
        .expect("result fetched");
    assert_eq!(reply.content["report"]["success"], json!(true));

    // The storage agent archived both artifacts.
    let reply = stack
        .client
        .request(
            &stack.storage,
            GRIDFLOW_ONTOLOGY,
            json!({"action": "get", "key": format!("report/{task_id}")}),
            Duration::from_secs(10),
        )
        .expect("report archived");
    assert_eq!(reply.content["doc"]["body"]["success"], json!(true));
    let reply = stack
        .client
        .request(
            &stack.storage,
            GRIDFLOW_ONTOLOGY,
            json!({"action": "get", "key": format!("ontology/{task_id}")}),
            Duration::from_secs(10),
        )
        .expect("ontology record archived");
    let kb: gridflow::prelude::KnowledgeBase =
        serde_json::from_value(reply.content["doc"]["body"].clone()).unwrap();
    assert!(kb.validate_all().is_empty());
    assert_eq!(
        kb.instance(&task_id).unwrap().get_str("Status"),
        Some("Completed")
    );

    // Unknown task ids are reported cleanly.
    assert!(stack
        .client
        .request(
            &stack.coordination,
            GRIDFLOW_ONTOLOGY,
            json!({"action": "fetch_result", "task_id": "task-999"}),
            Duration::from_secs(10),
        )
        .is_err());
    rt.shutdown();
}

#[test]
fn enact_action_runs_figure_10_via_the_agent() {
    let (mut rt, stack, _world) = lab_stack(5);
    let graph = casestudy::process_description();
    let case = casestudy::case_description();
    let reply = stack
        .client
        .request(
            &stack.coordination,
            GRIDFLOW_ONTOLOGY,
            json!({"action": "enact", "graph": graph, "case": case}),
            Duration::from_secs(120),
        )
        .expect("enact replies");
    let report = &reply.content["report"];
    assert_eq!(report["success"], json!(true), "report: {report}");
    let executions = report["executions"].as_array().unwrap();
    assert_eq!(executions.len(), 17, "Fig. 10 with 3 PSF passes");
    rt.shutdown();
}
