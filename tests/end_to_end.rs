//! End-to-end integration: the full §4/§5 pipeline — ontology, planning,
//! conversion, enactment, prediction — across every crate.

use gridflow::casestudy;
use gridflow::experiments;
use gridflow::prelude::*;
use gridflow_services::simulation::predict;

#[test]
fn full_case_study_plan_and_enact() {
    let mut lab = VirtualLab::new(0, 11);
    let (plan, report) = lab.solve().expect("solve succeeds");
    assert!(plan.viable);
    assert!(report.success, "abort: {:?}", report.abort_reason);
    // Resolution refined to the target.
    let resolution = report
        .final_state
        .property("D12", "Value")
        .and_then(|v| v.as_float())
        .expect("resolution recorded");
    assert!(resolution <= casestudy::TARGET_RESOLUTION);
    // Accounting is self-consistent.
    let sum: f64 = report.executions.iter().map(|e| e.duration_s).sum();
    assert!((sum - report.total_duration_s).abs() < 1e-6);
    assert!(report.total_cost > 0.0);
}

#[test]
fn figure_10_enactment_matches_figure_11_simulation_structure() {
    // Enact the hand-authored Fig. 10 and check it agrees with the
    // Fig. 11 tree on activity multiplicity per iteration.
    let mut lab = VirtualLab::new(0, 3);
    let graph = lab.figure_10();
    let report = lab.enact(&graph);
    assert!(report.success, "abort: {:?}", report.abort_reason);

    let iterations = report
        .executions
        .iter()
        .filter(|e| e.service == "PSF")
        .count();
    let p3dr_runs = report
        .executions
        .iter()
        .filter(|e| e.service == "P3DR")
        .count();
    let por_runs = report
        .executions
        .iter()
        .filter(|e| e.service == "POR")
        .count();
    // Fig. 10: P3DR1 once + three P3DRs per loop pass; POR once per pass.
    assert_eq!(p3dr_runs, 1 + 3 * iterations);
    assert_eq!(por_runs, iterations);
}

#[test]
fn prediction_agrees_with_enactment_on_work_but_exploits_parallelism() {
    let lab = VirtualLab::new(0, 5);
    let problem = casestudy::planning_problem();
    let plan = PlanningService::new(GpConfig {
        seed: 21,
        ..GpConfig::default()
    })
    .plan(
        &lab.world,
        &gridflow_services::planning::PlanRequest {
            initial: problem.initial.clone(),
            goals: problem.goals.clone(),
            produced: vec![],
            excluded: vec![],
        },
    )
    .expect("plans");
    assert!(plan.viable);
    let case = casestudy::case_description();
    let prediction = predict(&lab.world, &plan.graph, &case, 10_000).expect("predicts");
    // Selective nodes (if any) execute one branch, so the prediction
    // executes at most the tree's terminals, at least one.
    assert!(prediction.executions >= 1);
    assert!(prediction.executions <= plan.tree.activities().len());
    assert!(prediction.makespan_s > 0.0);
    // Enact on a fresh world and compare.
    let mut world = casestudy::virtual_lab_world(0, 5);
    let report = Enactor::default().enact(
        &mut world,
        &plan.graph,
        &CaseDescription::new("pred-check").with_data("D1", DataItem::classified("seed")),
    );
    // The enactor serializes, so its total duration is ≥ the predicted
    // parallel makespan.
    assert!(report.total_duration_s + 1e-9 >= prediction.makespan_s);
}

#[test]
fn ontology_round_trips_the_whole_case_study() {
    let kb = casestudy::ontology_instances();
    let json = kb.to_json().expect("serializes");
    let back = KnowledgeBase::from_json(&json).expect("deserializes");
    assert_eq!(kb, back);
    assert!(back.validate_all().is_empty());

    // The process description stored in the ontology is consistent with
    // the executable graph: same transition endpoints.
    let graph = casestudy::process_description();
    for t in graph.transitions() {
        let inst = back.instance(&t.id).expect("transition instance");
        assert!(inst.get_ref("Source Activity").is_some());
        assert!(inst.get_ref("Destination Activity").is_some());
    }
}

#[test]
fn process_text_graph_tree_round_trip_on_figure_10() {
    let graph = casestudy::process_description();
    let ast = recover(&graph).expect("structured");
    let text = printer::print(&ast);
    let reparsed = parse_process(&text).expect("parses");
    assert_eq!(reparsed, ast);
    let tree = ast_to_tree(&ast);
    assert_eq!(tree, casestudy::plan_tree());
    let relowered = tree_to_graph("again", &tree).expect("lowers");
    assert_eq!(
        relowered.end_user_activities().count(),
        graph.end_user_activities().count()
    );
}

#[test]
fn table2_shape_holds_at_reduced_scale() {
    // The §5 shape: every run solves the problem (f_v = f_g = 1) with
    // small plans, so the average fitness sits just below 1 by the size
    // term only.
    let config = GpConfig {
        population_size: 120,
        generations: 20,
        seed: 400,
        ..GpConfig::default()
    };
    let result = experiments::table2(config, 4);
    assert!(result.avg_validity >= 0.99, "{result}");
    assert!(result.avg_goal >= 0.99, "{result}");
    assert!(result.avg_size <= 15.0, "{result}");
    let expected =
        0.2 * result.avg_validity + 0.5 * result.avg_goal + 0.3 * (1.0 - result.avg_size / 40.0);
    assert!((result.avg_fitness - expected).abs() < 1e-9, "{result}");
}

#[test]
fn storage_archives_process_descriptions() {
    use gridflow_services::storage::StorageService;
    let mut storage = StorageService::new();
    let graph = casestudy::process_description();
    let v1 = storage.put("pd/3dsd", serde_json::to_value(&graph).unwrap());
    assert_eq!(v1, 1);
    // Re-plan produces a new version.
    let lab = VirtualLab::new(0, 2);
    let plan = lab.plan().expect("plans");
    let v2 = storage.put("pd/3dsd", serde_json::to_value(&plan.graph).unwrap());
    assert_eq!(v2, 2);
    // The archive preserves the original.
    let original: ProcessGraph =
        serde_json::from_value(storage.get_version("pd/3dsd", 1).unwrap().body.clone()).unwrap();
    assert_eq!(original, graph);
}
