//! Store conformance suite: the invariants that make the durable log
//! trustworthy *beyond* the crash/replay theorem.
//!
//! * Snapshot cadence is an availability knob, not a semantics knob:
//!   the stored **event** log is byte-identical for any `K`, and a
//!   crash recovers to the same truth whichever cadence was in force.
//! * Recovery on an empty log is just a fresh run — the cold-start and
//!   crash-recovery paths are one code path.
//! * Future-version snapshots are refused at recovery time with a typed
//!   error, exactly mirroring `EnactmentCheckpoint::validate`'s refusal
//!   of future checkpoint versions.
//! * `EnactmentCheckpoint`s round-trip through the store's framed
//!   record format, whose explicit schema-version byte is pinned.

use gridflow_engine::PolicySpec;
use gridflow_harness::workload::dinner_workload;
use gridflow_harness::workload::Workload;
use gridflow_harness::{FaultPlan, MultiCaseScenario};
use gridflow_services::coordination::CHECKPOINT_VERSION;
use gridflow_services::{EnactmentCheckpoint, EnactmentConfig, Enactor};
use gridflow_store::{
    merged_jsonl, record, MemStore, SnapshotRecord, Store, StoreError, SNAPSHOT_SCHEMA_VERSION,
};
use std::sync::{Arc, Mutex};

fn fixture() -> (FaultPlan, Workload) {
    (
        FaultPlan::seeded(17).failing_activities(0.2),
        dinner_workload(),
    )
}

fn scenario<'a>(plan: &'a FaultPlan, wl: &'a Workload) -> MultiCaseScenario<'a> {
    MultiCaseScenario::new(plan, wl, 4)
        .max_in_flight(2)
        .policy(PolicySpec::Fifo)
        .traced()
}

/// Snapshot-interval invariance: K ∈ {1, 7, 64} must all store the
/// identical event log, differ only in snapshot count, and all recover
/// a mid-run kill to the same byte-identical truth.
#[test]
fn snapshot_interval_never_changes_the_stored_truth() {
    let (plan, wl) = fixture();
    let baseline = scenario(&plan, &wl).run();
    let jsonl = baseline.trace.expect("traced").to_jsonl();
    let kill = baseline.engine.ticks / 2;

    let mut snapshot_counts = Vec::new();
    for k in [1u64, 7, 64] {
        // Complete run: the event log is K-invariant.
        let store: Arc<Mutex<dyn Store>> = Arc::new(Mutex::new(MemStore::new()));
        let done = scenario(&plan, &wl).store(store.clone(), k).run();
        assert!(!done.engine.killed);
        assert_eq!(
            merged_jsonl(&store.lock().unwrap().replay_from(0).unwrap()),
            jsonl,
            "K={k}: stored events diverged from the untraced baseline"
        );
        snapshot_counts.push(store.lock().unwrap().snapshot_count());

        // Crashed run: recovery lands on the same truth whatever K was.
        let store: Arc<Mutex<dyn Store>> = Arc::new(Mutex::new(MemStore::new()));
        let crashed = scenario(&plan, &wl)
            .store(store.clone(), k)
            .kill_at(kill)
            .run();
        assert!(crashed.engine.killed);
        let recovered = scenario(&plan, &wl)
            .store(store.clone(), k)
            .recover()
            .expect("recovery");
        assert_eq!(
            recovered.engine.cases, baseline.engine.cases,
            "K={k}: recovered outcomes diverged"
        );
        assert_eq!(
            merged_jsonl(&store.lock().unwrap().replay_from(0).unwrap()),
            jsonl,
            "K={k}: recovered log diverged"
        );
    }
    assert!(
        snapshot_counts[0] > snapshot_counts[1],
        "K=1 must snapshot more often than K=7: {snapshot_counts:?}"
    );
}

/// Recovery from a completely empty log is exactly a fresh run: same
/// outcomes, and the store afterwards holds the full trace.
#[test]
fn recovery_from_an_empty_log_equals_a_fresh_run() {
    let (plan, wl) = fixture();
    let baseline = scenario(&plan, &wl).run();
    let jsonl = baseline.trace.expect("traced").to_jsonl();

    let store: Arc<Mutex<dyn Store>> = Arc::new(Mutex::new(MemStore::new()));
    let recovered = scenario(&plan, &wl)
        .store(store.clone(), 3)
        .recover()
        .expect("cold-start recovery");
    assert!(!recovered.engine.killed);
    assert_eq!(recovered.engine.cases, baseline.engine.cases);
    assert_eq!(
        merged_jsonl(&store.lock().unwrap().replay_from(0).unwrap()),
        jsonl,
        "cold-start recovery must lay down the same log a run would"
    );
}

/// A snapshot stamped by a future build is refused at recovery time
/// with a typed error — the same contract `EnactmentCheckpoint::
/// validate` enforces for future checkpoint versions.
#[test]
fn future_version_snapshots_are_refused_like_future_checkpoints() {
    // Store side: writing is permitted (the bytes may be fine for a
    // newer reader), recovering is not.
    let mut mem = MemStore::new();
    let mut future = SnapshotRecord::new(4, 0, 4, 1.0, b"from the future".to_vec());
    future.schema = SNAPSHOT_SCHEMA_VERSION + 1;
    mem.snapshot(future).expect("future snapshots store fine");
    let store: Arc<Mutex<dyn Store>> = Arc::new(Mutex::new(mem));
    assert_eq!(
        store.lock().unwrap().latest_snapshot(),
        Err(StoreError::UnsupportedSchema {
            found: SNAPSHOT_SCHEMA_VERSION + 1,
            supported: SNAPSHOT_SCHEMA_VERSION,
        })
    );
    let (plan, wl) = fixture();
    let err = scenario(&plan, &wl)
        .store(store, 3)
        .recover()
        .expect_err("recovery must refuse a future snapshot");
    assert!(
        matches!(err, StoreError::UnsupportedSchema { found, supported }
            if found == SNAPSHOT_SCHEMA_VERSION + 1 && supported == SNAPSHOT_SCHEMA_VERSION),
        "wrong refusal: {err}"
    );

    // Checkpoint side: the in-memory ancestor of the same rule.
    let mut checkpoint = captured_checkpoint();
    assert!(checkpoint.validate().is_ok());
    checkpoint.version = CHECKPOINT_VERSION + 1;
    let refusal = checkpoint.validate().expect_err("future checkpoint");
    assert!(
        refusal
            .to_string()
            .contains(&(CHECKPOINT_VERSION + 1).to_string()),
        "checkpoint refusal should name the offending version: {refusal}"
    );
}

/// An [`EnactmentCheckpoint`] — the paper's "checkpointing long-lasting
/// tasks" artifact — survives the store's framed record format intact,
/// and the frame carries an explicit schema-version byte at a pinned
/// offset.
#[test]
fn enactment_checkpoints_round_trip_through_the_record_format() {
    let checkpoint = captured_checkpoint();
    let payload = serde_json::to_string(&checkpoint)
        .expect("checkpoints serialize")
        .into_bytes();
    let snap = SnapshotRecord::new(6, 11, 6, 2.5, payload);
    let bytes = record::encode_snapshot(&snap);

    // Frame layout: [u32le len][kind][schema]… — the schema byte sits
    // at a fixed offset and is the *record's* version, independent of
    // the checkpoint's own version field inside the payload.
    assert_eq!(bytes[4], record::KIND_SNAPSHOT);
    assert_eq!(bytes[5], SNAPSHOT_SCHEMA_VERSION);

    let record::Decoded::Record {
        record: decoded,
        next_offset,
    } = record::decode_record(&bytes, 0)
    else {
        panic!("framed snapshot failed to decode");
    };
    assert_eq!(next_offset, bytes.len());
    let record::LogRecord::Snapshot(back) = decoded else {
        panic!("decoded the wrong record kind");
    };
    assert_eq!(back, snap, "snapshot record fields round-trip");

    let restored: EnactmentCheckpoint =
        serde_json::from_str(std::str::from_utf8(&back.state).unwrap())
            .expect("checkpoint deserializes from the stored payload");
    assert_eq!(restored.version, CHECKPOINT_VERSION);
    assert_eq!(
        serde_json::to_string(&restored).unwrap(),
        serde_json::to_string(&checkpoint).unwrap(),
        "checkpoint JSON round-trips byte-identically"
    );
}

/// A real mid-run checkpoint, captured by enacting the dinner workload
/// with a checkpoint cadence.
fn captured_checkpoint() -> EnactmentCheckpoint {
    let wl = dinner_workload();
    let mut world = wl.fresh_world(&FaultPlan::default(), 0);
    let config = EnactmentConfig {
        checkpoint_every: Some(2),
        ..wl.config.clone()
    };
    let report = Enactor::builder()
        .config(config)
        .build()
        .enact(&mut world, &wl.graph, &wl.case);
    assert!(report.success);
    report
        .checkpoints
        .first()
        .expect("cadence 2 captures at least one checkpoint")
        .clone()
}
