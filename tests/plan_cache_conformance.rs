//! Conformance suite for the fleet-shared, content-addressed plan
//! cache.
//!
//! The cache's contract has three planks:
//!
//! 1. **Caching is a pure performance knob** — GP planning is a
//!    deterministic function of `(seed, problem)`, so a cache hit
//!    returns the byte-identical plan a fresh run would have produced.
//!    A warm-cache fleet trace differs from a cold one *only* in its
//!    deterministic `plan.cache_*` announcements, and with the cache
//!    disabled the trace is byte-identical to the legacy (pre-cache)
//!    one.
//! 2. **Single-flight** — N concurrent cold requests for one key run
//!    GP exactly once; the other N−1 coalesce onto the leader's run.
//! 3. **Fleet-scale dedup** — an identical-goal fleet of any size runs
//!    GP once per distinct key, provable from the merged trace alone
//!    via [`TraceQuery::assert_plans_at_most_once_per_key`].

use gridflow_engine::CoreSpec;
use gridflow_harness::workload::{
    cook_loss_churn_plan, cook_loss_churn_plan_scaled, dinner_replan_workload,
    dinner_replan_workload_scaled, dinner_world,
};
use gridflow_harness::{FaultPlan, MultiCaseScenario, TraceQuery, Workload};
use gridflow_planner::prelude::GpConfig;
use gridflow_planner::GoalSpec;
use gridflow_services::{PlanCacheHandle, PlanRequest, PlanningService};
use gridflow_telemetry::{TraceEvent, TraceLog, TraceRecord, TraceSink};
use std::sync::{Arc, Condvar, Mutex};

/// The replan-under-churn scenario: a fleet of identical dinner cases
/// loses both `cook` hosts right after everyone has prepped, so every
/// case escalates to the GP planner with the same content-addressed
/// problem (goal `Plated`, produced `Prepped`, excluded `cook`).
fn churn_records(
    fleet: usize,
    workers: usize,
    core: CoreSpec,
    cache: Option<&PlanCacheHandle>,
) -> Vec<TraceRecord> {
    let plan = cook_loss_churn_plan(23);
    let wl = dinner_replan_workload(11);
    let mut scenario = MultiCaseScenario::new(&plan, &wl, fleet)
        .workers(workers)
        .core(core)
        .max_in_flight(fleet)
        .traced();
    if let Some(cache) = cache {
        scenario = scenario.plan_cache(cache.clone());
    }
    let outcome = scenario.run();
    assert!(
        outcome.engine.all_succeeded(),
        "churn fleet failed: {:?}",
        outcome.engine.cases
    );
    outcome.trace.expect("traced").records()
}

/// Strip `seq` so traces can be compared after filtering out records
/// (removal renumbers everything downstream).
fn essence(records: &[TraceRecord]) -> Vec<(u64, String, String, TraceEvent)> {
    records
        .iter()
        .map(|r| {
            (
                r.tick,
                format!("{}", r.at_s),
                r.source.to_string(),
                r.event.clone(),
            )
        })
        .collect()
}

// ------------------------------------------------------------------ 1

#[test]
fn warm_trace_differs_from_cold_only_in_cache_events() {
    const FLEET: usize = 6;
    for (workers, core) in [
        (1, CoreSpec::Event),
        (8, CoreSpec::Event),
        (1, CoreSpec::Sharded { shards: 4 }),
        (8, CoreSpec::Sharded { shards: 4 }),
    ] {
        let disabled = churn_records(FLEET, workers, core, None);
        let cache = PlanCacheHandle::in_proc();
        let cold = churn_records(FLEET, workers, core, Some(&cache));
        let warm = churn_records(FLEET, workers, core, Some(&cache));

        // Cold: the first replan runs GP, the rest of the fleet hits
        // the entry it published.  Warm: everyone hits.
        let cold_q = TraceQuery::new(cold.clone());
        assert_eq!(cold_q.plan_runs(), 1, "workers={workers} core={core:?}");
        assert_eq!(cold_q.plan_cache_hits(), FLEET - 1);
        cold_q.assert_plans_at_most_once_per_key();
        let warm_q = TraceQuery::new(warm.clone());
        assert_eq!(warm_q.plan_runs(), 0, "warm fleet must not run GP");
        assert_eq!(warm_q.plan_cache_hits(), FLEET);
        warm_q.assert_plans_at_most_once_per_key();

        // Warm vs cold: byte-identical except the deterministic
        // `plan.cache_*` records (the cold leader's miss reads as a hit
        // when the fleet starts warm).
        assert_eq!(cold.len(), warm.len());
        for (c, w) in cold.iter().zip(&warm) {
            if c == w {
                continue;
            }
            assert!(
                c.event.label().starts_with("plan.cache_"),
                "non-cache divergence at seq {}: {c:?} vs {w:?}",
                c.seq
            );
            assert_eq!(c.event.plan_key(), w.event.plan_key());
            assert_eq!((c.seq, c.tick, &c.source), (w.seq, w.tick, &w.source));
        }

        // Cache disabled: zero new events — the trace is the cold one
        // with its cache announcements filtered out.
        assert!(essence(&disabled)
            .iter()
            .all(|(_, _, _, e)| e.plan_key().is_none()));
        let cold_sans_cache: Vec<_> = essence(&cold)
            .into_iter()
            .filter(|(_, _, _, e)| e.plan_key().is_none())
            .collect();
        assert_eq!(essence(&disabled), cold_sans_cache);
    }
}

#[test]
fn churn_traces_are_identical_across_workers_and_cores() {
    const FLEET: usize = 6;
    let combos = [
        (1, CoreSpec::Event),
        (8, CoreSpec::Event),
        (1, CoreSpec::Sharded { shards: 4 }),
        (8, CoreSpec::Sharded { shards: 4 }),
    ];
    let reference_cold =
        churn_records(FLEET, 1, CoreSpec::Event, Some(&PlanCacheHandle::in_proc()));
    for (workers, core) in combos {
        let cold = churn_records(FLEET, workers, core, Some(&PlanCacheHandle::in_proc()));
        assert_eq!(
            cold, reference_cold,
            "cold churn diverged at workers={workers} core={core:?}"
        );
    }
}

// ------------------------------------------------------------------ 2

/// A sink that forwards to a [`TraceLog`] but parks the emitter of the
/// first `plan.cache_miss` until released — holding the single-flight
/// leader inside its GP run so followers have a deterministic window to
/// pile onto the flight.
struct GateSink {
    inner: Arc<TraceLog>,
    released: Mutex<bool>,
    cv: Condvar,
}

impl GateSink {
    fn new(inner: Arc<TraceLog>) -> Self {
        GateSink {
            inner,
            released: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn release(&self) {
        *self.released.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

impl TraceSink for GateSink {
    fn emit(&self, source: &str, event: TraceEvent) {
        let is_miss = event.label() == "plan.cache_miss";
        self.inner.emit(source, event);
        if is_miss {
            let mut released = self.released.lock().unwrap();
            while !*released {
                released = self.cv.wait(released).unwrap();
            }
        }
    }
}

#[test]
fn concurrent_cold_replans_run_gp_exactly_once() {
    const FOLLOWERS: usize = 5;
    let world = dinner_world();
    let cache = PlanCacheHandle::in_proc();
    let log = Arc::new(TraceLog::new());
    let gate = Arc::new(GateSink::new(log.clone()));
    let request = PlanRequest {
        initial: vec!["Raw".into()],
        goals: vec![GoalSpec {
            classification: "Plated".into(),
            min_count: 1,
        }],
        produced: vec![],
        excluded: vec![],
    };
    let service = || {
        PlanningService::new(GpConfig {
            population_size: 40,
            generations: 10,
            seed: 5,
            ..GpConfig::default()
        })
        .with_trace(gate.clone())
        .with_plan_cache(cache.clone())
    };

    let responses = std::thread::scope(|scope| {
        let leader = {
            let service = service();
            let (world, request) = (&world, &request);
            scope.spawn(move || service.plan(world, request).unwrap())
        };
        // The leader parks inside its miss announcement (emitted inside
        // the flight, before GP); once it is visible the flight is open
        // and every follower must coalesce onto it.
        while log.records().is_empty() {
            std::thread::yield_now();
        }
        let followers: Vec<_> = (0..FOLLOWERS)
            .map(|_| {
                let service = service();
                let (world, request) = (&world, &request);
                scope.spawn(move || service.plan(world, request).unwrap())
            })
            .collect();
        while cache.parked_waiters() < FOLLOWERS {
            std::thread::yield_now();
        }
        gate.release();
        let mut responses = vec![leader.join().unwrap()];
        responses.extend(followers.into_iter().map(|f| f.join().unwrap()));
        responses
    });

    for response in &responses[1..] {
        assert_eq!(response, &responses[0], "coalesced plans must be identical");
    }
    let stats = cache.stats();
    assert_eq!(
        (stats.misses, stats.coalesced, stats.hits),
        (1, FOLLOWERS as u64, 0)
    );
    let q = TraceQuery::new(log.records());
    assert_eq!(q.plan_runs(), 1, "exactly one GP run");
    assert_eq!(q.plan_coalesced(), FOLLOWERS);
    assert_eq!(q.plan_cache_hits(), 0);
    q.assert_plans_at_most_once_per_key();
}

// ------------------------------------------------------------------ 3

#[test]
fn identical_goal_fleet_of_512_plans_exactly_once() {
    const FLEET: usize = 512;
    const REPLICAS: usize = 32; // 32 replicas × capacity 16 = 512 slots
    let plan = cook_loss_churn_plan_scaled(REPLICAS, 29);
    let mut wl: Workload = dinner_replan_workload_scaled(REPLICAS, FLEET, 7);
    // The fleet plans once; keep that single GP run small so the test
    // measures dedup, not search effort.
    wl.config.gp.population_size = 40;
    wl.config.gp.generations = 10;
    let cache = PlanCacheHandle::in_proc();
    let outcome = MultiCaseScenario::new(&plan, &wl, FLEET)
        .max_in_flight(FLEET)
        .plan_cache(cache.clone())
        .traced()
        .run();
    assert!(
        outcome.engine.all_succeeded(),
        "fleet failed: {:?}",
        outcome
            .engine
            .cases
            .iter()
            .filter(|c| !c.report.success)
            .take(3)
            .collect::<Vec<_>>()
    );
    let q = TraceQuery::new(outcome.trace.expect("traced").records());
    assert_eq!(q.plan_runs(), 1, "512 identical replans must share 1 run");
    assert_eq!(q.plan_cache_hits(), FLEET - 1);
    q.assert_plans_at_most_once_per_key();
    assert_eq!(cache.len(), 1, "one content-addressed entry");
    let stats = cache.stats();
    assert_eq!((stats.misses, stats.hits), (1, (FLEET - 1) as u64));
    assert!(stats.hit_rate() > 0.99, "hit rate {}", stats.hit_rate());
}

// ------------------------------------------------------------------ sanity

#[test]
fn disabled_cache_fleet_still_replans_per_case() {
    // Without a cache every case runs its own GP — the legacy behavior
    // the cache exists to collapse.  `plan_runs` falls back to counting
    // generation-zero events when no cache events exist.
    let records = churn_records(3, 1, CoreSpec::Event, None);
    let q = TraceQuery::new(records);
    assert_eq!(q.plan_runs(), 3);
    assert_eq!(q.plan_cache_hits(), 0);
    q.assert_plans_at_most_once_per_key();
}

#[test]
fn scenario_spec_carries_the_plan_cache() {
    use gridflow_harness::EngineSpec;
    let plan = FaultPlan::seeded(1);
    let wl = dinner_replan_workload(11);
    let cache = PlanCacheHandle::in_proc();
    let spec = EngineSpec::default().plan_cache(cache.clone());
    // A spec-built scenario and a builder-built one behave identically:
    // no faults, so no replans, so the cache stays empty either way.
    let via_spec = MultiCaseScenario::new(&plan, &wl, 2)
        .spec(spec)
        .traced()
        .run();
    assert!(via_spec.engine.all_succeeded());
    assert!(cache.is_empty(), "no replans — nothing to cache");
}
