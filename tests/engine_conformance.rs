//! Conformance suite for the multi-case enactment engine.
//!
//! The engine's contract has three planks:
//!
//! 1. **Worker-count trace invariance** — the scheduler is logically
//!    single-threaded and `workers` only chunks an already-ordered step
//!    list, so a given seed produces a *byte-identical* merged JSONL
//!    trace at any worker count.
//! 2. **Busy is not broken** — contention for container capacity blocks
//!    a case for a tick; it never fails it, and tick-scoped
//!    reservations guarantee no container slot is ever double-booked
//!    (provable from the merged trace alone).
//! 3. **Admission is a front door, not a trap** — a case no live
//!    container can serve is refused up front with a reason, and the
//!    rest of the fleet is unaffected.

use gridflow_engine::{CaseScheduler, CaseSpec, EngineConfig};
use gridflow_harness::workload::dinner_workload;
use gridflow_harness::{FaultPlan, MultiCaseScenario, TraceEvent, TraceLog, TraceQuery};
use gridflow_services::Enactor;
use std::collections::BTreeMap;

fn query(log: &TraceLog) -> TraceQuery {
    TraceQuery::new(log.records())
}

// ------------------------------------------------------------------ 1

#[test]
fn merged_traces_are_byte_identical_across_worker_counts() {
    // Activity failures make the schedule non-trivial (failed attempts,
    // failovers) and the admission queue forces cases to start late.
    let plan = FaultPlan::seeded(17).failing_activities(0.2);
    let wl = dinner_workload();
    let jsonl_for = |workers: usize| {
        let outcome = MultiCaseScenario::new(&plan, &wl, 5)
            .workers(workers)
            .max_in_flight(3)
            .traced()
            .run();
        assert_eq!(outcome.engine.cases.len(), 5);
        outcome.trace.expect("traced").to_jsonl()
    };
    let w1 = jsonl_for(1);
    let w2 = jsonl_for(2);
    let w8 = jsonl_for(8);
    assert!(!w1.is_empty());
    assert_eq!(w1, w2, "workers=2 diverged from workers=1");
    assert_eq!(w1, w8, "workers=8 diverged from workers=1");
    // And the whole thing replays byte-identically.
    assert_eq!(w1, jsonl_for(1));
}

#[test]
fn differing_seeds_produce_differing_merged_traces() {
    let wl = dinner_workload();
    let jsonl_for = |seed: u64| {
        MultiCaseScenario::new(&FaultPlan::seeded(seed).failing_activities(0.5), &wl, 4)
            .traced()
            .run()
            .trace
            .expect("traced")
            .to_jsonl()
    };
    assert_ne!(jsonl_for(100), jsonl_for(101));
}

// ------------------------------------------------------------------ 2

#[test]
fn contending_cases_block_without_double_booking_and_both_finish() {
    // Lose one `prep` host before the run: both cases need the single
    // surviving host in the same ticks, so one of them must spend at
    // least one tick blocked — and the trace must prove the slot was
    // never double-booked.
    let plan = FaultPlan::seeded(5).losing_node("ac-h1", 0);
    let outcome = MultiCaseScenario::new(&plan, &dinner_workload(), 2)
        .traced()
        .run();
    assert!(outcome.engine.all_succeeded(), "fleet failed");
    let blocked_total: u64 = outcome.engine.cases.iter().map(|c| c.blocked_ticks).sum();
    assert!(blocked_total >= 1, "no contention observed");

    let log = outcome.trace.expect("traced");
    let q = query(&log);
    // Every container in the dinner world has the default single slot.
    q.assert_no_double_booking(&BTreeMap::new());
    // The blocked case announced itself, and blocking targeted `prep`.
    assert!(
        q.count(|e| matches!(
            e,
            TraceEvent::CaseBlocked { service, .. } if service == "prep"
        )) >= 1
    );
    // Reservations were released: grants and releases balance.
    let reserved = q.count(|e| matches!(e, TraceEvent::SlotReserved { .. }));
    let released = q.count(|e| matches!(e, TraceEvent::SlotReleased { .. }));
    assert_eq!(reserved, released, "leaked reservation holds");
    assert!(reserved >= 1);
}

#[test]
fn single_case_engine_run_matches_the_plain_enactor() {
    // One case, no contention: the engine is just a loop around the
    // fiber, so its report must equal the classic enactor's.
    let wl = dinner_workload();
    let outcome = MultiCaseScenario::new(&FaultPlan::default(), &wl, 1).run();
    let mut world = wl.fresh_world(&FaultPlan::default(), 0);
    let direct = Enactor::builder()
        .config(wl.config.clone())
        .build()
        .enact(&mut world, &wl.graph, &wl.case);
    assert_eq!(outcome.engine.cases[0].report, direct);
    assert!(direct.success);
}

// ------------------------------------------------------------------ 3

#[test]
fn unservable_cases_are_refused_at_admission_with_a_reason() {
    // Both `cook` hosts down: matchmaking cannot place `cook`, so the
    // case must be refused before any activity runs.
    let plan = FaultPlan::seeded(3)
        .losing_node("ac-h2", 0)
        .losing_node("ac-h3", 0);
    let outcome = MultiCaseScenario::new(&plan, &dinner_workload(), 2)
        .traced()
        .run();
    for case in &outcome.engine.cases {
        assert_eq!(case.admitted_tick, None);
        assert!(case.report.executions.is_empty());
        let reason = case.report.abort_reason.as_deref().unwrap_or("");
        assert!(
            reason.contains("admission refused") && reason.contains("cook"),
            "unhelpful refusal: {reason}"
        );
        assert_eq!(case.makespan_ticks(), 0);
    }
    let log = outcome.trace.expect("traced");
    assert_eq!(
        query(&log).count(|e| matches!(e, TraceEvent::CaseRejected { .. })),
        2
    );
}

#[test]
fn refused_cases_have_no_makespan_and_admitted_cases_do() {
    // One admissible case alongside the refusal scenario from above:
    // `makespan_ticks` returns 0 for refusals (documented footgun);
    // `admitted_makespan_ticks` is the honest accessor — `None` for a
    // case that never ran, inclusive tick span for one that did.
    let wl = dinner_workload();

    let refused = MultiCaseScenario::new(
        &FaultPlan::seeded(3)
            .losing_node("ac-h2", 0)
            .losing_node("ac-h3", 0),
        &wl,
        1,
    )
    .run();
    let case = &refused.engine.cases[0];
    assert_eq!(case.admitted_tick, None);
    assert_eq!(case.admitted_makespan_ticks(), None);
    assert_eq!(case.makespan_ticks(), 0);

    let ran = MultiCaseScenario::new(&FaultPlan::default(), &wl, 1).run();
    let case = &ran.engine.cases[0];
    let admitted = case.admitted_tick.expect("clean case admits");
    let span = case.finished_tick - admitted + 1;
    assert_eq!(case.admitted_makespan_ticks(), Some(span));
    assert_eq!(case.makespan_ticks(), span);
    assert!(span >= 1);
}

#[test]
fn mid_schedule_node_loss_fails_over_without_failing_the_fleet() {
    // `cook` loses one of its two hosts once the fleet has executed a
    // few activities; the survivors absorb the load.
    let plan = FaultPlan::seeded(7).losing_node("ac-h2", 3);
    let outcome = MultiCaseScenario::new(&plan, &dinner_workload(), 3)
        .traced()
        .run();
    assert!(outcome.engine.all_succeeded());
    let log = outcome.trace.expect("traced");
    let q = query(&log);
    assert_eq!(
        q.count(|e| matches!(e, TraceEvent::NodeLost { container, .. } if container == "ac-h2")),
        1
    );
    // Post-loss cooking happened on the surviving host only.
    assert!(outcome
        .engine
        .cases
        .iter()
        .flat_map(|c| &c.report.executions)
        .filter(|e| e.service == "cook")
        .all(|e| e.container == "ac-h2" || e.container == "ac-h3"));
}

#[test]
fn tick_budget_aborts_stragglers_instead_of_hanging() {
    let wl = dinner_workload();
    let mut scheduler = CaseScheduler::new(EngineConfig {
        max_ticks: 2,
        ..EngineConfig::default()
    });
    for i in 0..2 {
        scheduler.submit(CaseSpec {
            label: format!("budget-{i}"),
            graph: wl.graph.clone(),
            case: wl.case.clone().into(),
            config: wl.config.clone(),
            hints: Default::default(),
        });
    }
    let mut world = wl.fresh_world(&FaultPlan::default(), 0);
    let outcome = scheduler.run(&mut world);
    assert_eq!(outcome.ticks, 2);
    assert_eq!(outcome.cases.len(), 2);
    for case in &outcome.cases {
        assert!(!case.report.success);
        assert!(case
            .report
            .abort_reason
            .as_deref()
            .unwrap_or("")
            .contains("tick budget exhausted"));
    }
}

#[test]
fn engine_events_carry_case_labels_for_cross_case_queries() {
    let outcome = MultiCaseScenario::new(&FaultPlan::default(), &dinner_workload(), 2)
        .traced()
        .run();
    let log = outcome.trace.expect("traced");
    let labelled: Vec<String> = log
        .records()
        .iter()
        .filter_map(|r| r.event.case_label().map(str::to_owned))
        .collect();
    assert!(labelled.iter().any(|c| c == "dinner-0"));
    assert!(labelled.iter().any(|c| c == "dinner-1"));
}
