//! Differential equivalence suite: the event-driven scheduler core,
//! the legacy scan core, and the sharded two-phase core against each
//! other.
//!
//! [`CoreSpec`] selects how a run executes — [`CoreSpec::Scan`] keeps
//! the old every-tick-rederive loop alive solely as an oracle,
//! [`CoreSpec::Sharded`] runs each tick as a parallel prepare phase
//! over shard-partitioned fibers followed by a sequential canonical
//! commit.  For every `(seed, workload, fleet shape)` and every
//! `(shards, workers)` combination, all cores must produce
//! **byte-identical** merged JSONL traces — same events, same order,
//! same payloads — because each core is an execution-strategy change,
//! not a semantics change.  Any divergence here is a bug in the event
//! core's wake/ready bookkeeping, the fiber's cached-dispatch fast
//! path, or the sharded core's speculation/commit protocol.

use gridflow_engine::{CoreSpec, EngineSnapshot};
use gridflow_harness::workload::{
    dinner_recovery_workload, dinner_workload, DurationProfile, GraphShape, Workload, WorkloadGen,
};
use gridflow_harness::{EngineSpec, FaultPlan, MultiCaseScenario};
use gridflow_store::{merged_jsonl, MemStore, Store};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

fn jsonl(
    plan: &FaultPlan,
    wl: &Workload,
    cases: usize,
    in_flight: usize,
    core: CoreSpec,
    workers: usize,
) -> String {
    MultiCaseScenario::new(plan, wl, cases)
        .max_in_flight(in_flight)
        .core(core)
        .workers(workers)
        .traced()
        .run()
        .trace
        .expect("traced")
        .to_jsonl()
}

fn assert_cores_agree(plan: &FaultPlan, wl: &Workload, cases: usize, in_flight: usize, what: &str) {
    let event = jsonl(plan, wl, cases, in_flight, CoreSpec::Event, 1);
    let scan = jsonl(plan, wl, cases, in_flight, CoreSpec::Scan, 1);
    assert!(!event.is_empty(), "{what}: empty trace");
    assert_eq!(event, scan, "cores diverged on {what}");
}

/// The tentpole sweep: for four qualitatively different fleet shapes
/// (clean, contended, mid-schedule node loss, recovery ladder), the
/// sharded core at every shards ∈ {1, 2, 8} × workers ∈ {1, 8}
/// combination must reproduce the event core's merged trace
/// byte-for-byte — and the scan oracle's too.
#[test]
fn sharded_cores_trace_identically_at_every_shard_and_worker_count() {
    let shapes: Vec<(&str, FaultPlan, Workload, usize, usize)> = vec![
        ("clean", FaultPlan::default(), dinner_workload(), 6, 4),
        (
            "contended",
            FaultPlan::seeded(5).losing_node("ac-h1", 0),
            dinner_workload(),
            4,
            4,
        ),
        (
            "node-loss",
            FaultPlan::seeded(7)
                .failing_activities(0.1)
                .losing_node("ac-h2", 3),
            dinner_workload(),
            3,
            3,
        ),
        (
            "recovery-ladder",
            FaultPlan::seeded(13)
                .failing_activities(0.3)
                .transient_failures(),
            dinner_recovery_workload(),
            3,
            2,
        ),
    ];
    for (what, plan, wl, cases, in_flight) in shapes {
        let baseline = jsonl(&plan, &wl, cases, in_flight, CoreSpec::Event, 1);
        assert!(!baseline.is_empty(), "{what}: empty baseline trace");
        let scan = jsonl(&plan, &wl, cases, in_flight, CoreSpec::Scan, 1);
        assert_eq!(baseline, scan, "{what}: event vs scan diverged");
        for shards in [1usize, 2, 8] {
            for workers in [1usize, 8] {
                let sharded = jsonl(
                    &plan,
                    &wl,
                    cases,
                    in_flight,
                    CoreSpec::Sharded { shards },
                    workers,
                );
                assert_eq!(
                    baseline, sharded,
                    "{what}: sharded(shards={shards}, workers={workers}) diverged from event core"
                );
            }
        }
    }
}

/// Crash/recover under the sharded core: kill at every tick, recover
/// (still sharded, still parallel), and prove the stored prefix plus
/// the regenerated suffix is byte-identical to the uninterrupted event
/// core's trace.  Along the way, decode every snapshot the crashed run
/// captured and check each live case's persisted shard assignment
/// round-trips as `submission index % shards`.
#[test]
fn sharded_kill_at_every_tick_recovers_byte_identically() {
    let shards = 8usize;
    let wl = dinner_workload();
    let plan = FaultPlan::seeded(7).failing_activities(0.2);
    let spec = || {
        EngineSpec::default()
            .max_in_flight(2)
            .core(CoreSpec::Sharded { shards })
            .workers(8)
    };
    let baseline = MultiCaseScenario::new(&plan, &wl, 4)
        .spec(spec())
        .traced()
        .run();
    let baseline_jsonl = baseline.trace.expect("traced").to_jsonl();
    assert!(baseline.engine.ticks > 4, "fixture too small");

    for kill in 0..baseline.engine.ticks {
        let store: Arc<Mutex<dyn Store>> = Arc::new(Mutex::new(MemStore::new()));
        let crashed = MultiCaseScenario::new(&plan, &wl, 4)
            .spec(spec().store(store.clone(), 2).kill_at(kill))
            .run();
        assert!(crashed.engine.killed, "kill@{kill}: run should have died");

        // Every snapshot the crashed run persisted must stamp each live
        // case with its shard, and the stamp must be index % shards.
        {
            let guard = store.lock().unwrap();
            if let Some(rec) = guard.latest_snapshot().expect("snapshot read") {
                let image = EngineSnapshot::from_bytes(&rec.state).expect("snapshot decodes");
                assert!(
                    image.core.is_sharded(),
                    "kill@{kill}: snapshot lost the core spec"
                );
                for slot in &image.live {
                    assert_eq!(
                        slot.shard,
                        Some(slot.index % shards),
                        "kill@{kill}: shard assignment did not round-trip"
                    );
                }
            }
        }

        let recovered = MultiCaseScenario::new(&plan, &wl, 4)
            .spec(spec().store(store.clone(), 2))
            .recover()
            .unwrap_or_else(|e| panic!("kill@{kill}: recovery failed: {e}"));
        assert!(!recovered.engine.killed);
        assert_eq!(
            recovered.engine.cases, baseline.engine.cases,
            "kill@{kill}: recovered outcomes diverged"
        );
        let merged = merged_jsonl(&store.lock().unwrap().replay_from(0).unwrap());
        assert_eq!(
            merged, baseline_jsonl,
            "kill@{kill}: stored prefix + regenerated suffix diverged"
        );
    }
}

/// The headline sweep: 32 seeds of flaky fleets with a queueing
/// admission cap, so every seed exercises late admission, failed
/// attempts, failovers, and capacity contention.
#[test]
fn thirty_two_seeds_of_flaky_fleets_trace_identically_on_both_cores() {
    let wl = dinner_workload();
    for seed in 0..32u64 {
        let plan = FaultPlan::seeded(seed).failing_activities(0.2);
        assert_cores_agree(&plan, &wl, 5, 3, &format!("flaky fleet, seed {seed}"));
    }
}

/// Clean fleets: no faults at all, pure capacity interleaving.
#[test]
fn clean_fleets_trace_identically_on_both_cores() {
    let wl = dinner_workload();
    for cases in [1, 2, 4, 8] {
        assert_cores_agree(
            &FaultPlan::default(),
            &wl,
            cases,
            4,
            &format!("clean fleet of {cases}"),
        );
    }
}

/// Sustained contention: one `prep` host is lost up front, so the whole
/// fleet funnels through the survivor and spends ticks blocked — the
/// exact path where the event core's capacity wait-sets and the fiber's
/// cached-dispatch re-check replace the scan core's full re-derivation.
#[test]
fn contended_fleets_trace_identically_on_both_cores() {
    let wl = dinner_workload();
    for seed in [5, 23, 41] {
        let plan = FaultPlan::seeded(seed).losing_node("ac-h1", 0);
        assert_cores_agree(&plan, &wl, 4, 4, &format!("contended fleet, seed {seed}"));
    }
}

/// Partition windows: a `prep` host is cut for `[2, 6)` mid-fleet and
/// then healed, so the topology flips down *and back up* while cases
/// are parked.  The heal is the interesting edge — the scan core
/// rederives readiness from scratch, the event core must wake exactly
/// the right waiters.
#[test]
fn partitioned_fleets_trace_identically_on_both_cores() {
    let wl = dinner_recovery_workload();
    for seed in [3, 17, 29] {
        let plan = FaultPlan::seeded(seed)
            .failing_activities(0.1)
            .partitioning("coordinator", "ac-h0", 2, 6);
        assert_cores_agree(&plan, &wl, 3, 3, &format!("partitioned fleet, seed {seed}"));
    }
}

/// Mid-schedule node loss: the world's topology mutates while cases are
/// parked, which must invalidate any cached dispatch (the generation
/// check) without perturbing the trace.
#[test]
fn mid_schedule_node_loss_traces_identically_on_both_cores() {
    let wl = dinner_workload();
    for seed in [7, 11, 29] {
        let plan = FaultPlan::seeded(seed)
            .failing_activities(0.1)
            .losing_node("ac-h2", 3);
        assert_cores_agree(&plan, &wl, 3, 3, &format!("node loss, seed {seed}"));
    }
}

/// The recovery ladder (retry/lease/breaker) runs inside the fiber's
/// full dispatch path on every step — recovery-enabled fibers must
/// never take the cached fast path (nor accept a speculative prepare
/// ranking), and the ladder's emissions must land in the same ticks on
/// every core.
#[test]
fn recovery_ladder_fleets_trace_identically_on_both_cores() {
    let wl = dinner_recovery_workload();
    for seed in [2, 13, 31] {
        let plan = FaultPlan::seeded(seed)
            .failing_activities(0.3)
            .transient_failures();
        assert_cores_agree(&plan, &wl, 3, 2, &format!("recovery ladder, seed {seed}"));
    }
}

/// Admission refusals: with every `cook` host down the whole fleet is
/// refused at the front door; both cores must emit the same rejection
/// events and seal the same reports.
#[test]
fn refused_fleets_trace_identically_on_both_cores() {
    let wl = dinner_workload();
    let plan = FaultPlan::seeded(3)
        .losing_node("ac-h2", 0)
        .losing_node("ac-h3", 0);
    assert_cores_agree(&plan, &wl, 3, 2, "refused fleet");
}

/// Worker-count invariance holds on the scan core (pinned since the
/// engine landed) — and therefore on the event core too, transitively
/// through the core-equivalence sweep above.  Pin a three-way
/// composition anyway: event core at 8 workers == scan core at 1
/// worker == sharded core at 8 shards and 8 workers.
#[test]
fn worker_counts_and_cores_compose_without_perturbing_the_trace() {
    let wl = dinner_workload();
    let plan = FaultPlan::seeded(17).failing_activities(0.2);
    let event_w8 = jsonl(&plan, &wl, 5, 3, CoreSpec::Event, 8);
    let scan_w1 = jsonl(&plan, &wl, 5, 3, CoreSpec::Scan, 1);
    let sharded = jsonl(&plan, &wl, 5, 3, CoreSpec::Sharded { shards: 8 }, 8);
    assert_eq!(event_w8, scan_w1, "event@8 workers diverged from scan@1");
    assert_eq!(event_w8, sharded, "sharded 8x8 diverged from event@8");
}

/// The nightly chaos sweep: 32 seeds of sharded fleets under node loss
/// *and* partition windows, each checked against the event core's
/// bytes at shards ∈ {2, 8} × workers ∈ {1, 8}.  The tier-1 slice of
/// this is `sharded_cores_trace_identically_at_every_shard_and_worker_count`.
#[test]
#[ignore = "nightly: 32-seed sharded chaos equivalence sweep"]
fn nightly_sharded_chaos_seed_sweep() {
    for seed in 0..32u64 {
        let (wl, cases, in_flight) = if seed % 3 == 0 {
            (dinner_recovery_workload(), 3, 2)
        } else {
            (dinner_workload(), 4, 3)
        };
        let plan = FaultPlan::seeded(seed)
            .failing_activities(0.15)
            .losing_node(
                if seed % 2 == 0 { "ac-h1" } else { "ac-h4" },
                seed as usize % 5,
            )
            .partitioning(
                "coordinator",
                if seed % 2 == 0 { "ac-h2" } else { "ac-h0" },
                1 + seed % 3,
                4 + seed % 4,
            );
        let baseline = jsonl(&plan, &wl, cases, in_flight, CoreSpec::Event, 1);
        assert!(!baseline.is_empty(), "seed {seed}: empty trace");
        for shards in [2usize, 8] {
            for workers in [1usize, 8] {
                let sharded = jsonl(
                    &plan,
                    &wl,
                    cases,
                    in_flight,
                    CoreSpec::Sharded { shards },
                    workers,
                );
                assert_eq!(
                    baseline, sharded,
                    "seed {seed}: sharded(shards={shards}, workers={workers}) diverged"
                );
            }
        }
    }
}

/// Strategy over the generator's taxonomy knobs, kept small enough
/// that each sampled workload enacts in milliseconds.
fn workload_gen() -> impl Strategy<Value = WorkloadGen> {
    (
        any::<u64>(),
        prop_oneof![
            Just(GraphShape::Linear),
            Just(GraphShape::FanOutJoin),
            Just(GraphShape::ChoiceDense),
            Just(GraphShape::Iterative),
        ],
        2usize..4,
        1usize..4,
        prop_oneof![
            Just(DurationProfile::DataStaged),
            Just(DurationProfile::ComputeBound),
        ],
        prop_oneof![Just(false), Just(true)],
    )
        .prop_map(|(seed, shape, width, depth, duration, hetero)| {
            WorkloadGen::new(seed)
                .shape(shape)
                .width(width)
                .depth(depth)
                .duration(duration)
                .heterogeneous_capacity(hetero)
                .fleet(3)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The generator-driven sweep: for any sampled (seed, shape, width,
    /// depth, duration, capacity profile), every core must produce
    /// byte-identical merged JSONL — the event core across worker
    /// counts, the scan oracle, and the sharded core at 4 shards.
    #[test]
    fn generated_workloads_trace_identically_on_all_cores(gen in workload_gen()) {
        let wl = gen.build();
        let plan = FaultPlan::default();
        let combos = [
            (CoreSpec::Event, 1),
            (CoreSpec::Scan, 1),
            (CoreSpec::Event, 8),
            (CoreSpec::Sharded { shards: 4 }, 8),
        ];
        let traces: Vec<String> = combos
            .iter()
            .map(|&(core, workers)| jsonl(&plan, &wl, 3, 2, core, workers))
            .collect();
        prop_assert!(!traces[0].is_empty(), "{}: empty trace", wl.name);
        prop_assert_eq!(&traces[0], &traces[1], "event vs scan diverged on {}", wl.name);
        prop_assert_eq!(&traces[0], &traces[2], "workers 1 vs 8 diverged on {}", wl.name);
        prop_assert_eq!(&traces[0], &traces[3], "sharded core diverged on {}", wl.name);
    }
}
