//! Differential equivalence suite: the event-driven scheduler core
//! against the legacy scan core.
//!
//! [`EngineConfig::scan_core`] keeps the old every-tick-rederive loop
//! alive solely as an oracle.  For every `(seed, workload, fleet
//! shape)` the two cores must produce **byte-identical** merged JSONL
//! traces — same events, same order, same payloads — because the event
//! core is an execution-strategy change, not a semantics change.  Any
//! divergence here is a bug in the event core's wake/ready bookkeeping
//! or in the fiber's cached-dispatch fast path.
//!
//! [`EngineConfig::scan_core`]: gridflow_engine::EngineConfig::scan_core

use gridflow_harness::workload::{
    dinner_recovery_workload, dinner_workload, DurationProfile, GraphShape, Workload, WorkloadGen,
};
use gridflow_harness::{FaultPlan, MultiCaseScenario};
use proptest::prelude::*;

fn jsonl(plan: &FaultPlan, wl: &Workload, cases: usize, in_flight: usize, scan: bool) -> String {
    let mut scenario = MultiCaseScenario::new(plan, wl, cases)
        .max_in_flight(in_flight)
        .traced();
    if scan {
        scenario = scenario.scan_core();
    }
    scenario.run().trace.expect("traced").to_jsonl()
}

fn assert_cores_agree(plan: &FaultPlan, wl: &Workload, cases: usize, in_flight: usize, what: &str) {
    let event = jsonl(plan, wl, cases, in_flight, false);
    let scan = jsonl(plan, wl, cases, in_flight, true);
    assert!(!event.is_empty(), "{what}: empty trace");
    assert_eq!(event, scan, "cores diverged on {what}");
}

/// The headline sweep: 32 seeds of flaky fleets with a queueing
/// admission cap, so every seed exercises late admission, failed
/// attempts, failovers, and capacity contention.
#[test]
fn thirty_two_seeds_of_flaky_fleets_trace_identically_on_both_cores() {
    let wl = dinner_workload();
    for seed in 0..32u64 {
        let plan = FaultPlan::seeded(seed).failing_activities(0.2);
        assert_cores_agree(&plan, &wl, 5, 3, &format!("flaky fleet, seed {seed}"));
    }
}

/// Clean fleets: no faults at all, pure capacity interleaving.
#[test]
fn clean_fleets_trace_identically_on_both_cores() {
    let wl = dinner_workload();
    for cases in [1, 2, 4, 8] {
        assert_cores_agree(
            &FaultPlan::default(),
            &wl,
            cases,
            4,
            &format!("clean fleet of {cases}"),
        );
    }
}

/// Sustained contention: one `prep` host is lost up front, so the whole
/// fleet funnels through the survivor and spends ticks blocked — the
/// exact path where the event core's capacity wait-sets and the fiber's
/// cached-dispatch re-check replace the scan core's full re-derivation.
#[test]
fn contended_fleets_trace_identically_on_both_cores() {
    let wl = dinner_workload();
    for seed in [5, 23, 41] {
        let plan = FaultPlan::seeded(seed).losing_node("ac-h1", 0);
        assert_cores_agree(&plan, &wl, 4, 4, &format!("contended fleet, seed {seed}"));
    }
}

/// Partition windows: a `prep` host is cut for `[2, 6)` mid-fleet and
/// then healed, so the topology flips down *and back up* while cases
/// are parked.  The heal is the interesting edge — the scan core
/// rederives readiness from scratch, the event core must wake exactly
/// the right waiters.
#[test]
fn partitioned_fleets_trace_identically_on_both_cores() {
    let wl = dinner_recovery_workload();
    for seed in [3, 17, 29] {
        let plan = FaultPlan::seeded(seed)
            .failing_activities(0.1)
            .partitioning("coordinator", "ac-h0", 2, 6);
        assert_cores_agree(&plan, &wl, 3, 3, &format!("partitioned fleet, seed {seed}"));
    }
}

/// Mid-schedule node loss: the world's topology mutates while cases are
/// parked, which must invalidate any cached dispatch (the generation
/// check) without perturbing the trace.
#[test]
fn mid_schedule_node_loss_traces_identically_on_both_cores() {
    let wl = dinner_workload();
    for seed in [7, 11, 29] {
        let plan = FaultPlan::seeded(seed)
            .failing_activities(0.1)
            .losing_node("ac-h2", 3);
        assert_cores_agree(&plan, &wl, 3, 3, &format!("node loss, seed {seed}"));
    }
}

/// The recovery ladder (retry/lease/breaker) runs inside the fiber's
/// full dispatch path on every step — recovery-enabled fibers must
/// never take the cached fast path, and the ladder's emissions must
/// land in the same ticks on both cores.
#[test]
fn recovery_ladder_fleets_trace_identically_on_both_cores() {
    let wl = dinner_recovery_workload();
    for seed in [2, 13, 31] {
        let plan = FaultPlan::seeded(seed)
            .failing_activities(0.3)
            .transient_failures();
        assert_cores_agree(&plan, &wl, 3, 2, &format!("recovery ladder, seed {seed}"));
    }
}

/// Admission refusals: with every `cook` host down the whole fleet is
/// refused at the front door; both cores must emit the same rejection
/// events and seal the same reports.
#[test]
fn refused_fleets_trace_identically_on_both_cores() {
    let wl = dinner_workload();
    let plan = FaultPlan::seeded(3)
        .losing_node("ac-h2", 0)
        .losing_node("ac-h3", 0);
    assert_cores_agree(&plan, &wl, 3, 2, "refused fleet");
}

/// Worker-count invariance holds on the scan core (pinned since the
/// engine landed) — and therefore on the event core too, transitively
/// through the core-equivalence sweep above.  Pin the composition
/// anyway: event core at 8 workers == scan core at 1 worker.
#[test]
fn worker_counts_and_cores_compose_without_perturbing_the_trace() {
    let wl = dinner_workload();
    let plan = FaultPlan::seeded(17).failing_activities(0.2);
    let event_w8 = MultiCaseScenario::new(&plan, &wl, 5)
        .max_in_flight(3)
        .workers(8)
        .traced()
        .run()
        .trace
        .expect("traced")
        .to_jsonl();
    let scan_w1 = MultiCaseScenario::new(&plan, &wl, 5)
        .max_in_flight(3)
        .workers(1)
        .scan_core()
        .traced()
        .run()
        .trace
        .expect("traced")
        .to_jsonl();
    assert_eq!(event_w8, scan_w1, "event@8 workers diverged from scan@1");
}

/// Strategy over the generator's taxonomy knobs, kept small enough
/// that each sampled workload enacts in milliseconds.
fn workload_gen() -> impl Strategy<Value = WorkloadGen> {
    (
        any::<u64>(),
        prop_oneof![
            Just(GraphShape::Linear),
            Just(GraphShape::FanOutJoin),
            Just(GraphShape::ChoiceDense),
            Just(GraphShape::Iterative),
        ],
        2usize..4,
        1usize..4,
        prop_oneof![
            Just(DurationProfile::DataStaged),
            Just(DurationProfile::ComputeBound),
        ],
        prop_oneof![Just(false), Just(true)],
    )
        .prop_map(|(seed, shape, width, depth, duration, hetero)| {
            WorkloadGen::new(seed)
                .shape(shape)
                .width(width)
                .depth(depth)
                .duration(duration)
                .heterogeneous_capacity(hetero)
                .fleet(3)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The generator-driven sweep: for any sampled (seed, shape, width,
    /// depth, duration, capacity profile), the event core and the scan
    /// oracle must produce byte-identical merged JSONL — and the event
    /// core must be worker-count invariant across 1 and 8 workers.
    #[test]
    fn generated_workloads_trace_identically_on_both_cores(gen in workload_gen()) {
        let wl = gen.build();
        let plan = FaultPlan::default();
        let mut traces = Vec::new();
        for (workers, scan) in [(1, false), (1, true), (8, false)] {
            let mut scenario = MultiCaseScenario::new(&plan, &wl, 3)
                .max_in_flight(2)
                .workers(workers)
                .traced();
            if scan {
                scenario = scenario.scan_core();
            }
            traces.push(scenario.run().trace.expect("traced").to_jsonl());
        }
        prop_assert!(!traces[0].is_empty(), "{}: empty trace", wl.name);
        prop_assert_eq!(&traces[0], &traces[1], "event vs scan diverged on {}", wl.name);
        prop_assert_eq!(&traces[0], &traces[2], "workers 1 vs 8 diverged on {}", wl.name);
    }
}
