//! Kill-at-any-tick crash/replay property suite for the durable store.
//!
//! The headline theorem of `gridflow-store`: kill the engine at **any**
//! tick boundary, recover from the durable log, and the union of what
//! was stored before the crash and what recovery regenerates is
//! **byte-identical** to the uninterrupted run's merged JSONL trace —
//! and the recovered fleet seals the exact same outcomes.
//!
//! Recovery here is *verified re-execution*: the engine restores the
//! latest snapshot (or restarts from scratch when none survived),
//! re-runs the suffix, and the store byte-checks every regenerated
//! event against what it already holds.  A passing sweep therefore
//! proves three things at once — the snapshot captured the complete
//! state, the restore rebuilt it exactly, and determinism held across
//! the crash.

use gridflow_engine::{CaseHints, EngineOutcome, PolicySpec};
use gridflow_harness::workload::{
    dinner_recovery_workload, dinner_workload, DurationProfile, GraphShape, Workload, WorkloadGen,
};
use gridflow_harness::{FaultPlan, MultiCaseScenario};
use gridflow_store::{merged_jsonl, FileStore, MemStore, Store};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One fleet configuration under test: everything a crashed run and its
/// recovery must agree on.
#[derive(Clone)]
struct Fleet {
    plan: FaultPlan,
    workload: Workload,
    cases: usize,
    in_flight: usize,
    policy: PolicySpec,
    hints: Option<fn(usize) -> CaseHints>,
}

impl Fleet {
    fn dinner(seed: u64) -> Self {
        Fleet {
            plan: FaultPlan::seeded(seed).failing_activities(0.2),
            workload: dinner_workload(),
            cases: 4,
            in_flight: 2,
            policy: PolicySpec::Fifo,
            hints: None,
        }
    }

    fn scenario(&self) -> MultiCaseScenario<'_> {
        let mut s = MultiCaseScenario::new(&self.plan, &self.workload, self.cases)
            .max_in_flight(self.in_flight)
            .policy(self.policy)
            .traced();
        if let Some(h) = self.hints {
            s = s.case_hints(h);
        }
        s
    }

    /// The uninterrupted run's merged JSONL and outcome — the truth the
    /// crash/replay union must reproduce byte-for-byte.
    fn baseline(&self) -> (String, EngineOutcome) {
        let out = self.scenario().run();
        (out.trace.expect("traced").to_jsonl(), out.engine)
    }

    /// Kill at tick `kill`, recover from the same store, and prove the
    /// recovered outcome and the store's full event log match the
    /// uninterrupted baseline exactly.
    fn prove_crash_replay(
        &self,
        kill: u64,
        snapshot_every: u64,
        baseline_jsonl: &str,
        baseline: &EngineOutcome,
    ) {
        let what = format!(
            "{} kill@{kill} K={snapshot_every} policy={}",
            self.workload.name,
            self.policy.name()
        );
        let store: Arc<Mutex<dyn Store>> = Arc::new(Mutex::new(MemStore::new()));
        let crashed = self
            .scenario()
            .store(store.clone(), snapshot_every)
            .kill_at(kill)
            .run();
        assert!(crashed.engine.killed, "{what}: run should have been killed");
        // The durable log holds exactly the pre-crash prefix.
        let prefix = merged_jsonl(&store.lock().unwrap().replay_from(0).unwrap());
        assert!(
            baseline_jsonl.starts_with(&prefix),
            "{what}: stored prefix is not a prefix of the baseline trace"
        );

        let recovered = self
            .scenario()
            .store(store.clone(), snapshot_every)
            .recover()
            .unwrap_or_else(|e| panic!("{what}: recovery failed: {e}"));
        assert!(!recovered.engine.killed, "{what}: recovery ran to the end");
        assert_eq!(
            recovered.engine.cases, baseline.cases,
            "{what}: recovered outcomes diverged"
        );
        assert_eq!(
            recovered.engine.ticks, baseline.ticks,
            "{what}: recovered tick count diverged"
        );
        let merged = merged_jsonl(&store.lock().unwrap().replay_from(0).unwrap());
        assert_eq!(
            merged, baseline_jsonl,
            "{what}: stored prefix + regenerated suffix is not byte-identical"
        );
    }
}

/// The headline sweep, snapshot-present path: kill at *every* tick of a
/// flaky contended fleet with snapshots every 2 ticks, recover, and
/// prove byte-identity each time.  Late kills recover from a snapshot;
/// kills before the first snapshot exercise replay-only recovery — both
/// paths under one sweep.
#[test]
fn kill_at_every_tick_with_snapshots_recovers_byte_identically() {
    let fleet = Fleet::dinner(7);
    let (jsonl, baseline) = fleet.baseline();
    assert!(baseline.ticks > 4, "fixture too small to be interesting");
    for kill in 0..baseline.ticks {
        fleet.prove_crash_replay(kill, 2, &jsonl, &baseline);
    }
}

/// The same sweep with snapshots disabled entirely (`snapshot_every ==
/// 0`): every recovery is replay-only — restart from scratch, byte-
/// verify the whole regenerated prefix against the stored events.
#[test]
fn kill_at_every_tick_replay_only_recovers_byte_identically() {
    let fleet = Fleet::dinner(11);
    let (jsonl, baseline) = fleet.baseline();
    for kill in 0..baseline.ticks {
        fleet.prove_crash_replay(kill, 0, &jsonl, &baseline);
    }
}

/// Kill past the end of the schedule: the run completes normally, the
/// kill never fires, and recovery on the complete log is a no-op replay
/// that changes nothing.
#[test]
fn kill_after_completion_never_fires_and_recovery_is_idempotent() {
    let fleet = Fleet::dinner(3);
    let (jsonl, baseline) = fleet.baseline();
    let store: Arc<Mutex<dyn Store>> = Arc::new(Mutex::new(MemStore::new()));
    let done = fleet
        .scenario()
        .store(store.clone(), 2)
        .kill_at(baseline.ticks + 10)
        .run();
    assert!(!done.engine.killed);
    assert_eq!(done.engine.cases, baseline.cases);
    assert_eq!(
        merged_jsonl(&store.lock().unwrap().replay_from(0).unwrap()),
        jsonl
    );
    let snapshots_before = store.lock().unwrap().snapshot_count();
    let recovered = fleet
        .scenario()
        .store(store.clone(), 2)
        .recover()
        .expect("idempotent recovery");
    assert_eq!(recovered.engine.cases, baseline.cases);
    assert_eq!(
        merged_jsonl(&store.lock().unwrap().replay_from(0).unwrap()),
        jsonl,
        "recovery of a complete log must not grow it"
    );
    assert_eq!(
        store.lock().unwrap().snapshot_count(),
        snapshots_before,
        "regenerated snapshots must dedupe, not accumulate"
    );
}

/// A crashed run can crash *again* during recovery and still converge:
/// kill at t1, recover with a kill at t2 > t1, then recover cleanly.
#[test]
fn repeated_crashes_during_recovery_still_converge() {
    let fleet = Fleet::dinner(19);
    let (jsonl, baseline) = fleet.baseline();
    let store: Arc<Mutex<dyn Store>> = Arc::new(Mutex::new(MemStore::new()));
    let first = fleet.scenario().store(store.clone(), 2).kill_at(3).run();
    assert!(first.engine.killed);
    let second = fleet
        .scenario()
        .store(store.clone(), 2)
        .kill_at(7)
        .recover()
        .expect("mid-recovery crash");
    assert!(second.engine.killed);
    let final_run = fleet
        .scenario()
        .store(store.clone(), 2)
        .recover()
        .expect("final recovery");
    assert!(!final_run.engine.killed);
    assert_eq!(final_run.engine.cases, baseline.cases);
    assert_eq!(
        merged_jsonl(&store.lock().unwrap().replay_from(0).unwrap()),
        jsonl
    );
}

/// The file backend survives an actual process-boundary simulation: the
/// killed run's `FileStore` is dropped entirely and the directory is
/// re-opened from disk before recovery — nothing carries over in
/// memory.
#[test]
fn file_backed_crash_survives_a_reopen_from_disk() {
    let fleet = Fleet::dinner(23);
    let (jsonl, baseline) = fleet.baseline();
    for kill in [1, baseline.ticks / 2, baseline.ticks - 1] {
        let dir = TempDir::new("crash");
        {
            let (file, report) = FileStore::open(dir.path(), 8).expect("create");
            assert_eq!(report.events, 0);
            let store: Arc<Mutex<dyn Store>> = Arc::new(Mutex::new(file));
            let crashed = fleet.scenario().store(store, 2).kill_at(kill).run();
            assert!(crashed.engine.killed);
        } // the "process" dies here: every in-memory handle is gone
        let (file, report) = FileStore::open(dir.path(), 8).expect("reopen");
        assert!(
            !report.truncated,
            "kill@{kill}: a boundary crash leaves no torn tail"
        );
        let store: Arc<Mutex<dyn Store>> = Arc::new(Mutex::new(file));
        let recovered = fleet
            .scenario()
            .store(store.clone(), 2)
            .recover()
            .expect("recovery from reopened dir");
        assert_eq!(recovered.engine.cases, baseline.cases);
        assert_eq!(
            merged_jsonl(&store.lock().unwrap().replay_from(0).unwrap()),
            jsonl,
            "kill@{kill}: reopened recovery diverged"
        );
    }
}

/// Admission policies carry history (fair-share counts) that snapshots
/// persist as an admission log: a bounded sweep over every policy and a
/// couple of generated workload shapes, killed mid-run at two points
/// each — the tier-1 slice of the nightly sweep below.
#[test]
fn every_policy_and_shape_survives_mid_run_kills() {
    for (i, policy) in PolicySpec::ALL.into_iter().enumerate() {
        let mut fleet = Fleet::dinner(31 + i as u64);
        fleet.policy = policy;
        fleet.hints = Some(|i| CaseHints {
            priority: (i % 3) as i64,
            tenant: Some(if i % 2 == 0 { "a" } else { "b" }.to_string()),
            deadline_tick: Some(100 - 10 * i as u64),
        });
        let (jsonl, baseline) = fleet.baseline();
        for kill in mid_run_kills(baseline.ticks) {
            fleet.prove_crash_replay(kill, 3, &jsonl, &baseline);
        }
    }
    for shape in [GraphShape::FanOutJoin, GraphShape::Iterative] {
        let fleet = Fleet {
            plan: FaultPlan::default(),
            workload: WorkloadGen::new(5).shape(shape).width(2).depth(2).build(),
            cases: 3,
            in_flight: 2,
            policy: PolicySpec::Fifo,
            hints: None,
        };
        let (jsonl, baseline) = fleet.baseline();
        for kill in mid_run_kills(baseline.ticks) {
            fleet.prove_crash_replay(kill, 2, &jsonl, &baseline);
        }
    }
}

/// Kill points that actually precede the fleet's natural end.  A plan
/// can be degenerate — seed 31 fails `prep` on every candidate at tick
/// 0, so the whole fleet aborts inside the first tick — and a kill
/// scheduled at or past `ticks` never fires.
fn mid_run_kills(ticks: u64) -> Vec<u64> {
    let mut kills = vec![0, ticks / 2, ticks.saturating_sub(1)];
    kills.sort_unstable();
    kills.dedup();
    kills.retain(|&k| k < ticks);
    kills
}

/// Recovery-ladder fleets (retries, leases, breakers, backoff) carry
/// the most intricate fiber state — kill at every tick and prove the
/// ladder's bookkeeping survives the snapshot round-trip.
#[test]
fn recovery_ladder_fleets_survive_kills_at_every_tick() {
    let fleet = Fleet {
        plan: FaultPlan::seeded(13)
            .failing_activities(0.3)
            .transient_failures(),
        workload: dinner_recovery_workload(),
        cases: 3,
        in_flight: 2,
        policy: PolicySpec::Fifo,
        hints: None,
    };
    let (jsonl, baseline) = fleet.baseline();
    for kill in 0..baseline.ticks {
        fleet.prove_crash_replay(kill, 4, &jsonl, &baseline);
    }
}

/// The full nightly sweep: 32 seeds across the workload generator's
/// shape taxonomy and all four admission policies, each killed at
/// *every* tick of its schedule and recovered — the exhaustive form of
/// the bounded tier-1 tests above.
#[test]
#[ignore = "nightly: 32-seed kill-at-any-tick crash/replay sweep"]
fn nightly_kill_at_every_tick_seed_sweep() {
    let shapes = [
        GraphShape::Linear,
        GraphShape::FanOutJoin,
        GraphShape::ChoiceDense,
        GraphShape::Iterative,
    ];
    for seed in 0..32u64 {
        let fleet = Fleet {
            plan: FaultPlan::seeded(seed).failing_activities(0.15),
            workload: WorkloadGen::new(seed)
                .shape(shapes[(seed % 4) as usize])
                .width(2 + (seed % 2) as usize)
                .depth(1 + (seed % 3) as usize)
                .duration(if seed % 2 == 0 {
                    DurationProfile::DataStaged
                } else {
                    DurationProfile::ComputeBound
                })
                .heterogeneous_capacity(seed % 3 == 0)
                .build(),
            cases: 3,
            in_flight: 2,
            policy: PolicySpec::ALL[(seed % 4) as usize],
            hints: Some(|i| CaseHints {
                priority: (i % 3) as i64,
                tenant: Some(if i % 2 == 0 { "a" } else { "b" }.to_string()),
                deadline_tick: Some(100 - 10 * i as u64),
            }),
        };
        let (jsonl, baseline) = fleet.baseline();
        let snapshot_every = 1 + seed % 4;
        for kill in 0..baseline.ticks {
            fleet.prove_crash_replay(kill, snapshot_every, &jsonl, &baseline);
        }
    }
}

/// Minimal self-cleaning temp dir (no tempfile crate in the tree).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("gridflow-crash-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}
