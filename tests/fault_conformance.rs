//! The fault-injection conformance suite (hosted by `gridflow-harness`).
//!
//! Asserts the deterministic-simulation contract across the stack:
//!
//! 1. every enacted case either completes or produces a resumable
//!    checkpoint (or did nothing at all);
//! 2. no activity is double-executed after a resume;
//! 3. replanning converges after node loss;
//! 4. identical seeds yield byte-identical [`EnactmentReport`]s, and
//!    differing seeds yield different fault schedules;
//! 5. the booted agent stack survives message faults and agent crashes
//!    (degrading to timeouts, never to wrong answers).
//!
//! [`EnactmentReport`]: gridflow_services::coordination::EnactmentReport

use gridflow_agents::{AclMessage, AgentError, AgentRuntime, Performative, Transport};
use gridflow_harness::workload::{
    dinner_recovery_workload, dinner_replan_workload, dinner_workload,
};
use gridflow_harness::{
    execution_counts, is_execution_prefix, outcome_fingerprint, report_fingerprint, run_scenario,
    FaultPlan, FaultyTransport, Scenario, TraceQuery, VirtualClock,
};
use gridflow_planner::prelude::GpConfig;
use gridflow_services::agents::{boot_stack, GRIDFLOW_ONTOLOGY};
use gridflow_services::coordination::EnactmentConfig;
use gridflow_services::planning::PlanningService;
use gridflow_services::world::share;
use serde_json::json;
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------- 1 & 2

#[test]
fn every_case_completes_or_leaves_a_resumable_checkpoint() {
    // Sweep seeds under persistent Bernoulli activity failures plus a
    // scripted coordinator crash: whatever happens, the task must end
    // completed, resumable, or untouched.
    for seed in 0..16 {
        let plan = FaultPlan::seeded(seed)
            .failing_activities(0.25)
            .crashing_after(0);
        let outcome = run_scenario(&plan, &dinner_workload());
        assert!(
            outcome.is_recoverable(),
            "seed {seed} unrecoverable: {:?}",
            outcome.final_report().abort_reason
        );
    }
}

#[test]
fn no_activity_is_double_executed_after_resume() {
    // The dinner workflow is loop-free, so across any number of crash /
    // resume phases each activity may execute at most once; and each
    // phase's accounting must extend (never rewrite) the previous one.
    let mut crashed_at_least_once = false;
    for seed in 0..16 {
        let plan = FaultPlan::seeded(seed)
            .failing_activities(0.2)
            .crashing_after(1);
        let outcome = run_scenario(&plan, &dinner_workload());
        for pair in outcome.reports.windows(2) {
            assert!(
                is_execution_prefix(&pair[0], &pair[1]),
                "seed {seed}: resume rewrote completed work"
            );
        }
        if outcome.resumes > 0 {
            crashed_at_least_once = true;
        }
        if outcome.completed {
            let counts = execution_counts(outcome.final_report());
            assert!(
                counts.values().all(|&c| c == 1),
                "seed {seed}: double execution: {counts:?}"
            );
        }
    }
    assert!(crashed_at_least_once, "sweep never exercised a resume");
}

// -------------------------------------------------------------------- 3

#[test]
fn replanning_converges_after_node_loss() {
    // Both `cook` hosts are lost before the run.  With replanning on,
    // the planner must route around the loss via `nuke` and the task
    // must still complete.
    let plan = FaultPlan::seeded(1)
        .losing_node("ac-h2", 0)
        .losing_node("ac-h3", 0);
    let outcome = run_scenario(&plan, &dinner_replan_workload(11));
    assert!(
        outcome.completed,
        "abort: {:?}",
        outcome.final_report().abort_reason
    );
    let report = outcome.final_report();
    assert!(report.replans >= 1, "no replanning happened");
    assert!(
        report.executions.iter().any(|e| e.service == "nuke"),
        "expected the alternative cooker; executions: {:?}",
        report.executions
    );
}

// -------------------------------------------------------------------- 4

#[test]
fn identical_seeds_yield_byte_identical_reports() {
    for seed in [0, 7, 42] {
        let plan = FaultPlan::seeded(seed)
            .failing_activities(0.3)
            .crashing_after(0);
        let wl = dinner_workload();
        let a = run_scenario(&plan, &wl);
        let b = run_scenario(&plan, &wl);
        assert_eq!(
            outcome_fingerprint(&a),
            outcome_fingerprint(&b),
            "seed {seed} did not replay byte-identically"
        );
        assert_eq!(
            report_fingerprint(a.final_report()),
            report_fingerprint(b.final_report())
        );
    }
}

#[test]
fn differing_seeds_yield_different_fault_schedules() {
    // Drive the same message sequence through transports seeded
    // differently: the decision logs must diverge.
    let sequence: Vec<AclMessage> = (0..128)
        .map(|i| AclMessage::new(Performative::Inform, "a", "b", "t", json!(i)))
        .collect();
    let mut schedules = Vec::new();
    for seed in [1u64, 2, 3] {
        let t = FaultyTransport::new(
            FaultPlan::seeded(seed)
                .dropping(0.2)
                .duplicating(0.2)
                .delaying(0.2, 2),
            VirtualClock::new(),
        );
        for m in &sequence {
            let _ = t.intercept(m.clone());
        }
        schedules.push(t.schedule());
    }
    assert_ne!(schedules[0], schedules[1]);
    assert_ne!(schedules[1], schedules[2]);
    // And differing seeds also shake the enactment itself.
    let wl = dinner_workload();
    let r1 = run_scenario(&FaultPlan::seeded(100).failing_activities(0.5), &wl);
    let r2 = run_scenario(&FaultPlan::seeded(101).failing_activities(0.5), &wl);
    assert_ne!(
        outcome_fingerprint(&r1),
        outcome_fingerprint(&r2),
        "different seeds produced identical outcomes under heavy failure"
    );
}

// -------------------------------------------------------------------- 5

fn booted_stack(
    rt: &mut AgentRuntime,
) -> (
    gridflow_services::agents::StackHandles,
    gridflow_process::ProcessGraph,
    gridflow_process::CaseDescription,
) {
    let wl = dinner_workload();
    let world = share(wl.fresh_world(&FaultPlan::default(), 0));
    let gp = GpConfig {
        population_size: 60,
        generations: 20,
        seed: 2,
        ..GpConfig::default()
    };
    let stack = boot_stack(
        rt,
        world,
        PlanningService::new(gp),
        EnactmentConfig::default(),
    )
    .expect("stack boots");
    (stack, wl.graph, wl.case)
}

#[test]
fn stack_survives_message_faults_and_recovers_when_they_stop() {
    let mut rt = AgentRuntime::new();
    let (stack, graph, case) = booted_stack(&mut rt);

    // Install a lossy transport *after* boot (registration traffic is
    // not the subject under test): drops, duplicates and delays.
    let plan = FaultPlan::seeded(5)
        .dropping(0.1)
        .duplicating(0.3)
        .delaying(0.2, 2);
    let transport = Arc::new(FaultyTransport::new(plan, VirtualClock::new()));
    rt.set_transport(transport.clone());

    let enact = json!({"action": "enact", "graph": graph, "case": case});
    for _ in 0..4 {
        match stack.client.request(
            &stack.coordination,
            GRIDFLOW_ONTOLOGY,
            enact.clone(),
            Duration::from_secs(5),
        ) {
            // Degraded, never wrong: a reply that does arrive carries a
            // correct report.
            Ok(reply) => {
                assert_eq!(reply.content["report"]["success"], json!(true));
            }
            // Dropped request or reply → timeout.  Acceptable under loss.
            Err(AgentError::Timeout { .. }) => {}
            Err(other) => panic!("unexpected failure under message faults: {other}"),
        }
    }
    assert!(!transport.schedule().is_empty(), "transport saw no traffic");

    // Faults stop → the stack must answer again.
    rt.directory().clear_transport();
    let reply = stack
        .client
        .request(
            &stack.coordination,
            GRIDFLOW_ONTOLOGY,
            enact,
            Duration::from_secs(10),
        )
        .expect("stack must recover once faults stop");
    assert_eq!(reply.content["report"]["success"], json!(true));
    rt.shutdown();
}

#[test]
fn stack_survives_message_reordering_and_recovers_when_it_stops() {
    let mut rt = AgentRuntime::new();
    let (stack, graph, case) = booted_stack(&mut rt);

    // Reordering swaps adjacent deliveries: a request can arrive after
    // the message sent behind it.  The stack must stay degraded-only —
    // a reply that arrives is correct, a swap that starves a waiter is
    // a timeout, and nothing is ever wrong.
    let plan = FaultPlan::seeded(9).reordering(0.3);
    let transport = Arc::new(FaultyTransport::new(plan, VirtualClock::new()));
    rt.set_transport(transport.clone());

    let enact = json!({"action": "enact", "graph": graph, "case": case});
    for _ in 0..4 {
        match stack.client.request(
            &stack.coordination,
            GRIDFLOW_ONTOLOGY,
            enact.clone(),
            Duration::from_secs(5),
        ) {
            Ok(reply) => {
                assert_eq!(reply.content["report"]["success"], json!(true));
            }
            Err(AgentError::Timeout { .. }) => {}
            Err(other) => panic!("unexpected failure under reordering: {other}"),
        }
    }
    assert!(!transport.schedule().is_empty(), "transport saw no traffic");

    // Reordering stops → the stack must answer again.
    rt.directory().clear_transport();
    let reply = stack
        .client
        .request(
            &stack.coordination,
            GRIDFLOW_ONTOLOGY,
            enact,
            Duration::from_secs(10),
        )
        .expect("stack must recover once reordering stops");
    assert_eq!(reply.content["report"]["success"], json!(true));
    rt.shutdown();
}

#[test]
fn crashed_coordination_agent_fails_over_to_a_replica() {
    let mut rt = AgentRuntime::new();
    let (stack, graph, case) = booted_stack(&mut rt);

    // Spawn a replica, crash the primary, and verify the replica picks
    // up enactments (the §2 replication story).
    let wl = dinner_workload();
    let world2 = share(wl.fresh_world(&FaultPlan::default(), 0));
    rt.spawn(gridflow_services::agents::CoordinationAgent::new(
        "coordination-2",
        EnactmentConfig::default(),
        world2,
    ))
    .expect("replica spawns");
    rt.stop_agent(&stack.coordination).expect("primary stops");

    // The crashed primary is gone from the directory…
    let enact = json!({"action": "enact", "graph": graph, "case": case});
    assert!(matches!(
        stack.client.request(
            &stack.coordination,
            GRIDFLOW_ONTOLOGY,
            enact.clone(),
            Duration::from_secs(2),
        ),
        Err(AgentError::UnknownAgent(_))
    ));
    // …and the replica answers in its stead.
    let reply = stack
        .client
        .request("coordination-2", "gridflow", enact, Duration::from_secs(10))
        .expect("replica must answer");
    assert_eq!(reply.content["report"]["success"], json!(true));
    rt.shutdown();
}

#[test]
fn duplicated_requests_do_not_corrupt_reply_correlation() {
    // Every message delivered twice: the client must still correlate
    // exactly one reply per request and the reports must be correct.
    struct DuplicateEverything;
    impl Transport for DuplicateEverything {
        fn intercept(&self, msg: AclMessage) -> Vec<AclMessage> {
            vec![msg.clone(), msg]
        }
    }
    let mut rt = AgentRuntime::new();
    let (stack, graph, case) = booted_stack(&mut rt);
    rt.set_transport(Arc::new(DuplicateEverything));
    for _ in 0..3 {
        let reply = stack
            .client
            .request(
                &stack.coordination,
                GRIDFLOW_ONTOLOGY,
                json!({"action": "enact", "graph": graph, "case": case}),
                Duration::from_secs(10),
            )
            .expect("duplication must not break request/reply");
        assert_eq!(reply.content["report"]["success"], json!(true));
    }
    rt.shutdown();
}

// ------------------------------------------------- resume bookkeeping

#[test]
fn scripted_crash_resumes_without_repeating_work_under_load() {
    // Crash after every checkpoint index in turn; the final execution
    // list must always be the exact linear schedule.
    for crash_at in 0..3 {
        let plan = FaultPlan::seeded(9).crashing_after(crash_at);
        let outcome = run_scenario(&plan, &dinner_workload());
        assert!(outcome.completed, "crash_at {crash_at}");
        let services: Vec<&str> = outcome
            .final_report()
            .executions
            .iter()
            .map(|e| e.service.as_str())
            .collect();
        assert_eq!(
            services,
            vec!["prep", "cook", "plate"],
            "crash_at {crash_at}"
        );
    }
}

#[test]
fn every_report_invariant_also_holds_in_trace_form() {
    // The report-level invariants above have trace-level twins: sweep
    // crashing plans and assert them off the event log instead of the
    // final accounting (see telemetry_conformance.rs for the full
    // trace suite).
    for seed in 0..8 {
        let plan = FaultPlan::seeded(seed)
            .failing_activities(0.2)
            .crashing_after(0);
        let outcome = Scenario::new(&plan, &dinner_workload()).traced().run();
        let log = outcome.trace.clone().expect("traced run keeps its log");
        let q = TraceQuery::new(log.records());
        q.assert_no_double_dispatch();
        // Every execution the final report accounts for has a matching
        // completion in the trace.  (The trace may hold *more*: work the
        // scripted crash discarded really did run before being lost.)
        for e in &outcome.final_report().executions {
            let activity = e.activity.clone();
            assert!(
                q.count(|ev| matches!(
                    ev,
                    gridflow_harness::TraceEvent::ActivityCompleted { activity: a, .. }
                        if *a == activity
                )) >= 1,
                "seed {seed}: execution of {} not traced",
                e.activity
            );
        }
    }
}

// ------------------------------------------------- recovery ladder

/// The recovery acceptance scenario: one slow `prep` host (executions
/// succeed but outlive their leases) plus transient Bernoulli activity
/// failures.
fn degraded_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .failing_activities(0.5)
        .transient_failures()
        .slowing_container("ac-h1", 50.0)
}

#[test]
fn recovery_ladder_turns_failing_scenarios_into_completions() {
    // Sweep seeds over the degraded grid.  The legacy candidate loop
    // (recovery disabled, single phase, no replanning) must fail on a
    // healthy share of them; the standard ladder must complete those
    // same seeds, with byte-identical traces across replays that carry
    // the new retry/lease/breaker event families.
    let mut proven = 0;
    let mut saw_lease_expiry = false;
    for seed in 0..32 {
        let plan = degraded_plan(seed);
        let legacy = Scenario::new(&plan, &dinner_workload()).budget(0).run();

        let wl = dinner_recovery_workload();
        let recovered = Scenario::new(&plan, &wl).traced().run();
        let log_a = recovered.trace.clone().expect("traced run keeps its log");
        let log_b = Scenario::new(&plan, &wl)
            .traced()
            .run()
            .trace
            .expect("traced run keeps its log");
        let jsonl = log_a.to_jsonl();
        assert_eq!(
            jsonl,
            log_b.to_jsonl(),
            "seed {seed}: recovery traces must replay byte-identically"
        );
        let q = TraceQuery::new(log_a.records());
        q.assert_breaker_discipline();
        q.assert_no_dispatch_while_open();

        if !legacy.completed && recovered.completed {
            // The slow host burns its retries and trips its breaker on
            // the way to the healthy one — visibly, in the trace.
            use gridflow_harness::TraceEvent;
            assert!(
                q.count(|e| matches!(e, TraceEvent::RetryScheduled { .. })) >= 1,
                "seed {seed}: no retry scheduled"
            );
            assert!(
                q.count(|e| matches!(e, TraceEvent::LeaseGranted { .. })) >= 1,
                "seed {seed}: no lease granted"
            );
            assert!(
                q.count(|e| matches!(e, TraceEvent::BreakerOpened { .. })) >= 1,
                "seed {seed}: no breaker opened"
            );
            saw_lease_expiry |= q.count(|e| matches!(e, TraceEvent::LeaseExpired { .. })) >= 1;
            proven += 1;
        }
    }
    assert!(
        proven >= 8,
        "only {proven}/32 seeds showed the ladder beating the legacy loop"
    );
    assert!(saw_lease_expiry, "no proven seed ever expired a lease");
}

#[test]
#[ignore = "nightly: 32-seed lease+breaker replay-determinism sweep"]
fn nightly_recovery_seed_sweep() {
    for seed in 0..32 {
        let plan = degraded_plan(seed);
        let wl = dinner_recovery_workload();
        let a = Scenario::new(&plan, &wl).traced().run();
        let log_a = a.trace.clone().expect("traced run keeps its log");
        let b = Scenario::new(&plan, &wl).traced().run();
        let log_b = b.trace.clone().expect("traced run keeps its log");
        assert_eq!(
            outcome_fingerprint(&a),
            outcome_fingerprint(&b),
            "seed {seed}: outcome must replay byte-identically"
        );
        assert_eq!(
            log_a.to_jsonl(),
            log_b.to_jsonl(),
            "seed {seed}: trace must replay byte-identically"
        );
        let q = TraceQuery::new(log_a.records());
        q.assert_breaker_discipline();
        q.assert_no_dispatch_while_open();
        q.assert_no_double_dispatch();
    }
}

#[test]
fn resume_budget_bounds_the_phase_count() {
    // Certain failure (every execution fails, persistently): the runner
    // must stop at the budget, not loop.
    let plan = FaultPlan::seeded(2).failing_activities(1.0);
    let outcome = Scenario::new(&plan, &dinner_workload()).budget(3).run();
    assert!(!outcome.completed);
    assert!(outcome.resumes <= 3);
    assert!(outcome.reports.len() <= 4);
    // Nothing ever succeeded → trivially restartable.
    assert!(outcome.is_recoverable());
}
