//! The 0.5.0 API consolidation keeps the old entry points alive as
//! `#[deprecated]` shims.  This suite is the compatibility contract:
//! every shim still compiles, and each one produces *exactly* what its
//! builder/`Scenario` replacement produces — so downstream code can
//! migrate on its own schedule.

#![allow(deprecated)]

use gridflow_harness::workload::dinner_workload;
use gridflow_harness::{
    outcome_fingerprint, run_scenario_traced, run_scenario_with_budget,
    run_scenario_with_budget_traced, FaultPlan, Scenario, TraceHandle, TraceLog,
};
use gridflow_services::Enactor;
use std::sync::Arc;

#[test]
fn enactor_new_matches_the_builder() {
    let wl = dinner_workload();
    let plan = FaultPlan::seeded(19).failing_activities(0.3);
    let mut w1 = wl.fresh_world(&plan, 0);
    let mut w2 = wl.fresh_world(&plan, 0);
    let old = Enactor::new(wl.config.clone()).enact(&mut w1, &wl.graph, &wl.case);
    let new = Enactor::builder()
        .config(wl.config.clone())
        .build()
        .enact(&mut w2, &wl.graph, &wl.case);
    assert_eq!(old, new);
}

#[test]
fn with_trace_handle_matches_the_builder_and_traces_identically() {
    let wl = dinner_workload();
    let log_old = TraceLog::new();
    let log_new = TraceLog::new();
    let mut w1 = wl.fresh_world(&FaultPlan::default(), 0);
    let mut w2 = wl.fresh_world(&FaultPlan::default(), 0);
    let old = Enactor::new(wl.config.clone())
        .with_trace_handle(TraceHandle::from(log_old.clone()))
        .enact(&mut w1, &wl.graph, &wl.case);
    let new = Enactor::builder()
        .config(wl.config.clone())
        .trace_handle(TraceHandle::from(log_new.clone()))
        .build()
        .enact(&mut w2, &wl.graph, &wl.case);
    assert_eq!(old, new);
    assert_eq!(log_old.to_jsonl(), log_new.to_jsonl());
    assert!(!log_old.to_jsonl().is_empty());
}

#[test]
fn with_trace_matches_the_builder_sink_option() {
    let wl = dinner_workload();
    let log_old = TraceLog::new();
    let log_new = TraceLog::new();
    let mut w1 = wl.fresh_world(&FaultPlan::default(), 0);
    let mut w2 = wl.fresh_world(&FaultPlan::default(), 0);
    let old = Enactor::new(wl.config.clone())
        .with_trace(Arc::new(log_old.clone()))
        .enact(&mut w1, &wl.graph, &wl.case);
    let new = Enactor::builder()
        .config(wl.config.clone())
        .trace(Arc::new(log_new.clone()))
        .build()
        .enact(&mut w2, &wl.graph, &wl.case);
    assert_eq!(old, new);
    assert_eq!(log_old.to_jsonl(), log_new.to_jsonl());
}

#[test]
fn run_scenario_with_budget_matches_scenario_budget() {
    let plan = FaultPlan::seeded(11).crashing_after(0);
    let wl = dinner_workload();
    let old = run_scenario_with_budget(&plan, &wl, 2);
    let new = Scenario::new(&plan, &wl).budget(2).run();
    assert_eq!(outcome_fingerprint(&old), outcome_fingerprint(&new));
    assert_eq!(old, new);
}

#[test]
fn run_scenario_traced_matches_scenario_traced() {
    let plan = FaultPlan::seeded(21)
        .failing_activities(0.3)
        .crashing_after(1);
    let wl = dinner_workload();
    let (old_outcome, old_log) = run_scenario_traced(&plan, &wl);
    let new_outcome = Scenario::new(&plan, &wl).traced().run();
    let new_log = new_outcome
        .trace
        .as_ref()
        .expect("traced run keeps its log");
    assert_eq!(old_log.to_jsonl(), new_log.to_jsonl());
    assert_eq!(
        outcome_fingerprint(&old_outcome),
        outcome_fingerprint(&new_outcome)
    );
}

#[test]
fn run_scenario_with_budget_traced_matches_scenario_trace_handle() {
    let plan = FaultPlan::seeded(3)
        .losing_node("ac-h2", 0)
        .losing_node("ac-h3", 0);
    let wl = dinner_workload();
    let log_old = TraceLog::new();
    let log_new = TraceLog::new();
    let old = run_scenario_with_budget_traced(&plan, &wl, 1, TraceHandle::from(log_old.clone()));
    let new = Scenario::new(&plan, &wl)
        .budget(1)
        .trace_handle(TraceHandle::from(log_new.clone()))
        .run();
    assert_eq!(old, new);
    assert_eq!(log_old.to_jsonl(), log_new.to_jsonl());
    // The external-handle path leaves the outcome's own log empty.
    assert!(new.trace.is_none());
}
