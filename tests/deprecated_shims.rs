//! The compatibility contract for the configuration-surface redesign.
//!
//! The 0.6.0 consolidation replaced the engine's `scan_core: bool` flag
//! with the typed [`CoreSpec`] selector and folded the scenario's
//! engine-side knobs into one [`EngineSpec`].  The 0.5.0-era deprecated
//! free functions (`run_scenario_with_budget` and friends) and the
//! `Enactor::new`/`with_trace`/`with_trace_handle` shims are gone —
//! their call sites were ported to the builders.  What remains
//! deprecated is exactly one method, `MultiCaseScenario::scan_core`,
//! and this suite pins it (and the new consolidated spec surface) to
//! produce *byte-identical* results to its replacement, so downstream
//! code can migrate on its own schedule.

#![allow(deprecated)]

use gridflow_engine::{CaseHints, CoreSpec, PolicySpec};
use gridflow_harness::workload::dinner_workload;
use gridflow_harness::{EngineSpec, FaultPlan, MultiCaseScenario};
use gridflow_store::{merged_jsonl, MemStore, Store};
use std::sync::{Arc, Mutex};

/// The `scan_core()` shim must be exactly `.core(CoreSpec::Scan)`:
/// same outcomes, same merged trace bytes.
#[test]
fn scan_core_shim_matches_core_spec_scan() {
    let wl = dinner_workload();
    let plan = FaultPlan::seeded(19).failing_activities(0.3);
    let old = MultiCaseScenario::new(&plan, &wl, 4)
        .max_in_flight(2)
        .scan_core()
        .traced()
        .run();
    let new = MultiCaseScenario::new(&plan, &wl, 4)
        .max_in_flight(2)
        .core(CoreSpec::Scan)
        .traced()
        .run();
    assert_eq!(old.engine.cases, new.engine.cases);
    assert_eq!(
        old.trace.expect("traced").to_jsonl(),
        new.trace.expect("traced").to_jsonl()
    );
}

/// One [`EngineSpec`] must equal the same knobs applied through the
/// individual builder methods — outcome and trace bytes both.
#[test]
fn engine_spec_matches_the_individual_builder_methods() {
    let wl = dinner_workload();
    let plan = FaultPlan::seeded(7).failing_activities(0.2);
    let hints = |i: usize| CaseHints {
        priority: (i % 3) as i64,
        tenant: Some(if i.is_multiple_of(2) { "a" } else { "b" }.to_string()),
        deadline_tick: Some(50 - 5 * i as u64),
    };
    let spec = EngineSpec::default()
        .workers(8)
        .max_in_flight(3)
        .core(CoreSpec::Sharded { shards: 2 })
        .policy(PolicySpec::Priority);
    let consolidated = MultiCaseScenario::new(&plan, &wl, 5)
        .spec(spec)
        .case_hints(hints)
        .traced()
        .run();
    let chained = MultiCaseScenario::new(&plan, &wl, 5)
        .workers(8)
        .max_in_flight(3)
        .core(CoreSpec::Sharded { shards: 2 })
        .policy(PolicySpec::Priority)
        .case_hints(hints)
        .traced()
        .run();
    assert_eq!(consolidated.engine.cases, chained.engine.cases);
    assert_eq!(
        consolidated.trace.expect("traced").to_jsonl(),
        chained.trace.expect("traced").to_jsonl()
    );
}

/// The spec's store/kill knobs must behave exactly like the scenario's
/// own `store`/`kill_at` builders: same crash point, same durable
/// prefix, and a spec-configured recovery converges to the same log.
#[test]
fn engine_spec_store_and_kill_match_the_builder_methods() {
    let wl = dinner_workload();
    let plan = FaultPlan::seeded(11).failing_activities(0.2);

    let chained_store: Arc<Mutex<dyn Store>> = Arc::new(Mutex::new(MemStore::new()));
    let chained = MultiCaseScenario::new(&plan, &wl, 4)
        .max_in_flight(2)
        .store(chained_store.clone(), 2)
        .kill_at(3)
        .run();

    let spec_store: Arc<Mutex<dyn Store>> = Arc::new(Mutex::new(MemStore::new()));
    let spec = EngineSpec::default()
        .max_in_flight(2)
        .store(spec_store.clone(), 2)
        .kill_at(3);
    let consolidated = MultiCaseScenario::new(&plan, &wl, 4).spec(spec).run();

    assert!(chained.engine.killed && consolidated.engine.killed);
    let chained_prefix = merged_jsonl(&chained_store.lock().unwrap().replay_from(0).unwrap());
    let spec_prefix = merged_jsonl(&spec_store.lock().unwrap().replay_from(0).unwrap());
    assert_eq!(chained_prefix, spec_prefix, "durable prefixes diverged");

    // Recovery through the spec surface (kill cleared) converges.
    let recover_spec = EngineSpec::default()
        .max_in_flight(2)
        .store(spec_store.clone(), 2);
    let recovered = MultiCaseScenario::new(&plan, &wl, 4)
        .spec(recover_spec)
        .recover()
        .expect("spec-driven recovery");
    assert!(!recovered.engine.killed);
    assert!(recovered.engine.all_succeeded());
}

/// Applying a spec replaces engine-side knobs wholesale — a default
/// spec resets earlier builder calls, which is what makes a spec a
/// self-contained description of the run.
#[test]
fn engine_spec_resets_previously_set_knobs() {
    let wl = dinner_workload();
    let plan = FaultPlan::default();
    let reset = MultiCaseScenario::new(&plan, &wl, 3)
        .workers(8)
        .core(CoreSpec::Scan)
        .kill_at(1)
        .spec(EngineSpec::default())
        .traced()
        .run();
    let plain = MultiCaseScenario::new(&plan, &wl, 3).traced().run();
    assert!(!reset.engine.killed, "default spec must clear kill_at");
    assert_eq!(reset.engine.cases, plain.engine.cases);
    assert_eq!(
        reset.trace.expect("traced").to_jsonl(),
        plain.trace.expect("traced").to_jsonl()
    );
}
