//! Conformance suite for admission policies.
//!
//! The policy layer's contract:
//!
//! 1. **FIFO is the transparent default.**  An explicit
//!    `PolicySpec::Fifo` produces a trace byte-identical to the
//!    default configuration's — the policy seam costs nothing when
//!    nothing is asked of it — and FIFO admissions carry no reason
//!    annotation, so legacy traces stay byte-stable.
//! 2. **Non-FIFO policies respect their own discipline.**  Among
//!    same-tick admissions, `Priority` admits higher priorities first,
//!    `Deadline` admits earlier deadlines first (checked with the
//!    `TraceQuery` admission helpers), and `FairShare` spreads
//!    same-tick admissions across tenants instead of letting one
//!    tenant's burst starve the rest.
//! 3. **Every policy is deterministic.**  Same fleet, same policy ⇒
//!    byte-identical merged JSONL at any worker count.

use gridflow_engine::{CaseHints, PolicySpec};
use gridflow_harness::workload::dinner_workload;
use gridflow_harness::{FaultPlan, MultiCaseScenario, TraceQuery};
use std::collections::BTreeMap;

fn jsonl(scenario: MultiCaseScenario<'_>) -> String {
    scenario.traced().run().trace.expect("traced").to_jsonl()
}

// ------------------------------------------------------------------ 1

#[test]
fn explicit_fifo_is_byte_identical_to_the_default_configuration() {
    let wl = dinner_workload();
    let plan = FaultPlan::seeded(17).failing_activities(0.2);
    let default_trace = jsonl(MultiCaseScenario::new(&plan, &wl, 5).max_in_flight(3));
    let fifo_trace = jsonl(
        MultiCaseScenario::new(&plan, &wl, 5)
            .max_in_flight(3)
            .policy(PolicySpec::Fifo),
    );
    assert!(!default_trace.is_empty());
    assert_eq!(
        default_trace, fifo_trace,
        "explicit FIFO must be the default, byte for byte"
    );
}

#[test]
fn fifo_admissions_carry_no_reason_and_keep_submission_order() {
    let wl = dinner_workload();
    let outcome = MultiCaseScenario::new(&FaultPlan::default(), &wl, 4)
        .max_in_flight(2)
        .traced()
        .run();
    let q = TraceQuery::new(outcome.trace.expect("traced").records());
    let admissions = q.admissions();
    assert_eq!(admissions.len(), 4);
    for a in &admissions {
        assert_eq!(a.reason, None, "FIFO must not annotate {}", a.case);
    }
    assert_eq!(
        q.admission_sequence(),
        vec!["dinner-0", "dinner-1", "dinner-2", "dinner-3"],
        "FIFO must admit in submission order"
    );
}

// ------------------------------------------------------------------ 2

/// Case `i` of 6 gets priority `i % 3` — submission order runs against
/// priority order, so FIFO and Priority visibly disagree.
fn staggered_priority(i: usize) -> CaseHints {
    CaseHints::with_priority((i % 3) as i64)
}

#[test]
fn priority_policy_admits_high_priorities_first_within_a_tick() {
    let wl = dinner_workload();
    let outcome = MultiCaseScenario::new(&FaultPlan::default(), &wl, 6)
        .max_in_flight(2)
        .policy(PolicySpec::Priority)
        .case_hints(staggered_priority)
        .traced()
        .run();
    assert!(outcome.engine.all_succeeded());
    let q = TraceQuery::new(outcome.trace.expect("traced").records());
    let priorities: BTreeMap<String, i64> = (0..6)
        .map(|i| (format!("dinner-{i}"), (i % 3) as i64))
        .collect();
    q.assert_admission_priority(&priorities);
    // The first admission must be a priority-2 case, not dinner-0.
    let first = &q.admission_sequence()[0];
    assert_eq!(
        priorities[first], 2,
        "first admit should be a priority-2 case, got {first}"
    );
    // And every admission is annotated with the winning priority.
    for a in q.admissions() {
        let reason = a.reason.expect("priority admissions carry a reason");
        assert_eq!(reason, format!("priority={}", priorities[&a.case]));
    }
}

#[test]
fn deadline_policy_admits_in_edf_order_within_a_tick() {
    let wl = dinner_workload();
    // Deadlines run strictly against submission order: the last
    // submitted case is the most urgent.
    let outcome = MultiCaseScenario::new(&FaultPlan::default(), &wl, 5)
        .max_in_flight(2)
        .policy(PolicySpec::Deadline)
        .case_hints(|i| CaseHints::with_deadline(100 - 10 * i as u64))
        .traced()
        .run();
    assert!(outcome.engine.all_succeeded());
    let q = TraceQuery::new(outcome.trace.expect("traced").records());
    let deadlines: BTreeMap<String, u64> = (0..5)
        .map(|i| (format!("dinner-{i}"), 100 - 10 * i as u64))
        .collect();
    q.assert_admission_deadlines(&deadlines);
    assert_eq!(
        q.admission_sequence()[0],
        "dinner-4",
        "EDF must admit the tightest deadline first"
    );
}

#[test]
fn fair_share_spreads_same_tick_admissions_across_tenants() {
    let wl = dinner_workload();
    // Submission order front-loads tenant `a` (a, a, b, b): FIFO would
    // hand tenant `a` both opening slots; fair share must give each
    // tenant one.
    let outcome = MultiCaseScenario::new(&FaultPlan::default(), &wl, 4)
        .max_in_flight(2)
        .policy(PolicySpec::FairShare)
        .case_hints(|i| CaseHints::with_tenant(if i < 2 { "a" } else { "b" }))
        .traced()
        .run();
    assert!(outcome.engine.all_succeeded());
    let q = TraceQuery::new(outcome.trace.expect("traced").records());
    let admissions = q.admissions();
    let first_tick = admissions[0].tick;
    let openers: Vec<&str> = admissions
        .iter()
        .filter(|a| a.tick == first_tick)
        .map(|a| a.case.as_str())
        .collect();
    assert_eq!(
        openers,
        vec!["dinner-0", "dinner-2"],
        "fair share should give tenants a and b one opening slot each"
    );
}

// ------------------------------------------------------------------ 3

#[test]
fn every_policy_is_worker_count_invariant() {
    let wl = dinner_workload();
    let plan = FaultPlan::default();
    for policy in PolicySpec::ALL {
        let run = |workers: usize| {
            jsonl(
                MultiCaseScenario::new(&plan, &wl, 5)
                    .max_in_flight(2)
                    .workers(workers)
                    .policy(policy)
                    .case_hints(staggered_priority),
            )
        };
        let w1 = run(1);
        assert!(!w1.is_empty());
        assert_eq!(w1, run(8), "{} diverged at workers=8", policy.name());
    }
}

#[test]
fn policy_spec_parses_its_aliases() {
    assert_eq!("fifo".parse::<PolicySpec>().unwrap(), PolicySpec::Fifo);
    assert_eq!("edf".parse::<PolicySpec>().unwrap(), PolicySpec::Deadline);
    assert_eq!(
        "fair-share".parse::<PolicySpec>().unwrap(),
        PolicySpec::FairShare
    );
    assert!("round-robin".parse::<PolicySpec>().is_err());
}
