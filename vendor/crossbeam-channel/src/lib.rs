//! Offline stand-in for `crossbeam-channel`: an unbounded MPMC channel
//! built on `Mutex<VecDeque>` + `Condvar`.  Both [`Sender`] and
//! [`Receiver`] are cloneable; sends fail once every receiver is gone
//! and receives fail once every sender is gone and the queue drains —
//! the exact disconnect semantics the agent runtime relies on.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<State<T>>,
    ready: Condvar,
}

struct State<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Sending half; cloneable (multi-producer).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half; cloneable (multi-consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(State {
            items: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// Create a "bounded" channel; the stand-in never blocks on capacity
/// but preserves the disconnect semantics.
pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
    unbounded()
}

impl<T> Sender<T> {
    /// Enqueue `value`, failing if all receivers have been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.queue.lock().unwrap();
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        state.items.push_back(value);
        drop(state);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().unwrap().senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            self.shared.ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Block until a value arrives or all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.queue.lock().unwrap();
        loop {
            if let Some(v) = state.items.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.ready.wait(state).unwrap();
        }
    }

    /// Block up to `timeout` for a value.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.queue.lock().unwrap();
        loop {
            if let Some(v) = state.items.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) = self
                .shared
                .ready
                .wait_timeout(state, deadline - now)
                .unwrap();
            state = guard;
            if res.timed_out() && state.items.is_empty() {
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.queue.lock().unwrap();
        if let Some(v) = state.items.pop_front() {
            Ok(v)
        } else if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().unwrap().receivers += 1;
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().unwrap();
        state.receivers -= 1;
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// All receivers were dropped; the unsent value is returned.
pub struct SendError<T>(pub T);

impl<T> SendError<T> {
    /// Recover the value that could not be sent.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// All senders were dropped and the queue is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Outcome of a failed [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Queue currently empty; senders remain.
    Empty,
    /// Queue empty and every sender dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Outcome of a failed [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Deadline passed with no message.
    Timeout,
    /// Queue empty and every sender dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        let t = std::thread::spawn(move || rx2.recv().unwrap());
        tx.send(99u64).unwrap();
        assert_eq!(t.join().unwrap(), 99);
    }
}
