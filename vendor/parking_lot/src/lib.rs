//! Offline stand-in for `parking_lot`, backed by `std::sync`
//! primitives.  Matches the parking_lot API shape the workspace uses:
//! `lock`/`read`/`write` return guards directly (no `Result`), and
//! poisoning is ignored — a panicked holder does not wedge the lock.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison from panicked holders.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Reader-writer lock whose `read`/`write` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire exclusive access, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }
}
