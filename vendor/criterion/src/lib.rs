//! Offline stand-in for `criterion`: the API shape the bench targets
//! use (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`).  Timing is plain wall-clock over a fixed small
//! iteration budget — enough to exercise and smoke-compare the
//! benches, with none of the statistical machinery.

use std::fmt;
use std::time::{Duration, Instant};

/// Number of timed iterations per benchmark (after one warm-up).
const MEASURE_ITERS: u32 = 10;

/// Re-export point for `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            _parent: self,
        }
    }
}

/// A named family of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in's iteration budget
    /// is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Run one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier for one parameterised benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a bare parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Passed to the measured closure; `iter` times its argument.
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Time `routine` over the fixed iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up pass, untimed.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = MEASURE_ITERS;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        let per = b.total / b.iters;
        println!("bench: {name:<60} {per:>12.3?}/iter");
    } else {
        println!("bench: {name:<60} (no measurement)");
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum_small", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(10);
        for n in [10u64, 100] {
            group.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        }
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }
}
