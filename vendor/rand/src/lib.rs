//! Offline stand-in for the `rand` crate: the trait surface the
//! GridFlow crates use ([`RngCore`], [`Rng`], [`SeedableRng`], and
//! [`seq::SliceRandom`]).  Distributions are uniform only; sampling is
//! deterministic given the generator state, which is all the
//! deterministic-simulation harness requires.

use std::ops::{Range, RangeInclusive};

/// The core generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }

    /// Draw a value of a supported type (`bool`, integers, `f64`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types drawable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty: $m:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}
standard_int!(u8: next_u32, u16: next_u32, u32: next_u32, u64: next_u64, usize: next_u64,
              i8: next_u32, i16: next_u32, i32: next_u32, i64: next_u64, isize: next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by widening multiply (Lemire-style
/// without rejection; the bias is ≤ span/2⁶⁴, irrelevant here and —
/// importantly — draw-count-stable for deterministic replay).
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: any draw is uniform.
                    return rng.next_u64() as $t;
                }
                let off = below(rng, span as u64);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng) as $t;
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}
float_range!(f32, f64);

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it through SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Slice sampling helpers (`rand::seq`).
pub mod seq {
    use super::{below, RngCore};

    /// Shuffling and choosing over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Uniformly pick a reference to one element.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[below(rng, self.len() as u64) as usize])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// `rand::rngs`: a deterministic small generator (SplitMix64-based).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small fast deterministic generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng {
                state: u64::from_le_bytes(seed),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17i64);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(5..=9u64);
            assert!((5..=9).contains(&u));
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_and_choose() {
        use crate::seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, orig);
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = vec![];
        assert!(empty.choose(&mut rng).is_none());
    }
}
