//! Offline stand-in for `serde_json`.
//!
//! Re-exports the JSON value model from the vendored `serde` crate and
//! provides the familiar entry points: [`json!`], [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`], [`from_value`].
//! Floats print via Rust's shortest-round-trip formatting, so values
//! survive `to_string` → `from_str` exactly (the `float_roundtrip`
//! behaviour of the real crate).

pub use serde::json_value::{Map, Number, Value};
pub use serde::Error;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_json_value().to_string())
}

/// Serialize to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = value.to_json_value();
    let mut out = String::new();
    serde::json_value::write_pretty_public(&mut out, &v, 0);
    Ok(out)
}

/// Serialize to a [`Value`].
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.to_json_value())
}

/// Deserialize from a [`Value`].
pub fn from_value<T: serde::de::DeserializeOwned>(value: Value) -> Result<T> {
    T::from_json_value(&value)
}

/// Parse a JSON document into any deserializable type.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T> {
    let v = serde::json_value::parse(s)?;
    T::from_json_value(&v)
}

/// Build a [`Value`] from JSON-like syntax, interpolating expressions.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Implementation muncher for [`json!`] (mirrors serde_json's).
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    //////////////////////////////////////////////////////////////////
    // Array munching: accumulate elements into [$($elems,)*].
    //////////////////////////////////////////////////////////////////

    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    // Next element is `null`/`true`/`false`/array/object literal.
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    // Next element is an expression followed by a comma.
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    // Last element, no trailing comma.
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    // Comma after the most recent element.
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////////////////////////////////////////////////////////////
    // Object munching: (object) (key-tokens) (value-tokens-left).
    //////////////////////////////////////////////////////////////////

    // Done.
    (@object $object:ident () () ()) => {};
    // Insert the current entry, then move on.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Current entry followed by unexpected token (error path: let it fail).
    (@object $object:ident [$($key:tt)+] ($value:expr) $unexpected:tt $($rest:tt)*) => {
        $crate::json_unexpected!($unexpected);
    };
    // Insert the last entry.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    // Value is `null`/`true`/`false`/array/object literal.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    // Value is an expression followed by a comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    // Value is the last expression.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Missing value (error paths).
    (@object $object:ident ($($key:tt)+) (:) $copy:tt) => {
        $crate::json_internal!();
    };
    (@object $object:ident ($($key:tt)+) () $copy:tt) => {
        $crate::json_internal!();
    };
    // Key munching: found the colon — not yet, keep shifting key tokens.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };
    (@object $object:ident ($($key:tt)*) () $copy:tt) => {};

    //////////////////////////////////////////////////////////////////
    // Entry points.
    //////////////////////////////////////////////////////////////////

    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        {
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            $crate::Value::Object(object)
        }
    };
    // Any other expression: serialize through the data model.
    ($other:expr) => {
        $crate::value_of(&$other)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_unexpected {
    () => {};
}

/// Convert any serializable value into a [`Value`] (used by [`json!`]).
#[doc(hidden)]
pub fn value_of<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_documents() {
        let n = 3u64;
        let v = json!({
            "a": 1,
            "b": [true, null, "x", n],
            "c": {"nested": {"k": format!("v{}", n)}},
        });
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"].as_array().unwrap().len(), 4);
        assert_eq!(v["c"]["nested"]["k"].as_str(), Some("v3"));
    }

    #[test]
    fn round_trip_compact() {
        let v = json!({"s": "he\"llo\n", "f": 1.5, "i": -2, "u": 18446744073709551615u64});
        let text = v.to_string();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_round_trip_exact() {
        for f in [259717646520.72122f64, 0.1, 1.0e-300, -3.5, 1e15 + 1.0] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "{text}");
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({"a": [1, 2], "b": {"c": "d"}});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
