//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls for the vendored `serde`
//! crate's JSON-value data model.  The input grammar is the subset the
//! GridFlow crates use: structs with named fields (possibly generic),
//! unit structs, and enums whose variants are unit, tuple, or struct
//! shaped.  One field attribute is honored:
//! `#[serde(skip_serializing_if = "Option::is_none")]` omits the field
//! from the serialized object when its value serializes to `null`
//! (deserialization already treats a missing `Option` field as `None`
//! via `__missing_field_fallback`, so the round trip is lossless).
//! Other `#[serde(...)]` attributes are not supported — the codebase
//! uses none.  Parsing is done directly over the proc-macro token
//! stream (no `syn`/`quote` available offline); generated code is
//! assembled as text and reparsed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------

enum Shape {
    /// Named-field struct (fields in order).
    Struct(Vec<Field>),
    /// Tuple struct (arity).
    TupleStruct(usize),
    /// Unit struct.
    UnitStruct,
    /// Enum: `(variant name, variant shape)`.
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// One named field plus the serialization options read off its attributes.
struct Field {
    name: String,
    /// `#[serde(skip_serializing_if = "...")]` was present: omit the
    /// field from the object when its value serializes to `null`.
    skip_if_none: bool,
}

struct Item {
    name: String,
    /// Type parameter names, e.g. `["E"]` for `Event<E>`.
    type_params: Vec<String>,
    shape: Shape,
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, got {other}"),
    };
    i += 1;

    let type_params = parse_generics(&tokens, &mut i);

    // Skip a `where` clause if present (none expected in this codebase).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis =>
            {
                break
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_fields(g.stream()))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, got {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };

    Item {
        name,
        type_params,
        shape,
    }
}

/// Advance past leading attributes (`#[...]`) and a visibility marker.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // `#`
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1; // `[...]`
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `(crate)` etc.
                }
            }
            _ => break,
        }
    }
}

/// Advance past a field's attributes and visibility like
/// [`skip_attrs_and_vis`], but report whether any attribute carried a
/// `serde(skip_serializing_if = ...)` option.
fn field_attrs_skip_if_none(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip_if_none = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // `#`
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Bracket {
                        let body = g.stream().to_string();
                        if body.starts_with("serde") && body.contains("skip_serializing_if") {
                            skip_if_none = true;
                        }
                        *i += 1; // `[...]`
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `(crate)` etc.
                }
            }
            _ => break,
        }
    }
    skip_if_none
}

/// Parse `<...>` after the type name, returning type-parameter names.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    if !matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return params;
    }
    *i += 1;
    let mut depth = 1usize;
    let mut at_param_start = true;
    let mut in_bounds = false;
    while *i < tokens.len() && depth > 0 {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                at_param_start = true;
                in_bounds = false;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => in_bounds = true,
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                // Lifetime start: the following ident is not a type param.
                *i += 1;
                at_param_start = false;
            }
            TokenTree::Ident(id) if depth == 1 && at_param_start && !in_bounds => {
                let s = id.to_string();
                if s != "const" {
                    params.push(s);
                }
                at_param_start = false;
            }
            _ => {}
        }
        *i += 1;
    }
    params
}

/// Fields of a named-field body (struct or struct variant), with any
/// recognized `#[serde(...)]` options applied.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields: Vec<Field> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let skip_if_none = field_attrs_skip_if_none(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                fields.push(Field {
                    name: id.to_string(),
                    skip_if_none,
                });
                i += 1;
                // `:` then the type, up to a top-level comma.
                assert!(
                    matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
                    "expected `:` after field `{}`",
                    fields.last().unwrap().name
                );
                i += 1;
                let mut angle = 0isize;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            None => break,
            other => panic!("unexpected token in fields: {other:?}"),
        }
    }
    fields
}

/// Arity of a parenthesised field list (tuple struct / tuple variant).
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle = 0isize;
    let mut trailing_comma = false;
    for t in &tokens {
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

/// Variants of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separator.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push((name, shape));
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

/// `impl<...> Trait for Name<...>` header pieces for a bounded trait.
fn impl_header(item: &Item, bound: &str) -> (String, String) {
    if item.type_params.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let params = item
            .type_params
            .iter()
            .map(|p| format!("{p}: {bound}"))
            .collect::<Vec<_>>()
            .join(", ");
        let args = item.type_params.join(", ");
        (format!("<{params}>"), format!("{}<{}>", item.name, args))
    }
}

/// Generated statement inserting one field into map `map`, honoring
/// `skip_if_none`: a flagged field whose value serializes to `null` is
/// left out of the object entirely (real-serde
/// `skip_serializing_if = "Option::is_none"` semantics).
fn field_insert(map: &str, f: &Field, expr: &str) -> String {
    let name = &f.name;
    if f.skip_if_none {
        format!(
            "{{ let __fv = ::serde::Serialize::to_json_value({expr});\n\
             if !matches!(__fv, ::serde::Value::Null) {{\n\
             {map}.insert(\"{name}\".to_string(), __fv);\n}} }}\n"
        )
    } else {
        format!(
            "{map}.insert(\"{name}\".to_string(), ::serde::Serialize::to_json_value({expr}));\n"
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let (generics, ty) = impl_header(item, "::serde::Serialize");
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut s = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&field_insert("__m", f, &format!("&self.{}", f.name)));
            }
            s.push_str("::serde::Value::Object(__m)");
            s
        }
        Shape::TupleStruct(0) | Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::TupleStruct(1) => "::serde::Serialize::to_json_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items = (0..*n)
                .map(|k| format!("::serde::Serialize::to_json_value(&self.{k})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Array(vec![{items}])")
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (v, shape) in variants {
                match shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds = (0..*n)
                            .map(|k| format!("__f{k}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_json_value(__f0)".to_string()
                        } else {
                            let items = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_json_value(__f{k})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!("::serde::Value::Array(vec![{items}])")
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => {{\n\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(\"{v}\".to_string(), {inner});\n\
                             ::serde::Value::Object(__m)\n\
                             }},\n"
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut inner = String::from("let mut __inner = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&field_insert("__inner", f, &f.name));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                             {inner}\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(\"{v}\".to_string(), ::serde::Value::Object(__inner));\n\
                             ::serde::Value::Object(__m)\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Serialize for {ty} {{\n\
         fn to_json_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (generics, ty) = impl_header(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut s = format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(\
                 format!(\"expected object for struct {name}, got {{__v:?}}\")))?;\n\
                 ::core::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                let f = &f.name;
                s.push_str(&format!(
                    "{f}: ::serde::__field(__obj, \"{f}\", \"{name}\")?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        Shape::TupleStruct(0) | Shape::UnitStruct => {
            format!("{{ let _ = __v; ::core::result::Result::Ok({name}) }}")
        }
        Shape::TupleStruct(1) => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::from_json_value(__v)?))"
        ),
        Shape::TupleStruct(n) => {
            let items = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_json_value(&__items[{k}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let __items = ::serde::__tuple_variant(__v, \"{name}\", \"{name}\", {n})?;\n\
                 ::core::result::Result::Ok({name}({items}))"
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (v, shape) in variants {
                match shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{v}\" => return ::core::result::Result::Ok({name}::{v}),\n"
                        ));
                        // Also accept the `{"Variant": null}` form.
                        data_arms.push_str(&format!(
                            "\"{v}\" => ::core::result::Result::Ok({name}::{v}),\n"
                        ));
                    }
                    VariantShape::Tuple(1) => data_arms.push_str(&format!(
                        "\"{v}\" => ::core::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_json_value(__inner)?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let items = (0..*n)
                            .map(|k| {
                                format!("::serde::Deserialize::from_json_value(&__items[{k}])?")
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let __items = ::serde::__tuple_variant(__inner, \"{name}\", \"{v}\", {n})?;\n\
                             ::core::result::Result::Ok({name}::{v}({items}))\n\
                             }},\n"
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let mut init = String::new();
                        for f in fields {
                            let f = &f.name;
                            init.push_str(&format!(
                                "{f}: ::serde::__field(__o, \"{f}\", \"{name}::{v}\")?,\n"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let __o = __inner.as_object().ok_or_else(|| ::serde::Error::custom(\
                             format!(\"expected object for variant {name}::{v}, got {{__inner:?}}\")))?;\n\
                             ::core::result::Result::Ok({name}::{v} {{\n{init}}})\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "if let ::core::option::Option::Some(__s) = __v.as_str() {{\n\
                 match __s {{\n{unit_arms}\
                 __other => return ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown unit variant `{{__other}}` of {name}\"))),\n}}\n}}\n\
                 let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(\
                 format!(\"expected variant of {name}, got {{__v:?}}\")))?;\n\
                 let (__k, __inner) = match __obj.iter().next() {{\n\
                 ::core::option::Option::Some(kv) if __obj.len() == 1 => kv,\n\
                 _ => return ::core::result::Result::Err(::serde::Error::custom(\
                 \"expected single-key variant object for {name}\")),\n}};\n\
                 match __k.as_str() {{\n{data_arms}\
                 __other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Deserialize for {ty} {{\n\
         fn from_json_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n\
         }}\n"
    )
}
