//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal serialization framework under the same crate name.
//! Instead of serde's visitor-based data model, everything serializes
//! through a JSON [`Value`] tree (defined in [`json_value`] and
//! re-exported by the vendored `serde_json`).  The public surface is the
//! subset the GridFlow crates use: the [`Serialize`] / [`Deserialize`]
//! traits, `de::DeserializeOwned`, and the derive macros re-exported
//! from `serde_derive`.

pub mod json_value;

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

pub use json_value::{Map, Number, Value};
pub use serde_derive::{Deserialize, Serialize};

/// Serialization/deserialization error: a message, as in `serde_json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into the JSON data model.
pub trait Serialize {
    /// Serialize `self` into a [`Value`].
    fn to_json_value(&self) -> Value;
}

/// A type that can be reconstructed from the JSON data model.
pub trait Deserialize: Sized {
    /// Deserialize from a [`Value`].
    fn from_json_value(v: &Value) -> Result<Self, Error>;

    /// Value to use when a struct field is absent (only `Option` has
    /// one); mirrors serde's implicit-`None` behaviour for options.
    #[doc(hidden)]
    fn __missing_field_fallback() -> Option<Self> {
        None
    }
}

/// `serde::de`: the owned-deserialization marker trait.
pub mod de {
    /// Marker for types deserializable without borrowing the input; in
    /// this vendored model every [`Deserialize`](crate::Deserialize) is.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// `serde::ser`, for path compatibility.
pub mod ser {
    pub use crate::Serialize;
}

// ---------------------------------------------------------------------
// Derive-macro support helpers (referenced by generated code).
// ---------------------------------------------------------------------

/// Look up a struct field during deserialization.
#[doc(hidden)]
pub fn __field<T: Deserialize>(
    obj: &Map,
    name: &'static str,
    ty: &'static str,
) -> Result<T, Error> {
    match obj.get(name) {
        Some(v) => T::from_json_value(v)
            .map_err(|e| Error::custom(format!("field `{name}` of `{ty}`: {e}"))),
        None => T::__missing_field_fallback()
            .ok_or_else(|| Error::custom(format!("missing field `{name}` of `{ty}`"))),
    }
}

/// Extract the tuple-variant payload list for an externally tagged enum.
#[doc(hidden)]
pub fn __tuple_variant<'v>(
    v: &'v Value,
    ty: &'static str,
    variant: &'static str,
    arity: usize,
) -> Result<&'v [Value], Error> {
    match v {
        Value::Array(items) if items.len() == arity => Ok(items),
        other => Err(Error::custom(format!(
            "variant `{ty}::{variant}` expects {arity} elements, got {other:?}"
        ))),
    }
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}
signed_impl!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!("expected unsigned integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}
unsigned_impl!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}
impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}
impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_json_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected char, got {v:?}")))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for () {
    fn to_json_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::custom(format!("expected null, got {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------
// Forwarding / container impls
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(t) => t.to_json_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
    fn __missing_field_fallback() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_json_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_json_value(v).map(|items| items.into_iter().collect())
    }
}

impl<T: Serialize + std::hash::Hash + Eq> Serialize for HashSet<T> {
    fn to_json_value(&self) -> Value {
        // Sort the rendering for determinism across runs.
        let mut items: Vec<Value> = self.iter().map(Serialize::to_json_value).collect();
        items.sort_by(json_value::value_order);
        Value::Array(items)
    }
}
impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for HashSet<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_json_value(v).map(|items| items.into_iter().collect())
    }
}

/// Map keys representable as JSON object keys.
pub trait MapKey: Sized {
    /// Render the key as an object key.
    fn to_map_key(&self) -> String;
    /// Parse the key back from an object key.
    fn from_map_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_map_key(&self) -> String {
        self.clone()
    }
    fn from_map_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_owned())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_map_key(&self) -> String {
                self.to_string()
            }
            fn from_map_key(s: &str) -> Result<Self, Error> {
                s.parse()
                    .map_err(|_| Error::custom(format!("invalid integer map key {s:?}")))
            }
        }
    )*};
}
int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_map_key(), v.to_json_value()))
                .collect(),
        )
    }
}
impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(obj) => obj
                .iter()
                .map(|(k, v)| Ok((K::from_map_key(k)?, V::from_json_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<K: MapKey + std::hash::Hash + Eq, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json_value(&self) -> Value {
        // BTreeMap intermediate: deterministic key order.
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_map_key(), v.to_json_value()))
                .collect(),
        )
    }
}
impl<K: MapKey + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(obj) => obj
                .iter()
                .map(|(k, v)| Ok((K::from_map_key(k)?, V::from_json_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! tuple_impl {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                const ARITY: usize = [$($idx),+].len();
                match v {
                    Value::Array(items) if items.len() == ARITY => {
                        Ok(($($name::from_json_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected {ARITY}-tuple, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
tuple_impl! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
