//! The JSON value tree backing the vendored serde data model, plus the
//! JSON text writer and parser (`serde_json` re-exports these).

use crate::Error;
use std::collections::BTreeMap;
use std::fmt;

/// JSON object representation: ordered map for deterministic output.
pub type Map = BTreeMap<String, Value>;

/// A JSON number: unsigned, signed-negative, or floating point.
#[derive(Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// From a signed integer.
    pub fn from_i64(n: i64) -> Self {
        if n >= 0 {
            Number::PosInt(n as u64)
        } else {
            Number::NegInt(n)
        }
    }

    /// From an unsigned integer.
    pub fn from_u64(n: u64) -> Self {
        Number::PosInt(n)
    }

    /// From a float.
    pub fn from_f64(f: f64) -> Self {
        Number::Float(f)
    }

    /// As `f64` (always possible).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// As `i64`, when in range and integral.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }

    /// As `u64`, when non-negative and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) | Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            _ => false,
        }
    }
}

/// Shared Display/Debug body for [`Number`]: JSON text.  Non-finite
/// floats render as `null` (JSON cannot represent them), finite floats
/// via Rust's shortest-round-trip formatting; a `.0` suffix is added to
/// integral floats so the category survives a reparse.
macro_rules! fmt_number {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match *self {
                Number::PosInt(n) => write!(f, "{n}"),
                Number::NegInt(n) => write!(f, "{n}"),
                Number::Float(x) if !x.is_finite() => f.write_str("null"),
                Number::Float(x) => {
                    if x == x.trunc() && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                }
            }
        }
    };
}

impl fmt::Display for Number {
    fmt_number!();
}

impl fmt::Debug for Number {
    fmt_number!();
}

/// A JSON document.
#[derive(Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Is this an object?
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Is this an array?
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Is this a string?
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// Is this a number?
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// As bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As `f64` (any number).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// As array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As mutable array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// As mutable object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Index into an object (`&str` key) or array (`usize` index).
    pub fn get<I: Index>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }
}

/// Ordering over arbitrary values, used only to render hash sets
/// deterministically: by type tag, then by JSON text.
pub fn value_order(a: &Value, b: &Value) -> std::cmp::Ordering {
    fn tag(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Number(_) => 2,
            Value::String(_) => 3,
            Value::Array(_) => 4,
            Value::Object(_) => 5,
        }
    }
    tag(a)
        .cmp(&tag(b))
        .then_with(|| a.to_string().cmp(&b.to_string()))
}

/// Index types usable with [`Value::get`] and `value[...]`.
pub trait Index {
    /// Resolve the index against a value.
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
    /// Resolve for mutation, auto-vivifying as serde_json does:
    /// string keys turn `Null` into an object and insert missing
    /// entries; array indices must already be in bounds.
    fn index_into_mut<'v>(&self, v: &'v mut Value) -> &'v mut Value;
}

fn object_entry<'v>(v: &'v mut Value, key: &str) -> &'v mut Value {
    if let Value::Null = v {
        *v = Value::Object(Map::new());
    }
    match v {
        Value::Object(m) => m.entry(key.to_owned()).or_insert(Value::Null),
        other => panic!("cannot index non-object value with string \"{key}\": {other}"),
    }
}

impl Index for &str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object().and_then(|m| m.get(*self))
    }
    fn index_into_mut<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        object_entry(v, self)
    }
}

impl Index for String {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object().and_then(|m| m.get(self.as_str()))
    }
    fn index_into_mut<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        object_entry(v, self)
    }
}

impl Index for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_array().and_then(|a| a.get(*self))
    }
    fn index_into_mut<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        match v {
            Value::Array(a) => {
                let len = a.len();
                a.get_mut(*self)
                    .unwrap_or_else(|| panic!("index {self} out of bounds (len {len})"))
            }
            other => panic!("cannot index non-array value with {self}: {other}"),
        }
    }
}

impl<I: Index> std::ops::Index<I> for Value {
    type Output = Value;
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

impl<I: Index> std::ops::IndexMut<I> for Value {
    fn index_mut(&mut self, index: I) -> &mut Value {
        index.index_into_mut(self)
    }
}

// Convenience comparisons against literals, as serde_json provides.
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}
impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}
impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

macro_rules! from_impl {
    ($($t:ty => $body:expr),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                #[allow(clippy::redundant_closure_call)]
                ($body)(v)
            }
        }
    )*};
}
from_impl! {
    bool => Value::Bool,
    i8 => |v: i8| Value::Number(Number::from_i64(v as i64)),
    i16 => |v: i16| Value::Number(Number::from_i64(v as i64)),
    i32 => |v: i32| Value::Number(Number::from_i64(v as i64)),
    i64 => |v: i64| Value::Number(Number::from_i64(v)),
    isize => |v: isize| Value::Number(Number::from_i64(v as i64)),
    u8 => |v: u8| Value::Number(Number::from_u64(v as u64)),
    u16 => |v: u16| Value::Number(Number::from_u64(v as u64)),
    u32 => |v: u32| Value::Number(Number::from_u64(v as u64)),
    u64 => |v: u64| Value::Number(Number::from_u64(v)),
    usize => |v: usize| Value::Number(Number::from_u64(v as u64)),
    f32 => |v: f32| Value::Number(Number::from_f64(v as f64)),
    f64 => |v: f64| Value::Number(Number::from_f64(v)),
    &str => |v: &str| Value::String(v.to_owned()),
    String => Value::String,
    Map => Value::Object,
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, item);
            }
            out.push('}');
        }
    }
}

pub(crate) fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const STEP: usize = 2;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(out, item, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, item, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Public pretty-writer entry point for the vendored `serde_json`.
pub fn write_pretty_public(out: &mut String, v: &Value, indent: usize) {
    write_pretty(out, v, indent);
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_compact(&mut s, self);
        f.write_str(&s)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// Parse a JSON document.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at offset {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid \\u escape"))?,
                                );
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err("invalid number"))
    }
}
