//! Offline stand-in for `proptest`: deterministic property-based
//! testing covering the strategy vocabulary the workspace uses —
//! ranges, regex-ish string patterns, `Just`, `any`, tuples,
//! `prop_map`, `prop_recursive`, `prop_oneof!`, and
//! `prop::collection::{vec, btree_set}` — driven by the `proptest!`
//! macro with `ProptestConfig::with_cases`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! seed instead, which reproduces it exactly under the deterministic
//! ChaCha stream), and `proptest-regressions` files are not consulted.

use std::collections::BTreeSet;
use std::ops::Range;
use std::rc::Rc;

use rand::{Rng, SeedableRng};

/// The deterministic generator handed to strategies.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Outcome carrier for a single property-test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's preconditions were not met (`prop_assume!`); the
    /// case is discarded without counting against the budget.
    Reject(String),
    /// A property assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of values of one type.
pub trait Strategy: 'static {
    /// The value type this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Erase the concrete strategy type.
    fn boxed(self) -> Sampler<Self::Value>
    where
        Self: Sized,
    {
        let s = self;
        Sampler::new(move |rng| s.sample(rng))
    }

    /// Transform produced values.
    fn prop_map<U, F>(self, f: F) -> Sampler<U>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        let s = self;
        Sampler::new(move |rng| f(s.sample(rng)))
    }

    /// Build a recursive strategy: `recurse` receives a strategy for
    /// sub-values and returns the composite case.  Nesting is bounded
    /// by `depth`; `_desired_size`/`_expected_branch` are accepted for
    /// upstream signature compatibility.
    fn prop_recursive<F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> Sampler<Self::Value>
    where
        Self: Sized,
        F: Fn(Sampler<Self::Value>) -> Sampler<Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(level);
            let leaf_arm = leaf.clone();
            // Lean toward leaves so expected size stays small even at
            // full nesting depth.
            level = Sampler::new(move |rng| {
                if rng.gen_bool(0.5) {
                    leaf_arm.sample(rng)
                } else {
                    deeper.sample(rng)
                }
            });
        }
        level
    }
}

/// Type-erased strategy: a shared sampling closure.
pub struct Sampler<T> {
    f: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Sampler<T> {
    /// Wrap a sampling closure.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        Sampler { f: Rc::new(f) }
    }
}

impl<T> Clone for Sampler<T> {
    fn clone(&self) -> Self {
        Sampler { f: self.f.clone() }
    }
}

impl<T: 'static> Strategy for Sampler<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Uniform choice among equally-weighted alternatives
/// (the engine behind `prop_oneof!`).
pub fn union<T: 'static>(arms: Vec<Sampler<T>>) -> Sampler<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    Sampler::new(move |rng| {
        let i = rng.gen_range(0..arms.len());
        arms[i].sample(rng)
    })
}

/// Always produce a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized + 'static {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u32(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, moderate magnitude: ample for property inputs
        // without dragging NaN/Inf handling into every test.
        rng.gen_range(-1.0e12..1.0e12)
    }
}

/// The canonical strategy for `T` — `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Sampler<T> {
    Sampler::new(|rng| T::arbitrary(rng))
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// `&str` literals act as regex-ish string strategies: literal chars,
/// `[...]` classes (ranges and literals; trailing `-` literal), `.`
/// (any printable ASCII), and `{n}`/`{m,n}` quantifiers on the
/// preceding atom.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

/// One pattern atom: a drawable character set plus repetition bounds.
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_class(chars: &[char], i: &mut usize) -> Vec<char> {
    // `chars[*i]` is the char after '['.
    let mut set = Vec::new();
    while *i < chars.len() && chars[*i] != ']' {
        let c = chars[*i];
        if chars.get(*i + 1) == Some(&'-') && *i + 2 < chars.len() && chars[*i + 2] != ']' {
            let hi = chars[*i + 2];
            assert!(c <= hi, "bad range {c}-{hi} in pattern class");
            for ch in c..=hi {
                set.push(ch);
            }
            *i += 3;
        } else {
            set.push(c);
            *i += 1;
        }
    }
    assert!(*i < chars.len(), "unterminated [class] in pattern");
    *i += 1; // past ']'
    set
}

fn parse_quantifier(chars: &[char], i: &mut usize) -> (usize, usize) {
    if chars.get(*i) != Some(&'{') {
        return (1, 1);
    }
    *i += 1;
    let mut first = String::new();
    while chars.get(*i).is_some_and(|c| c.is_ascii_digit()) {
        first.push(chars[*i]);
        *i += 1;
    }
    let min: usize = first.parse().expect("bad {quantifier} in pattern");
    let max = if chars.get(*i) == Some(&',') {
        *i += 1;
        let mut second = String::new();
        while chars.get(*i).is_some_and(|c| c.is_ascii_digit()) {
            second.push(chars[*i]);
            *i += 1;
        }
        second.parse().expect("bad {m,n} quantifier in pattern")
    } else {
        min
    };
    assert_eq!(chars.get(*i), Some(&'}'), "unterminated quantifier");
    *i += 1;
    (min, max)
}

fn parse_atoms(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                i += 1;
                parse_class(&chars, &mut i)
            }
            '.' => {
                i += 1;
                (' '..='~').collect()
            }
            '\\' => {
                i += 1;
                let c = chars.get(i).copied().expect("dangling escape");
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i);
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse_atoms(pattern) {
        let n = rng.gen_range(atom.min..=atom.max);
        for _ in 0..n {
            out.push(atom.chars[rng.gen_range(0..atom.chars.len())]);
        }
    }
    out
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4),
    (A 0, B 1, C 2, D 3, E 4, F 5),
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6),
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7),
);

/// Collection strategies (`prop::collection::...`).
pub mod collection {
    use super::*;

    /// Element-count specifier: an exact `usize` or a `Range<usize>`.
    pub trait SizeRange: Clone + 'static {
        /// Pick a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
        /// Largest admissible length.
        fn upper(&self) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
        fn upper(&self) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
        fn upper(&self) -> usize {
            self.end.saturating_sub(1)
        }
    }

    /// `Vec` of independently sampled elements.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> Sampler<Vec<S::Value>>
    where
        S::Value: 'static,
    {
        Sampler::new(move |rng| {
            let n = size.pick(rng);
            (0..n).map(|_| element.sample(rng)).collect()
        })
    }

    /// `BTreeSet` of sampled elements; duplicates are retried a
    /// bounded number of times, so the set may come up short of the
    /// picked size when the element domain is narrow.
    pub fn btree_set<S: Strategy>(element: S, size: impl SizeRange) -> Sampler<BTreeSet<S::Value>>
    where
        S::Value: Ord + 'static,
    {
        Sampler::new(move |rng| {
            let target = size.pick(rng);
            let mut set = BTreeSet::new();
            let mut tries = 0usize;
            while set.len() < target && tries < target * 20 + 50 {
                set.insert(element.sample(rng));
                tries += 1;
            }
            set
        })
    }
}

/// `Option` strategies (`prop::option::...`).
pub mod option {
    use super::*;

    /// Sample `None` about a quarter of the time, `Some(inner)`
    /// otherwise (upstream's default weighting).
    pub fn of<S: Strategy>(inner: S) -> Sampler<Option<S::Value>>
    where
        S::Value: 'static,
    {
        Sampler::new(move |rng| {
            if rng.gen_range(0..4u8) == 0 {
                None
            } else {
                Some(inner.sample(rng))
            }
        })
    }
}

/// What the `proptest!` prelude imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Sampler, Strategy, TestCaseError,
    };

    /// `prop::...` namespace (upstream exposes the crate root here).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Stable per-property base seed: FNV-1a of the test path, overridable
/// through `PROPTEST_SEED` for replay.
pub fn base_seed(name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse() {
            return v;
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drive one property through `config.cases` accepted cases.
pub fn run_property(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let base = base_seed(name);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u64;
    while accepted < config.cases {
        let seed = base.wrapping_add(attempt);
        attempt += 1;
        let mut rng = TestRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.cases * 10 + 100,
                    "property `{name}`: too many rejected cases ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => panic!(
                "property `{name}` failed at case #{accepted} \
                 (reproduce with PROPTEST_SEED={base}): {msg}"
            ),
        }
    }
}

/// Define property tests.  Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr;) => {};
    (@impl $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $(let $arg = $strat;)*
            #[allow(unused_variables, unused_mut)]
            let mut __case = |__rng: &mut $crate::TestRng|
                -> ::std::result::Result<(), $crate::TestCaseError> {
                $(let $arg = $crate::Strategy::sample(&$arg, __rng);)*
                $body
                ::std::result::Result::Ok(())
            };
            $crate::run_property(&__config, concat!(module_path!(), "::", stringify!($name)), __case);
        }
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Property assertion; failure aborts only the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

/// Inequality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn pattern_strategies_match_shape() {
        let mut rng = crate::TestRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = crate::Strategy::sample(&"D[0-9]{1,3}", &mut rng);
            assert!(s.starts_with('D') && s.len() >= 2 && s.len() <= 4, "{s}");
            assert!(s[1..].chars().all(|c| c.is_ascii_digit()), "{s}");
            let t = crate::Strategy::sample(&"[A-Z][a-z0-9]{0,4}", &mut rng);
            assert!(t.chars().next().unwrap().is_ascii_uppercase(), "{t}");
            assert!(t.len() <= 5, "{t}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_collections(n in 1usize..5, xs in prop::collection::vec(0i64..10, 1..12)) {
            prop_assert!((1..5).contains(&n));
            prop_assert!(!xs.is_empty() && xs.len() < 12);
            prop_assert!(xs.iter().all(|&x| (0..10).contains(&x)));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            Just(String::from("fixed")),
            "[a-z]{1,6}".prop_map(|s| s),
            (0u64..10, 0u64..10).prop_map(|(a, b)| format!("{a}{b}")),
        ]) {
            prop_assert!(!v.is_empty());
        }

        #[test]
        fn recursion_is_bounded(depth in nested()) {
            prop_assert!(depth <= 3, "depth {depth}");
        }

        #[test]
        fn assume_discards(x in 0i64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    /// Recursive strategy measuring its own nesting depth.
    fn nested() -> Sampler<u32> {
        Just(0u32)
            .boxed()
            .prop_recursive(3, 16, 2, |inner| inner.prop_map(|d| d + 1))
    }
}
