//! Offline stand-in for `rand_chacha`: a genuine ChaCha keystream
//! generator (8/12/20-round variants) behind the vendored `rand`
//! traits.  The word stream is not bit-compatible with the upstream
//! crate, but it is a real ChaCha permutation: high-quality,
//! platform-independent, and byte-identical for identical seeds — the
//! property the deterministic-simulation harness depends on.

use rand::{RngCore, SeedableRng};

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Core ChaCha block function with a configurable round count.
fn chacha_block(key: &[u32; 8], counter: u64, rounds: u32) -> [u32; 16] {
    let mut state: [u32; 16] = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let initial = state;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (s, i) in state.iter_mut().zip(initial.iter()) {
        *s = s.wrapping_add(*i);
    }
    state
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            block: [u32; 16],
            /// Next unconsumed word in `block` (16 = exhausted).
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                self.block = chacha_block(&self.key, self.counter, $rounds);
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }

            #[inline]
            fn next_word(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let w = self.block[self.index];
                self.index += 1;
                w
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.next_word()
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_word() as u64;
                let hi = self.next_word() as u64;
                lo | (hi << 32)
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *k = u32::from_le_bytes(chunk.try_into().unwrap());
                }
                $name {
                    key,
                    counter: 0,
                    block: [0; 16],
                    index: 16,
                }
            }
        }

        impl PartialEq for $name {
            fn eq(&self, other: &Self) -> bool {
                self.key == other.key && self.counter == other.counter && self.index == other.index
            }
        }
        impl Eq for $name {}
    };
}

chacha_rng!(ChaCha8Rng, 8, "ChaCha with 8 rounds.");
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(17);
        let mut b = ChaCha8Rng::seed_from_u64(17);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = ChaCha8Rng::seed_from_u64(18);
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn clone_resumes_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        let va: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..40).map(|_| b.next_u32()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn uniformish_distribution() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for b in buckets {
            assert!((800..1200).contains(&b), "bucket {b}");
        }
    }
}
