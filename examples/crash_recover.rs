//! Crash and recover: a fleet of dinner cases is journalled into a
//! file-backed store, killed mid-run, and recovered from disk by a
//! fresh process image — the recovered run finishes the fleet and the
//! merged event log is byte-identical to an uninterrupted run.
//!
//! ```sh
//! cargo run --example crash_recover            # default seed 7, kill at ticks/2
//! cargo run --example crash_recover -- 11 3    # seed 11, kill at tick 3
//! ```

use gridflow_engine::PolicySpec;
use gridflow_harness::workload::{dinner_workload, Workload};
use gridflow_harness::{FaultPlan, MultiCaseScenario};
use gridflow_store::{merged_jsonl, FileStore, Store};
use std::sync::{Arc, Mutex};

fn fleet<'a>(plan: &'a FaultPlan, wl: &'a Workload) -> MultiCaseScenario<'a> {
    MultiCaseScenario::new(plan, wl, 4)
        .max_in_flight(2)
        .policy(PolicySpec::Fifo)
        .traced()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);
    let kill_arg: Option<u64> = args.next().and_then(|s| s.parse().ok());

    let plan = FaultPlan::seeded(seed).failing_activities(0.2);
    let wl = dinner_workload();

    // --- The uninterrupted truth --------------------------------------
    let baseline = fleet(&plan, &wl).run();
    let truth = baseline.trace.as_ref().expect("traced").to_jsonl();
    let kill = kill_arg.unwrap_or(baseline.engine.ticks / 2);
    println!(
        "baseline: {} cases over {} ticks ({} events); killing at tick {kill}",
        baseline.engine.cases.len(),
        baseline.engine.ticks,
        truth.lines().count(),
    );

    // --- Crash: journal to disk, die at the top of `kill` -------------
    let dir = std::env::temp_dir().join(format!("gridflow-crash-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create store dir");
    {
        let (store, _) = FileStore::open(&dir, 64).expect("open store");
        let store: Arc<Mutex<dyn Store>> = Arc::new(Mutex::new(store));
        let crashed = fleet(&plan, &wl)
            .store(store.clone(), 2)
            .kill_at(kill)
            .run();
        assert!(crashed.engine.killed, "the kill tick must precede the end");
        let guard = store.lock().unwrap();
        println!(
            "crashed:  {} events and {} snapshot(s) survive on disk",
            guard.next_seq(),
            guard.snapshot_count(),
        );
    } // every handle dropped: the "process" is gone

    // --- Recover: a fresh process image reopens the directory ---------
    let (store, report) = FileStore::open(&dir, 64).expect("reopen store");
    assert!(!report.truncated, "a kill is clean: no torn tail");
    let store: Arc<Mutex<dyn Store>> = Arc::new(Mutex::new(store));
    let recovered = fleet(&plan, &wl)
        .store(store.clone(), 2)
        .recover()
        .expect("recovery");
    assert!(!recovered.engine.killed);
    assert_eq!(recovered.engine.cases, baseline.engine.cases);
    println!(
        "recovered: {} cases over {} ticks",
        recovered.engine.cases.len(),
        recovered.engine.ticks,
    );

    // The store now holds the whole truth, byte-identical to the
    // uninterrupted run.
    let stored = merged_jsonl(&store.lock().unwrap().replay_from(0).expect("replay"));
    assert_eq!(stored, truth);
    println!("stored log byte-identical to the uninterrupted run ✓");
    let _ = std::fs::remove_dir_all(&dir);
}
