//! Checkpointing long-lasting tasks (§1: "Some of the computational
//! tasks are long lasting and require checkpointing"): run the virus
//! workflow with checkpoints, archive one with the persistent-storage
//! service, simulate a coordinator crash, and resume on a fresh
//! coordinator.
//!
//! ```sh
//! cargo run --example checkpoint_resume
//! ```

use gridflow::casestudy;
use gridflow::prelude::*;
use gridflow_services::storage::StorageService;
use gridflow_services::EnactmentCheckpoint;

fn main() {
    let graph = casestudy::process_description();
    let case = casestudy::case_description();
    let config = EnactmentConfig {
        checkpoint_every: Some(4),
        ..EnactmentConfig::default()
    };

    // --- First coordinator: runs, checkpointing as it goes -------------
    let mut world = casestudy::virtual_lab_world(0, 11);
    let report = Enactor::builder()
        .config(config.clone())
        .build()
        .enact(&mut world, &graph, &case);
    assert!(report.success);
    println!(
        "first run: {} executions, {} checkpoints captured",
        report.executions.len(),
        report.checkpoints.len()
    );

    // Archive the mid-run checkpoint (after 8 executions) as the storage
    // service would.
    let mid = report.checkpoints[1].clone();
    let mut storage = StorageService::new();
    let version = storage.put("checkpoint/3DSD", serde_json::to_value(&mid).unwrap());
    println!(
        "archived checkpoint v{version}: {} executions done, resolution so far: {:?}",
        mid.executions.len(),
        mid.state.property("D12", "Value")
    );

    // --- Crash!  A new coordinator picks the task up -------------------
    let doc = storage.get("checkpoint/3DSD").unwrap();
    let restored: EnactmentCheckpoint = serde_json::from_value(doc.body.clone()).unwrap();
    let mut fresh_world = casestudy::virtual_lab_world(0, 11);
    let resumed =
        Enactor::builder()
            .config(config)
            .build()
            .resume(&mut fresh_world, restored, &case);
    assert!(resumed.success, "abort: {:?}", resumed.abort_reason);
    println!(
        "resumed run: {} total executions ({} new after the checkpoint)",
        resumed.executions.len(),
        resumed.executions.len() - mid.executions.len()
    );
    let resolution = resumed
        .final_state
        .property("D12", "Value")
        .and_then(|v| v.as_float())
        .unwrap();
    println!(
        "final resolution: {resolution:.1} Å (target ≤ {})",
        casestudy::TARGET_RESOLUTION
    );

    // The resumed run converges to the same final data state as the
    // uninterrupted one.
    assert_eq!(resumed.final_state, report.final_state);
    println!("final state identical to the uninterrupted run ✓");
}
