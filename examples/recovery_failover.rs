//! Recovery failover: the same degraded scenario enacted twice — once
//! with recovery disabled (it fails) and once under the standard
//! escalation ladder (retry with backoff → lease-driven failover →
//! circuit-breaker quarantine), where it completes.
//!
//! ```sh
//! cargo run --example recovery_failover          # default seed 7
//! cargo run --example recovery_failover -- 3     # any other seed
//! ```

use gridflow_harness::workload::{dinner_recovery_workload, dinner_workload};
use gridflow_harness::{FaultPlan, Scenario, TraceEvent, TraceQuery};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);

    // A degraded grid: every execution fails half the time (transient),
    // and one `prep` host runs 50× slow — it still "succeeds", just far
    // too late, the mode leases (not failure counters) exist to catch.
    let plan = FaultPlan::seeded(seed)
        .failing_activities(0.5)
        .transient_failures()
        .slowing_container("ac-h1", 50.0);
    println!("plan: {}", serde_json::to_string(&plan).unwrap());

    // --- Recovery disabled: one phase, no ladder ----------------------
    let legacy = Scenario::new(&plan, &dinner_workload()).budget(0).run();
    println!(
        "no recovery:  completed={} ({} failed attempts)",
        legacy.completed,
        legacy.final_report().failed_attempts.len()
    );

    // --- The standard escalation ladder -------------------------------
    let wl = dinner_recovery_workload();
    let outcome = Scenario::new(&plan, &wl).traced().run();
    let log = outcome.trace.clone().expect("traced run keeps its log");
    let report = outcome.final_report();
    println!(
        "with ladder:  completed={} after {} resume(s); containers: {:?}",
        outcome.completed,
        outcome.resumes,
        report
            .executions
            .iter()
            .map(|e| e.container.as_str())
            .collect::<Vec<_>>()
    );

    // The trace shows the ladder climbing rung by rung.
    let q = TraceQuery::new(log.records());
    let count = |label: &str, pred: fn(&TraceEvent) -> bool| {
        println!("  {:>16}: {}", label, q.count(pred));
    };
    count("retry.scheduled", |e| {
        matches!(e, TraceEvent::RetryScheduled { .. })
    });
    count("lease.granted", |e| {
        matches!(e, TraceEvent::LeaseGranted { .. })
    });
    count("lease.expired", |e| {
        matches!(e, TraceEvent::LeaseExpired { .. })
    });
    count("breaker.opened", |e| {
        matches!(e, TraceEvent::BreakerOpened { .. })
    });

    // The invariants every recovery trace must satisfy.
    q.assert_breaker_discipline();
    q.assert_no_dispatch_while_open();
    q.assert_no_double_dispatch();
    println!("trace invariants hold ✓");

    // Same (plan, workload) ⇒ byte-identical event log.
    let replay = Scenario::new(&plan, &wl)
        .traced()
        .run()
        .trace
        .expect("traced run keeps its log");
    assert_eq!(log.to_jsonl(), replay.to_jsonl());
    println!(
        "replay event log identical ✓ ({} records)",
        log.records().len()
    );
}
