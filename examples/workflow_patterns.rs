//! Building workflows programmatically with the pattern library, then
//! simulating and enacting them — the §1 composition shapes (pipelines,
//! fan-out, choices, refinement loops) without writing PDL text.
//!
//! ```sh
//! cargo run --example workflow_patterns
//! ```

use gridflow::prelude::*;
use gridflow_grid::container::ApplicationContainer;
use gridflow_grid::resource::{Resource, ResourceKind};
use gridflow_grid::GridTopology;
use gridflow_process::patterns;

fn build_world() -> GridWorld {
    let services: Vec<String> = ["ingest", "clean", "analyze", "render", "publish", "review"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let resources: Vec<Resource> = (0..3)
        .map(|i| {
            Resource::new(format!("site-{i}"), ResourceKind::PcCluster)
                .with_nodes(16)
                .with_software(services.clone())
        })
        .collect();
    let containers: Vec<ApplicationContainer> = (0..3)
        .map(|i| {
            ApplicationContainer::new(format!("ac-{i}"), format!("site-{i}"))
                .hosting(services.clone())
        })
        .collect();
    let mut world = GridWorld::new(GridTopology {
        resources,
        containers,
    });
    for s in &services {
        world.offer(ServiceOffering::new(
            s.clone(),
            Vec::<String>::new(),
            vec![OutputSpec::plain(format!("{s}-out"))],
        ));
    }
    // `review` writes a quality score that improves per pass.
    world.offer(ServiceOffering::new(
        "review",
        Vec::<String>::new(),
        vec![OutputSpec::refining("Quality Report", "Q", 0.5, -0.2)],
    ));
    world
}

fn main() {
    // A data-curation campaign:
    //   ingest → clean → (analyze ∥ render) → publish → review,
    // all repeated while the review score stays below 0.8.
    let cond = Condition::compare("Q", "Value", gridflow_process::CompareOp::Lt, 0.8);
    let ast = patterns::process([patterns::do_while(
        cond,
        patterns::sequence([
            patterns::activity("ingest"),
            patterns::activity("clean"),
            patterns::fan_out(["analyze", "render"]),
            patterns::activity("publish"),
            patterns::activity("review"),
        ]),
    )]);

    println!("== The composed workflow ==\n{}", printer::print(&ast));
    let graph = lower("curation", &ast).expect("lowers");
    graph.validate().expect("well-formed");
    println!(
        "graph: {} activities, {} transitions",
        graph.activities().len(),
        graph.transitions().len()
    );

    let world = build_world();
    let case = CaseDescription::new("curation-run")
        .with_data("D1", DataItem::classified("raw-batch"))
        .with_goal(
            "G1",
            Condition::compare("Q", "Value", gridflow_process::CompareOp::Ge, 0.8),
        );

    // Predict before conducting (the simulation service).
    let prediction =
        gridflow_services::simulation::predict(&world, &graph, &case, 100_000).expect("predicts");
    println!(
        "\n== Prediction == {} executions, parallel makespan {:.1}s, cost {:.2}",
        prediction.executions, prediction.makespan_s, prediction.total_cost
    );

    // Then enact for real.
    let mut world = build_world();
    let report = Enactor::default().enact(&mut world, &graph, &case);
    println!(
        "\n== Enactment == success: {} ({} executions, serial {:.1}s)",
        report.success,
        report.executions.len(),
        report.total_duration_s
    );
    let passes = report
        .executions
        .iter()
        .filter(|e| e.service == "review")
        .count();
    println!("review passes until quality ≥ 0.8: {passes}");
    let quality = report
        .final_state
        .property("Q", "Value")
        .and_then(|v| v.as_float())
        .unwrap();
    println!("final quality score: {quality:.2}");
    assert!(report.success);
    assert!(prediction.makespan_s <= report.total_duration_s + 1e-9);
}
