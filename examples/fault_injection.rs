//! Deterministic fault injection: run a workload under a seeded
//! [`FaultPlan`] (activity failures + a scripted coordinator crash),
//! replay it byte-identically, then point a lossy message transport at
//! the live agent stack and watch it degrade gracefully.
//!
//! ```sh
//! cargo run --example fault_injection          # default seed 42
//! cargo run --example fault_injection -- 7     # any other seed
//! ```

use gridflow_agents::{AgentError, AgentRuntime};
use gridflow_harness::workload::dinner_workload;
use gridflow_harness::{
    execution_counts, outcome_fingerprint, run_scenario, FaultPlan, FaultyTransport, VirtualClock,
};
use gridflow_planner::prelude::GpConfig;
use gridflow_services::agents::{boot_stack, GRIDFLOW_ONTOLOGY};
use gridflow_services::coordination::EnactmentConfig;
use gridflow_services::planning::PlanningService;
use gridflow_services::world::share;
use serde_json::json;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // --- A seeded scenario: activity failures + a coordinator crash ----
    let plan = FaultPlan::seeded(seed)
        .failing_activities(0.2)
        .crashing_after(0);
    println!("plan: {}", serde_json::to_string(&plan).unwrap());

    let workload = dinner_workload();
    let outcome = run_scenario(&plan, &workload);
    println!(
        "seed {seed}: completed={} after {} resume(s); executions: {:?}",
        outcome.completed,
        outcome.resumes,
        execution_counts(outcome.final_report())
    );
    assert!(outcome.is_recoverable());

    // Same (seed, plan, workload) ⇒ byte-identical outcome.
    let replay = run_scenario(&plan, &workload);
    assert_eq!(outcome_fingerprint(&outcome), outcome_fingerprint(&replay));
    println!(
        "replay fingerprint identical ✓ ({} bytes)",
        outcome_fingerprint(&outcome).len()
    );

    // --- The same faults, against the live agent stack -----------------
    let mut rt = AgentRuntime::new();
    let world = share(workload.fresh_world(&FaultPlan::default(), 0));
    let gp = GpConfig {
        population_size: 60,
        generations: 20,
        seed: 2,
        ..GpConfig::default()
    };
    let stack = boot_stack(
        &mut rt,
        world,
        PlanningService::new(gp),
        EnactmentConfig::default(),
    )
    .expect("stack boots");

    let transport = Arc::new(FaultyTransport::new(
        FaultPlan::seeded(seed)
            .dropping(0.1)
            .duplicating(0.2)
            .delaying(0.2, 2),
        VirtualClock::new(),
    ));
    rt.set_transport(transport.clone());

    let enact = json!({"action": "enact", "graph": workload.graph, "case": workload.case});
    let (mut answered, mut timed_out) = (0, 0);
    for _ in 0..4 {
        match stack.client.request(
            &stack.coordination,
            GRIDFLOW_ONTOLOGY,
            enact.clone(),
            Duration::from_secs(5),
        ) {
            Ok(reply) => {
                assert_eq!(reply.content["report"]["success"], json!(true));
                answered += 1;
            }
            Err(AgentError::Timeout { .. }) => timed_out += 1,
            Err(other) => panic!("unexpected failure under faults: {other}"),
        }
    }
    println!(
        "lossy transport: {answered} correct replies, {timed_out} timeouts, \
         {} fault decisions logged",
        transport.schedule().len()
    );

    // Faults stop ⇒ the stack answers again.
    rt.directory().clear_transport();
    let reply = stack
        .client
        .request(
            &stack.coordination,
            GRIDFLOW_ONTOLOGY,
            enact,
            Duration::from_secs(10),
        )
        .expect("stack recovers once faults stop");
    assert_eq!(reply.content["report"]["success"], json!(true));
    println!("faults cleared: stack recovered ✓");
    rt.shutdown();
}
