//! Tour of the workload families under every admission policy.
//!
//! Runs a small fleet of each workload — the hand-built dinner case,
//! two generated taxonomy shapes, and the paper's virus-reconstruction
//! case study — under each of the four admission policies, and prints
//! the resulting schedule summary: ticks to drain the fleet, and the
//! order the policy admitted the cases in.
//!
//! ```sh
//! cargo run --example workload_matrix
//! ```

use gridflow_engine::{CaseHints, PolicySpec};
use gridflow_harness::workload::{
    dinner_workload, virus_reconstruction_workload, GraphShape, Workload, WorkloadGen,
};
use gridflow_harness::{FaultPlan, MultiCaseScenario, TraceQuery};

fn main() {
    let workloads: Vec<Workload> = vec![
        dinner_workload(),
        WorkloadGen::new(7)
            .shape(GraphShape::FanOutJoin)
            .width(3)
            .depth(2)
            .build(),
        WorkloadGen::new(7)
            .shape(GraphShape::ChoiceDense)
            .width(3)
            .depth(2)
            .build(),
        virus_reconstruction_workload(),
    ];
    let plan = FaultPlan::default();

    println!(
        "{:<28} {:<10} {:>6}  admission order",
        "workload", "policy", "ticks"
    );
    for wl in &workloads {
        for policy in PolicySpec::ALL {
            let outcome = MultiCaseScenario::new(&plan, wl, 4)
                .max_in_flight(2)
                .policy(policy)
                // Stagger priorities/deadlines/tenants so the policies
                // visibly disagree with submission order.
                .case_hints(|i| CaseHints {
                    priority: (i % 2) as i64,
                    tenant: Some(if i.is_multiple_of(2) {
                        "a".into()
                    } else {
                        "b".into()
                    }),
                    deadline_tick: Some(100 - 10 * i as u64),
                })
                .traced()
                .run();
            assert!(
                outcome.engine.all_succeeded(),
                "{} under {} failed",
                wl.name,
                policy.name()
            );
            let q = TraceQuery::new(outcome.trace.as_ref().expect("traced").records());
            let order: Vec<String> = q
                .admission_sequence()
                .iter()
                .map(|label| {
                    label
                        .rsplit_once('-')
                        .map(|(_, i)| format!("#{i}"))
                        .unwrap_or_else(|| label.clone())
                })
                .collect();
            println!(
                "{:<28} {:<10} {:>6}  {}",
                wl.name,
                policy.name(),
                outcome.engine.ticks,
                order.join(" ")
            );
        }
    }
}
