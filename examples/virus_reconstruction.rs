//! The full §4 case study, end to end: the Fig. 10 process description,
//! its Fig. 11 plan tree, the Fig. 13 ontology instances, and an enacted
//! refinement loop on the simulated grid.
//!
//! ```sh
//! cargo run --example virus_reconstruction
//! ```

use gridflow::casestudy;
use gridflow::prelude::*;
use gridflow_process::dot;

fn main() {
    // --- Figure 10: the process description --------------------------
    let graph = casestudy::process_description();
    println!("== Figure 10: process description PD-3DSD ==");
    println!(
        "{} activities ({} end-user), {} transitions",
        graph.activities().len(),
        graph.end_user_activities().count(),
        graph.transitions().len()
    );
    let ast = recover(&graph).expect("Fig. 10 is structured");
    println!("\nstructured form:\n{}", printer::print(&ast));
    println!("Graphviz form available via gridflow_process::dot::to_dot (first line):");
    println!("  {}", dot::to_dot(&graph).lines().next().unwrap());

    // --- Figure 11: the plan tree -------------------------------------
    let tree = casestudy::plan_tree();
    println!("\n== Figure 11: plan tree ==");
    println!("size {} / depth {}", tree.size(), tree.depth());
    let (seq, con, sel, ite) = tree.controller_counts();
    println!("controllers: {seq} sequential, {con} concurrent, {sel} selective, {ite} iterative");

    // --- Figure 13: ontology instances --------------------------------
    let kb = casestudy::ontology_instances();
    println!("\n== Figure 13: ontology instances ==");
    println!(
        "{} instances across {} classes; validation errors: {}",
        kb.instance_count(),
        kb.class_count(),
        kb.validate_all().len()
    );
    // A taste of the metadata, as the coordination service reads it:
    let a11 = kb.instance("A11").expect("PSF activity");
    println!(
        "A11: name={:?} service={:?} inputs={:?} outputs={:?}",
        a11.get_str("Name").unwrap(),
        a11.get_str("Service Name").unwrap(),
        a11.get_ref_list("Input Data Set"),
        a11.get_ref_list("Output Data Set"),
    );

    // --- Enactment on the simulated grid ------------------------------
    println!("\n== Enacting PD-3DSD under CD-3DSD ==");
    let mut lab = VirtualLab::new(0, 7);
    let report = lab.enact(&graph);
    assert!(report.success, "abort: {:?}", report.abort_reason);
    let mut resolution_track = Vec::new();
    let mut psf_seen = 0;
    for e in &report.executions {
        if e.service == "PSF" {
            psf_seen += 1;
            resolution_track.push(
                casestudy::INITIAL_RESOLUTION - casestudy::RESOLUTION_STEP * (psf_seen - 1) as f64,
            );
        }
    }
    println!(
        "refinement trajectory (Å): {}",
        resolution_track
            .iter()
            .map(|r| format!("{r:.0}"))
            .collect::<Vec<_>>()
            .join(" → ")
    );
    println!(
        "end-user executions: {}, virtual time {:.0}s, cost {:.2}",
        report.executions.len(),
        report.total_duration_s,
        report.total_cost
    );
    println!(
        "goals satisfied: {}/{}",
        lab.case().satisfied_goals(&report.final_state),
        lab.case().goals.len()
    );
}
