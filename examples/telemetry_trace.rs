//! Deterministic telemetry: run a faulty scenario with event tracing,
//! replay it to a byte-identical JSONL log, fold the trace into metrics,
//! and check execution invariants with the trace-query API.
//!
//! ```sh
//! cargo run --example telemetry_trace          # default seed 42
//! cargo run --example telemetry_trace -- 7     # any other seed
//! ```

use gridflow_harness::workload::dinner_workload;
use gridflow_harness::{FaultPlan, MetricsRegistry, Scenario, TraceQuery};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // --- Trace a seeded scenario ---------------------------------------
    let plan = FaultPlan::seeded(seed)
        .failing_activities(0.25)
        .crashing_after(0);
    let workload = dinner_workload();
    let outcome = Scenario::new(&plan, &workload).traced().run();
    let log = outcome.trace.clone().expect("traced run keeps its log");
    println!(
        "seed {seed}: completed={} after {} resume(s); {} events traced",
        outcome.completed,
        outcome.resumes,
        log.len()
    );

    // --- Replay: identical seeds ⇒ byte-identical event logs -----------
    let replay = Scenario::new(&plan, &workload)
        .traced()
        .run()
        .trace
        .expect("traced run keeps its log");
    assert_eq!(log.to_jsonl(), replay.to_jsonl());
    println!("replay JSONL identical ✓ ({} bytes)", log.to_jsonl().len());

    // --- A window into the log -----------------------------------------
    println!("\nfirst events:");
    for line in log.to_jsonl().lines().take(6) {
        println!("  {line}");
    }

    // --- Invariants, straight off the trace ----------------------------
    let q = TraceQuery::new(log.records());
    q.assert_no_double_dispatch();
    q.assert_drops_resolved();
    if outcome.completed {
        let span = q.span("a1").or_else(|_| {
            // Activity ids depend on the parsed graph; fall back to the
            // first dispatched activity.
            let first = q
                .records()
                .iter()
                .find_map(|r| match &r.event {
                    gridflow_harness::TraceEvent::ActivityDispatched { activity, .. } => {
                        Some(activity.clone())
                    }
                    _ => None,
                })
                .expect("a completed run dispatched something");
            q.span(&first)
        });
        println!("\nfirst activity span: {:?}", span.expect("span exists"));
    }
    println!("no double dispatch ✓   drops resolved ✓");

    // --- Metrics, folded from the same trace ---------------------------
    let metrics = MetricsRegistry::from_trace(&log.records());
    println!("\n{}", metrics.render());
}
