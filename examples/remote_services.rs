//! Remote services over loopback TCP: the same traced scenario run
//! in-proc and again with the TCP mirror plane, proving the engine
//! cannot tell the transports apart while every trace record really
//! crosses a socket — then a cold-start / sleep / partition / heal
//! cycle driven by hand, walking the node's circuit breaker.
//!
//! ```sh
//! cargo run --example remote_services          # default seed 11
//! cargo run --example remote_services -- 4     # any other seed
//! ```

use gridflow_harness::workload::dinner_workload;
use gridflow_harness::{
    FaultPlan, RemoteMirror, Scenario, TcpMirrorConfig, TraceEvent, TraceQuery, TransportSpec,
};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);

    // --- 1. Transport selection is invisible to the engine ------------
    let plan = FaultPlan::seeded(seed).crashing_after(0);
    let wl = dinner_workload();
    let in_proc = Scenario::new(&plan, &wl).traced().run();
    let over_tcp = Scenario::new(&plan, &wl)
        .transport(TransportSpec::tcp())
        .traced()
        .run();
    let same_bytes =
        in_proc.trace.unwrap().to_jsonl() == over_tcp.trace.as_ref().unwrap().to_jsonl();
    println!("primary trace byte-identical across transports: {same_bytes}");
    assert!(same_bytes, "transport selection must be a pure observer");

    let report = over_tcp.remote.expect("tcp run reports its mirror plane");
    println!(
        "mirror plane: endpoint={} wakes={} mirrored={} failed={} \
         probes={}ok/{}failed slept={}",
        report.endpoint.as_deref().unwrap_or("-"),
        report.wakes,
        report.mirrored,
        report.failed,
        report.probes_ok,
        report.probes_failed,
        report.slept,
    );
    assert_eq!(report.failed, 0, "loopback delivery must not drop");

    // --- 2. Cold start, sleep, partition, heal -------------------------
    // The same machinery driven by hand: wake a cold node, watch failed
    // probes trip its breaker while it is partitioned away, then heal
    // and watch the half-open trial readmit it.
    let mirror = RemoteMirror::new(TcpMirrorConfig::default());
    println!("cold wake: {:?}", mirror.ensure_awake());
    println!("  endpoint: {}", mirror.endpoint().unwrap());
    let (ok, _) = mirror.probe(2);
    println!(
        "  healthy probes: {ok}/2 ok, admitted={}",
        mirror.node_admitted()
    );

    mirror.note(TraceEvent::PartitionStarted {
        a: "harness".into(),
        b: "remote-mirror".into(),
        heal_tick: 0,
    });
    mirror.sleep_now();
    let (_, failed) = mirror.probe(2);
    println!(
        "partitioned: {failed}/2 probes failed, admitted={}",
        mirror.node_admitted()
    );

    println!("re-wake: {:?}", mirror.ensure_awake());
    mirror.note(TraceEvent::PartitionHealed {
        a: "harness".into(),
        b: "remote-mirror".into(),
    });
    mirror.probe(4);
    println!("healed: admitted={}", mirror.node_admitted());
    assert!(mirror.node_admitted(), "healed node must be readmitted");

    let q = TraceQuery::new(mirror.mirror_log().records());
    q.assert_partition_discipline();
    q.assert_breaker_discipline();
    println!("breaker walk:");
    for label in ["breaker.opened", "breaker.half_open", "breaker.closed"] {
        println!("  {label}: {}", q.count(|e| e.label() == label));
    }
}
