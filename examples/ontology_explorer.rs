//! Exploring the metainformation layer: ontology shells, instance
//! population, validation, queries, and persistence — the Fig. 12/13
//! machinery the paper calls "the most difficult problem we encountered".
//!
//! ```sh
//! cargo run --example ontology_explorer
//! ```

use gridflow::casestudy;
use gridflow::prelude::*;
use gridflow_ontology::schema;
use gridflow_services::ontology_service::OntologyService;

fn main() {
    // --- The shell of Fig. 12 -----------------------------------------
    let shell = schema::grid_ontology_shell();
    println!("== Figure 12: the grid ontology shell ==");
    for class in shell.classes() {
        let slots = shell.effective_slots(&class.name).unwrap();
        println!("  {:<20} {} slots", class.name, slots.len());
    }

    // --- The populated ontology of Fig. 13 -----------------------------
    let kb = casestudy::ontology_instances();
    println!("\n== Figure 13: populated for the 3DSD task ==");
    for class in [
        "Task",
        "ProcessDescription",
        "CaseDescription",
        "Activity",
        "Transition",
        "Data",
        "Service",
    ] {
        println!(
            "  {:<20} {} instance(s)",
            class,
            kb.instances_of(class).count()
        );
    }

    // --- Queries, as the matchmaking/information services issue them ---
    println!("\n== Queries ==");
    let models = Query::cond(SlotCond::Eq(
        "Classification".into(),
        Value::str("3D Model"),
    ))
    .run(&kb, Some("Data"));
    println!(
        "  data classified `3D Model`: {:?}",
        models.iter().map(|i| i.id.as_str()).collect::<Vec<_>>()
    );
    let end_user_activities =
        Query::cond(SlotCond::Eq("Type".into(), Value::str("End-user"))).run(&kb, Some("Activity"));
    println!(
        "  end-user activities: {:?}",
        end_user_activities
            .iter()
            .map(|i| i.get_str("Name").unwrap())
            .collect::<Vec<_>>()
    );
    let big =
        Query::cond(SlotCond::Gt("Size".into(), Value::Int(1_000_000))).run(&kb, Some("Data"));
    println!(
        "  data larger than 1 MB: {:?}",
        big.iter().map(|i| i.id.as_str()).collect::<Vec<_>>()
    );

    // --- Validation guards the metadata --------------------------------
    println!("\n== Validation ==");
    let mut corrupt = kb.clone();
    corrupt
        .instance_mut("D7")
        .unwrap()
        .set("Size", Value::Int(-1));
    let errors = corrupt.validate_all();
    println!("  after corrupting D7.Size: {} error(s)", errors.len());
    println!("    {}", errors[0]);

    // --- The ontology service: shells, user KBs, merging ---------------
    println!("\n== Ontology service ==");
    let mut service = OntologyService::with_grid_core();
    service.publish(kb.clone());
    let mut user_kb = service.get_shell("3DSD").unwrap();
    user_kb.name = "user-hyu".into();
    user_kb
        .add_instance(
            Instance::new("D13", "Data")
                .with("Name", Value::str("atomic model"))
                .with("Classification", Value::str("Atomic Model")),
        )
        .unwrap();
    service.publish(user_kb.clone());
    println!("  published ontologies: {:?}", service.names());
    service.merge_into("3DSD", &user_kb).unwrap();
    println!(
        "  after merging user KB into 3DSD: {} instances",
        service.get("3DSD").unwrap().instance_count()
    );

    // --- Persistence -----------------------------------------------------
    let json = kb.to_json().unwrap();
    let restored = KnowledgeBase::from_json(&json).unwrap();
    println!(
        "\nJSON round trip: {} bytes, equal = {}",
        json.len(),
        restored == kb
    );
    assert_eq!(restored, kb);
}
