//! Re-planning under failures (§3.3 / Fig. 3): enact a workflow, lose the
//! containers that host one of its services mid-grid, and watch the
//! coordination service escalate to the planning service, which avoids
//! the dead service in the new plan.
//!
//! ```sh
//! cargo run --example replanning_failover
//! ```

use gridflow::prelude::*;
use gridflow_grid::container::ApplicationContainer;
use gridflow_grid::resource::{Resource, ResourceKind};
use gridflow_grid::GridTopology;

/// A world with two routes to the goal: `express` (one hop) and a
/// two-hop detour (`stage` + `deliver`), each hosted on dedicated sites.
fn build_world() -> GridWorld {
    let sites: [(&str, &[&str]); 4] = [
        ("site-express-1", &["express"]),
        ("site-express-2", &["express"]),
        ("site-stage", &["stage"]),
        ("site-deliver", &["deliver"]),
    ];
    let resources: Vec<Resource> = sites
        .iter()
        .map(|(id, sw)| {
            Resource::new(*id, ResourceKind::PcCluster)
                .with_nodes(16)
                .with_software(sw.iter().map(|s| s.to_string()))
        })
        .collect();
    let containers: Vec<ApplicationContainer> = sites
        .iter()
        .map(|(id, sw)| {
            ApplicationContainer::new(format!("ac-{id}"), *id)
                .hosting(sw.iter().map(|s| s.to_string()))
        })
        .collect();
    let mut world = GridWorld::new(GridTopology {
        resources,
        containers,
    });
    world.offer(ServiceOffering::new(
        "express",
        ["Package"],
        vec![OutputSpec::plain("Delivered")],
    ));
    world.offer(ServiceOffering::new(
        "stage",
        ["Package"],
        vec![OutputSpec::plain("Staged")],
    ));
    world.offer(ServiceOffering::new(
        "deliver",
        ["Staged"],
        vec![OutputSpec::plain("Delivered")],
    ));
    world
}

fn main() {
    let mut world = build_world();

    // The user's original plan uses the express route.
    let ast = parse_process("BEGIN express; END").expect("parses");
    let graph = lower("delivery", &ast).expect("lowers");

    // Both express sites die before enactment (hot-spot outage).
    for container in world.hosting_containers("express") {
        world
            .set_container_up(&container, false)
            .expect("known container");
        println!("✗ container {container} went down");
    }

    let goal_ids: Vec<String> = (101..=120).map(|i| format!("D{i}")).collect();
    let delivered_somewhere = goal_ids.iter().skip(1).fold(
        Condition::classified(goal_ids[0].clone(), "Delivered"),
        |acc, id| acc.or(Condition::classified(id.clone(), "Delivered")),
    );
    let case = CaseDescription::new("delivery-run")
        .with_data("D1", DataItem::classified("Package"))
        .with_goal("G1", delivered_somewhere);

    // Without re-planning: the enactment aborts.
    let report = Enactor::default().enact(
        &mut world.clone_for_simulation_with_failures(),
        &graph,
        &case,
    );
    println!(
        "\nwithout re-planning: success={} abort={:?}",
        report.success, report.abort_reason
    );
    assert!(!report.success);

    // With re-planning: the planning service avoids `express` and routes
    // through stage → deliver.
    let config = EnactmentConfig {
        replan: true,
        planning_goals: vec![GoalSpec {
            classification: "Delivered".into(),
            min_count: 1,
        }],
        gp: GpConfig {
            population_size: 80,
            generations: 25,
            seed: 5,
            ..GpConfig::default()
        },
        ..EnactmentConfig::default()
    };
    let report = Enactor::builder()
        .config(config)
        .build()
        .enact(&mut world, &graph, &case);
    println!(
        "with re-planning:    success={} replans={} route={:?}",
        report.success,
        report.replans,
        report
            .executions
            .iter()
            .map(|e| e.service.as_str())
            .collect::<Vec<_>>()
    );
    assert!(report.success);
    assert!(report.replans >= 1);
    assert!(report.executions.iter().any(|e| e.service == "deliver"));
}

/// Helper so the "without replanning" run starts from the same failed
/// world without consuming it.
trait CloneWorld {
    fn clone_for_simulation_with_failures(&self) -> GridWorld;
}

impl CloneWorld for GridWorld {
    fn clone_for_simulation_with_failures(&self) -> GridWorld {
        let mut clone = GridWorld::new(self.topology.clone());
        for offering in self.offerings.values() {
            clone.offer(offering.clone());
        }
        clone
    }
}
