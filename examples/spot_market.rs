//! The spot market and matchmaking conditions of §1–2: hot-spot
//! contention pricing, brokerage equivalence classes, prohibitive
//! reservations, and condition-driven resource matching (fine-grain
//! interconnects, domains, deadlines, budgets).
//!
//! ```sh
//! cargo run --example spot_market
//! ```

use gridflow::casestudy;
use gridflow::prelude::*;
use gridflow_grid::market::ReservationPolicy;

fn main() {
    let world = casestudy::virtual_lab_world(6, 99);

    // --- Brokerage equivalence classes --------------------------------
    println!("== Brokerage equivalence classes ==");
    let mut market = gridflow_grid::SpotMarket::new(world.topology.resources.iter().cloned());
    for (class, offers) in market.equivalence_classes() {
        println!("  {:<44} {} resource(s)", class, offers.len());
    }

    // --- Hot-spot contention ------------------------------------------
    println!("\n== Hot-spot contention on the cheapest cluster ==");
    let (first_choice, base_price) = market
        .acquire(8, f64::INFINITY, |_| true)
        .expect("capacity available");
    println!("  first acquisition: {first_choice} at {base_price:.2}");
    let mut last = (first_choice.clone(), base_price);
    for round in 1..=4 {
        match market.acquire(8, f64::INFINITY, |_| true) {
            Ok((id, price)) => {
                println!("  round {round}: {id} at {price:.2}");
                last = (id, price);
            }
            Err(e) => {
                println!("  round {round}: {e}");
                break;
            }
        }
    }
    if last.0 == first_choice {
        assert!(last.1 >= base_price, "contention must not lower prices");
    }

    // --- Prohibitive reservations --------------------------------------
    println!("\n== Advance reservations (§1's pessimism) ==");
    let spot = market.offer(&first_choice).unwrap().spot_price();
    let quote = market.reservation_quote(&first_choice, 8).unwrap();
    println!("  spot {spot:.2}/cpu-h vs reservation quote {quote:.2} (5× premium)");
    market.reservation_policy = ReservationPolicy::Unsupported;
    println!(
        "  with reservations unsupported: {:?}",
        market
            .reservation_quote(&first_choice, 8)
            .unwrap_err()
            .to_string()
    );

    // --- Condition-driven matchmaking ----------------------------------
    println!("\n== Matchmaking for the fine-grain reconstruction code ==");
    let unconstrained = matchmake(&world, &MatchRequest::for_service("P3DR")).unwrap();
    println!("  unconstrained: {} candidates", unconstrained.len());
    for m in unconstrained.iter().take(3) {
        println!(
            "    {:<24} {:>8.1}s  cost {:>7.2}  reliability {:.3}",
            m.container, m.duration_s, m.cost, m.reliability
        );
    }
    let strict = MatchRequest {
        require_fine_grain: true,
        min_reliability: 0.98,
        ..MatchRequest::for_service("P3DR")
    };
    match matchmake(&world, &strict) {
        Ok(matches) => {
            println!(
                "  fine-grain + reliability ≥ 0.98: {} candidate(s), best = {}",
                matches.len(),
                matches[0].container
            );
        }
        Err(e) => println!("  fine-grain + reliability ≥ 0.98: {e}"),
    }
    let deadline = MatchRequest {
        deadline_s: Some(unconstrained[0].duration_s * 1.05),
        ..MatchRequest::for_service("P3DR")
    };
    let tight = matchmake(&world, &deadline).unwrap();
    println!(
        "  soft deadline at 1.05× the best duration: {} candidate(s)",
        tight.len()
    );
    assert!(tight.len() <= unconstrained.len());
}
