//! Quickstart: plan and enact the virus-reconstruction case study in a
//! few lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gridflow::prelude::*;

fn main() {
    // A simulated grid: 5 deterministic core sites + 3 generated ones.
    let mut lab = VirtualLab::new(3, 42);

    println!("== The grid ==");
    for r in &lab.world.topology.resources {
        println!(
            "  {:<16} {:<14} {:>4} nodes  reliability {:.2}  [{}]",
            r.id,
            r.kind.label(),
            r.nodes,
            r.reliability,
            r.equivalence_class()
        );
    }

    // Ask the planning service for a plan: P = {S_init, G, T}.
    let plan = lab.plan().expect("planning succeeds");
    println!("\n== GP planner result ==");
    println!(
        "fitness: overall {:.3} (validity {:.2}, goal {:.2}, size {})",
        plan.fitness.overall, plan.fitness.validity, plan.fitness.goal, plan.fitness.size
    );
    println!(
        "\nprocess description:\n{}",
        printer::print(&tree_to_ast(&plan.tree))
    );

    // Plan + enact, with the case description's refinement loop attached.
    let (_, report) = lab.solve().expect("solve succeeds");
    println!("== Enactment ==");
    println!("success: {}", report.success);
    println!(
        "executions: {} (total {:.1} virtual seconds, cost {:.2})",
        report.executions.len(),
        report.total_duration_s,
        report.total_cost
    );
    for e in &report.executions {
        println!(
            "  {:<8} via {:<10} on {:<20} {:>8.1}s",
            e.service, e.activity, e.container, e.duration_s
        );
    }
    let resolution = report
        .final_state
        .property("D12", "Value")
        .and_then(|v| v.as_float())
        .expect("resolution file exists");
    println!("\nfinal resolution: {resolution:.1} Å (target ≤ 8 Å)");
    assert!(report.success);
}
